"""CI guard: fail if any checked-in benchmark equivalence flag is false.

The benchmark snapshots (``BENCH_hotpath.json``, ``BENCH_store.json``,
``BENCH_offline.json``) carry boolean flags proving the optimized paths reproduce the seed
implementations exactly — single-pass vs multi-pass detections,
parallel vs sequential batches, columnar/compressed/mmap scoring vs the
seed per-element loop.  A perf PR that breaks equivalence but still
"passes" its speed bar must not merge; this script turns any false flag
into a CI failure.

Usage: ``python benchmarks/check_equivalence.py [snapshot.json ...]``
(defaults to the snapshots next to this file).
"""

import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))

DEFAULT_SNAPSHOTS = (
    os.path.join(_HERE, "BENCH_hotpath.json"),
    os.path.join(_HERE, "BENCH_store.json"),
    os.path.join(_HERE, "BENCH_offline.json"),
    os.path.join(_HERE, "BENCH_obs.json"),
    os.path.join(_HERE, "BENCH_profile.json"),
)

# snapshot basename -> dotted paths of the boolean flags it must carry
REQUIRED_FLAGS = {
    "BENCH_hotpath.json": (
        "results_identical_to_seed_path",
        "parallel_batch.identical_to_sequential",
        "automaton.identical_to_seed_path",
        "automaton.identical_to_pure_python",
    ),
    "BENCH_store.json": (
        "equivalence.columnar_matches_seed",
        "equivalence.score_matches_score_many",
        "equivalence.compressed_matches_seed",
        "equivalence.mmap_load_matches_memory",
    ),
    "BENCH_offline.json": (
        "equivalence.pack_bytes_identical",
        "equivalence.parallel_pack_identical",
        "equivalence.frozen_index_matches_dict",
        "equivalence.parallel_mining_matches_serial",
        "equivalence.vectorized_units_match_seed",
        "equivalence.vectorized_miner_matches_seed",
    ),
    "BENCH_obs.json": (
        "equivalence.identical_with_observability",
        "equivalence.identical_with_quality_monitors",
        "equivalence.explain_order_identical",
        "equivalence.overhead_within_bar",
        "equivalence.quality_overhead_within_bar",
    ),
    "BENCH_profile.json": (
        "equivalence.identical_with_profiler",
        "equivalence.stage_attribution_present",
        "equivalence.overhead_within_bar",
    ),
}


def dig(snapshot, dotted):
    value = snapshot
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def check_file(path):
    """(failures, checked) for one snapshot file."""
    name = os.path.basename(path)
    try:
        with open(path) as handle:
            snapshot = json.load(handle)
    except FileNotFoundError:
        return [f"{name}: snapshot missing ({path})"], 0
    except json.JSONDecodeError as error:
        return [f"{name}: unreadable snapshot ({error})"], 0
    required = REQUIRED_FLAGS.get(name)
    if required is None:
        # unknown snapshot: scan every boolean under an "equivalence" map
        block = snapshot.get("equivalence", {})
        required = tuple(f"equivalence.{key}" for key in block)
        if not required:
            return [f"{name}: no equivalence flags found"], 0
    failures = []
    for dotted in required:
        value = dig(snapshot, dotted)
        if value is None:
            failures.append(f"{name}: flag {dotted} is missing")
        elif value is not True:
            failures.append(f"{name}: flag {dotted} is {value!r}")
    return failures, len(required)


def main(argv):
    paths = argv or list(DEFAULT_SNAPSHOTS)
    all_failures = []
    total = 0
    for path in paths:
        failures, checked = check_file(path)
        all_failures.extend(failures)
        total += checked
    if all_failures:
        for failure in all_failures:
            print(f"EQUIVALENCE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(f"equivalence OK: {total} flags true across {len(paths)} snapshot(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
