"""Result-row registry shared by the benchmark modules.

Kept separate from conftest.py so benchmark files can import it without
colliding with the test suite's conftest module when both directories
are collected in one pytest invocation.  Sections are merged into a
JSON sidecar so that running the benchmarks in several chunks still
produces a complete RESULTS.md.
"""

import json
from pathlib import Path
from typing import Dict, List

_SIDECAR = Path(__file__).with_name(".bench_sections.json")

_SESSION_SECTIONS: Dict[str, List[str]] = {}


def record_section(title: str, lines: List[str]) -> None:
    """Register one table/figure's reproduced rows for the final report."""
    _SESSION_SECTIONS[title] = list(lines)


def merged_sections() -> Dict[str, List[str]]:
    """This session's sections merged over previously stored ones."""
    stored: Dict[str, List[str]] = {}
    if _SIDECAR.exists():
        try:
            stored = json.loads(_SIDECAR.read_text())
        except json.JSONDecodeError:
            stored = {}
    stored.update(_SESSION_SECTIONS)
    return stored


def persist_sections() -> Dict[str, List[str]]:
    """Merge, write the sidecar, and return the merged sections."""
    merged = merged_sections()
    _SIDECAR.write_text(json.dumps(merged, indent=1))
    return merged


def attach_metrics(snapshot: Dict, registry=None) -> Dict:
    """Insert the observability registry snapshot as a ``metrics`` block.

    Called by the benchmark writers just before dumping their
    ``BENCH_*.json`` so every snapshot carries the counters/histograms
    the run produced.  Only adds the one new key — existing keys are
    never touched (``check_equivalence.py`` keeps reading its flags).
    """
    from repro.obs import get_registry

    if registry is None:
        registry = get_registry()
    snapshot["metrics"] = registry.snapshot()
    return snapshot


def render(sections: Dict[str, List[str]]) -> str:
    blocks = []
    for title, lines in sections.items():
        blocks.append("\n".join([f"== {title} =="] + lines + [""]))
    return "\n".join(blocks)


def session_has_sections() -> bool:
    return bool(_SESSION_SECTIONS)
