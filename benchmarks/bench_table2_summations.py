"""Table II: relevant-keyword score summations, specific vs general/junk.

Paper's rows (their absolute scale):

    methicillin resistant staphylococcus aureus   9544.3
    motorola razr v3m silver                       9118.7
    egyptian foreign minister ahmed aboul gheit    9024.9
    my favorite                                    2142.9
    the other                                      1718.0
    what is happening                              1503.0

Shape to reproduce: specific concepts' summations several times larger
than junk/general phrases' — which is what makes the relevance score a
safety net (Section IV-B).
"""

import numpy as np

from _report import record_section
from repro.eval import table2_summations


def test_table2_summations(benchmark, bench_env):
    rows = benchmark.pedantic(
        lambda: table2_summations(bench_env, specific_count=3, junk_count=3),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{row.phrase:<44s} {row.summation:10.1f}   ({row.kind})"
        for row in rows
    ]
    specific = [r.summation for r in rows if r.kind == "specific"]
    junk = [r.summation for r in rows if r.kind == "general/junk"]
    ratio = np.mean(specific) / max(np.mean(junk), 1e-9)
    lines.append(
        f"mean specific / mean junk = {ratio:.2f}x   (paper: ~5.5x)"
    )
    record_section("Table II — keyword summations", lines)

    assert np.mean(specific) > 2.0 * np.mean(junk)
