"""Table IV: ranking by relevance score alone, per mining resource.

Paper:
    Random                       50.01
    Concept Vector Score         30.22
    Best Interestingness Model   23.69
    Prisma                       32.32
    Query Suggestions            31.23
    Snippets                     24.86

Shape: snippets clearly the best relevance resource (it "provides much
better coverage of keywords"); Prisma and suggestions much weaker —
both near or worse than the production baseline.
"""

from _report import record_section
from repro.eval import table4_relevance

from repro.paperdata import TABLE4_WER as PAPER_ROWS


def test_table4_relevance(benchmark, bench_experiment):
    results = benchmark.pedantic(
        lambda: table4_relevance(bench_experiment), rounds=1, iterations=1
    )
    by_name = {r.name: r for r in results}
    lines = [
        f"{r.name:<30s} measured WER={r.weighted_error_rate * 100:6.2f}%   "
        f"paper={PAPER_ROWS.get(r.name, float('nan')):6.2f}%"
        for r in results
    ]
    record_section("Table IV — relevance-score-only ranking", lines)

    snippets = by_name["relevance only (snippets)"].weighted_error_rate
    prisma = by_name["relevance only (prisma)"].weighted_error_rate
    suggestions = by_name["relevance only (suggestions)"].weighted_error_rate
    random_wer = by_name["random"].weighted_error_rate

    # snippets beat both other resources by a wide margin
    assert snippets < prisma - 0.05
    assert snippets < suggestions - 0.05
    # every resource is still informative (beats random)
    for value in (snippets, prisma, suggestions):
        assert value < random_wer - 0.05
