"""Section V-C: the production deployment result.

Paper: switching from annotate-everything (concept-vector order) to
annotating only the learned top concepts cut average weekly views by
52.5% while clicks fell only 2.0% — a 100.1% CTR increase.

Shape: views drop by half-ish, clicks drop far less, CTR roughly
doubles.
"""

from _report import record_section
from repro.eval import production_ctr_experiment


def test_production_ctr(benchmark, bench_env, bench_ranker):
    comparison = benchmark.pedantic(
        lambda: production_ctr_experiment(
            bench_env,
            bench_ranker,
            # top-5 of ~8 baseline annotations halves entity impressions,
            # matching the paper's -52.5% view reduction regime
            annotate_top=5,
            stories_per_week=25,
            before_weeks=20,
            after_weeks=15,
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        f"before: {comparison.before.weeks} weeks, "
        f"{comparison.before.weekly_views:10.0f} views/wk, "
        f"{comparison.before.weekly_clicks:8.0f} clicks/wk, "
        f"CTR={comparison.before.ctr * 100:.2f}%",
        f"after : {comparison.after.weeks} weeks, "
        f"{comparison.after.weekly_views:10.0f} views/wk, "
        f"{comparison.after.weekly_clicks:8.0f} clicks/wk, "
        f"CTR={comparison.after.ctr * 100:.2f}%",
        f"views  change: {comparison.views_change_percent:+6.1f}%  (paper: -52.5%)",
        f"clicks change: {comparison.clicks_change_percent:+6.1f}%  (paper:  -2.0%)",
        f"CTR    change: {comparison.ctr_change_percent:+6.1f}%  (paper: +100.1%)",
    ]
    record_section("Section V-C — production CTR experiment", lines)

    assert comparison.views_change_percent < -35.0
    assert comparison.clicks_change_percent > comparison.views_change_percent + 20.0
    assert comparison.ctr_change_percent > 40.0
