"""Figure 2: NDCG@{1,2,3} for relevance-score-only rankings.

The paper's chart mirrors Table IV: snippets on top, Prisma and
suggestions well below, all above random.
"""

from _report import record_section
from repro.features.relevance import (
    RESOURCE_PRISMA,
    RESOURCE_SNIPPETS,
    RESOURCE_SUGGESTIONS,
)


def test_fig2_ndcg_relevance(benchmark, bench_experiment):
    def run():
        return {
            "random": bench_experiment.run_random(),
            RESOURCE_SNIPPETS: bench_experiment.run_relevance_only(RESOURCE_SNIPPETS),
            RESOURCE_PRISMA: bench_experiment.run_relevance_only(RESOURCE_PRISMA),
            RESOURCE_SUGGESTIONS: bench_experiment.run_relevance_only(
                RESOURCE_SUGGESTIONS
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.eval import render_ndcg_figure

    lines = render_ndcg_figure(list(results.values()))
    record_section("Figure 2 — NDCG with relevance-only ranking", lines)

    for k in (1, 2, 3):
        assert results[RESOURCE_SNIPPETS].ndcg[k] > results[RESOURCE_PRISMA].ndcg[k]
        assert (
            results[RESOURCE_SNIPPETS].ndcg[k]
            > results[RESOURCE_SUGGESTIONS].ndcg[k]
        )
        assert results[RESOURCE_SNIPPETS].ndcg[k] > results["random"].ndcg[k]
