"""Figure 3: NDCG@{1,2,3} with interestingness + relevance features.

The paper's final chart: the combined model dominates every other
ranker at every cutoff.
"""

from _report import record_section
from repro.features.relevance import RESOURCE_SNIPPETS


def test_fig3_ndcg_combined(benchmark, bench_experiment):
    def run():
        return {
            "random": bench_experiment.run_random(),
            "concept vector": bench_experiment.run_concept_vector(),
            "interestingness": bench_experiment.run_model("interestingness"),
            "combined": bench_experiment.run_model(
                "interestingness + relevance",
                relevance_resource=RESOURCE_SNIPPETS,
                tie_break_with_relevance=True,
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.eval import render_ndcg_figure

    lines = render_ndcg_figure(list(results.values()))
    record_section("Figure 3 — NDCG with all features", lines)

    for k in (1, 2, 3):
        assert results["combined"].ndcg[k] >= results["interestingness"].ndcg[k] - 0.01
        assert results["combined"].ndcg[k] > results["concept vector"].ndcg[k]
        assert results["combined"].ndcg[k] > results["random"].ndcg[k]
