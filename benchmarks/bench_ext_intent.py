"""EXTENSION: query-intent features (paper Section IV-A discussion).

The paper: "we do not perform any categorization to understand their
intentions such as navigational, transactional or informational ...
although there might be potential benefits in doing so."  This bench
quantifies the suggestion: per-concept intent-volume fractions (Broder
taxonomy) are appended to the Table I space and evaluated under the
same cross-validation.
"""

import numpy as np

from _report import record_section
from repro.querylog import IntentClassifier


def test_ext_intent_features(benchmark, bench_env, bench_experiment):
    def run():
        classifier = IntentClassifier(bench_env.query_log)
        cache = {}
        rows = []
        for phrase in bench_experiment.phrases:
            features = cache.get(phrase)
            if features is None:
                features = classifier.intent_features(tuple(phrase.split()))
                cache[phrase] = features
            rows.append(features)
        extra = np.asarray(rows)
        base = bench_experiment.run_model("table I features")
        with_intent = bench_experiment.run_model(
            "+ intent fractions", extra_features=extra
        )
        return base, with_intent

    base, with_intent = benchmark.pedantic(run, rounds=1, iterations=1)
    delta = (base.weighted_error_rate - with_intent.weighted_error_rate) * 100
    lines = [
        f"Table I features : WER={base.weighted_error_rate * 100:6.2f}%",
        f"+ intent features: WER={with_intent.weighted_error_rate * 100:6.2f}% "
        f"({delta:+.2f}pp)",
        "(the paper declined this categorization; on this world its "
        "benefit is "
        + ("measurable)" if delta > 0.2 else "marginal, supporting the paper's choice)"),
    ]
    record_section("Extension — query-intent features (Broder taxonomy)", lines)

    # intent features must never substantially hurt
    assert with_intent.weighted_error_rate < base.weighted_error_rate + 0.01
