"""CI gate on the benchmark *trajectory*: tracked ratios must not slip.

``check_equivalence.py`` guards correctness (boolean flags); this
script guards the performance history.  Every ``BENCH_*.json`` snapshot
carries machine-independent ratios — speedups over the seed paths,
compression ratios, instrumentation overhead fractions — measured and
checked in by the PR that earned them.  The table below records the
accepted trajectory; a snapshot honestly re-recorded on a regressed
code path fails here even though its own equivalence flags still pass.

Gate semantics, per tracked dotted path:

* ``min`` — higher-is-better ratio: fail when the snapshot value drops
  below the floor (floors are set at 80% of the value recorded when
  the bound was accepted, i.e. a >20% regression fails CI),
* ``max`` — lower-is-better fraction (instrumentation overhead): fail
  when the snapshot value exceeds the ceiling.

When a bound trips, the report attaches the profiler snapshot's ten
hottest collapsed stacks (``BENCH_profile.json``) so the failure says
*where the time goes*, not just that it went.

Raising a floor (a PR made things faster) or accepting a regression
both mean editing ``BASELINES`` here, in review, on purpose.

Usage: ``python benchmarks/check_regressions.py [--report]``
(``--report`` prints the full table and hot stacks even on success).
"""

import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))

# snapshot basename -> dotted path -> bound.  Floors are 80% of the
# value recorded by the PR that established the bound (noted inline).
BASELINES = {
    "BENCH_hotpath.json": {
        # PR 6 recorded 10.2x / 1.8x for the compiled automaton path
        "automaton.speedup_vs_seed": {"min": 8.2},
        "automaton.speedup_vs_single_pass": {"min": 1.44},
    },
    "BENCH_store.json": {
        # PR 2 recorded 18.0x columnar lookup, 1.81x pack compression
        "lookup.speedup_columnar_vs_seed": {"min": 14.4},
        "resident.compression_ratio": {"min": 1.45},
    },
    "BENCH_offline.json": {
        # PR 3 recorded 3.7x end-to-end, 5.1x relevance, 4.4x corpus
        "speedup.end_to_end": {"min": 2.97},
        "speedup.relevance_stage": {"min": 4.11},
        "speedup.corpus_and_index": {"min": 3.5},
    },
    "BENCH_obs.json": {
        # PR 4/5 bars: metrics+tracing <= 3%, quality monitors <= 1%
        "overhead_fraction": {"max": 0.03},
        "quality_overhead_fraction": {"max": 0.01},
    },
    "BENCH_profile.json": {
        # PR 7 bar: the 97 hz stack sampler costs <= 2% of the hot path
        "profiler.overhead_fraction": {"max": 0.02},
    },
}

PROFILE_SNAPSHOT = os.path.join(_HERE, "BENCH_profile.json")


def dig(snapshot, dotted):
    value = snapshot
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def check_snapshot(name, bounds):
    """(failures, rows) for one snapshot's tracked paths."""
    path = os.path.join(_HERE, name)
    try:
        with open(path) as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{name}: unreadable snapshot ({error})"], []
    failures, rows = [], []
    for dotted, bound in sorted(bounds.items()):
        value = dig(snapshot, dotted)
        if not isinstance(value, (int, float)):
            failures.append(f"{name}: {dotted} missing from snapshot")
            continue
        floor, ceiling = bound.get("min"), bound.get("max")
        ok = True
        if floor is not None and value < floor:
            ok = False
            failures.append(
                f"{name}: {dotted} = {value:g} fell below the "
                f"accepted floor {floor:g}"
            )
        if ceiling is not None and value > ceiling:
            ok = False
            failures.append(
                f"{name}: {dotted} = {value:g} exceeds the "
                f"accepted ceiling {ceiling:g}"
            )
        limit = (
            f">= {floor:g}" if floor is not None else f"<= {ceiling:g}"
        )
        rows.append(
            f"  {'ok' if ok else 'FAIL':4s} {name}: {dotted} = "
            f"{value:g} (accepted {limit})"
        )
    return failures, rows


def hot_stacks(limit=10):
    """The profiler snapshot's hottest collapsed stacks, for the report."""
    try:
        with open(PROFILE_SNAPSHOT) as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError):
        return ["  (no profiler snapshot available)"]
    stacks = snapshot.get("profiler", {}).get("top_stacks", [])[:limit]
    if not stacks:
        return ["  (profiler snapshot carries no stacks)"]
    lines = []
    for row in stacks:
        frames = row.get("stack", "").split(";")
        leaf = frames[-1] if frames else "?"
        lines.append(f"  {row.get('samples', '?'):>5} {leaf}")
        if len(frames) > 1:
            lines.append(f"        in {';'.join(frames[-4:-1])}")
    return lines


def main(argv):
    verbose = "--report" in argv
    all_failures, all_rows = [], []
    for name, bounds in sorted(BASELINES.items()):
        failures, rows = check_snapshot(name, bounds)
        all_failures.extend(failures)
        all_rows.extend(rows)
    if all_failures or verbose:
        print("benchmark trajectory:")
        print("\n".join(all_rows))
        print("hot stacks (BENCH_profile.json, 97 hz automaton path):")
        print("\n".join(hot_stacks()))
    if all_failures:
        for failure in all_failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    tracked = sum(len(bounds) for bounds in BASELINES.values())
    print(
        f"trajectory OK: {tracked} tracked ratios within accepted "
        f"bounds across {len(BASELINES)} snapshot(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
