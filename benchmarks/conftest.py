"""Shared state for the reproduction benchmarks.

One paper-scale environment and click dataset back every table/figure
benchmark.  Each benchmark registers its result rows here; a terminal
summary prints the full reproduction report at the end of the run (so
the rows survive pytest's output capturing), and the same rows are
written to ``benchmarks/RESULTS.md``.
"""

import os
import pickle
from pathlib import Path
from typing import List

import pytest

from _report import (  # noqa: F401 (record_section re-exported for benches)
    persist_sections,
    record_section,
    render,
    session_has_sections,
)
from repro.corpus import WorldConfig
from repro.eval import (
    Environment,
    EnvironmentConfig,
    RankingExperiment,
    collect_dataset,
    train_combined_ranker,
)

# Paper scale: 870 stories / 6420 concepts / 947 windows after filtering.
# We generate 1600 sampled stories over a 600-concept universe, which
# lands in the same regime after the Section V-A.1 noise filters.
BENCH_WORLD = WorldConfig(
    seed=2009,
    vocabulary_size=3000,
    topic_count=36,
    words_per_topic=60,
    concept_count=600,
    topic_page_count=400,
)
BENCH_STORIES = int(os.environ.get("REPRO_BENCH_STORIES", "1600"))


# Building the paper-scale environment and click dataset takes minutes;
# they are deterministic in the config, so cache them on disk.  The
# cache also persists the environment's mined-relevance caches between
# benchmark invocations.
_CACHE_PATH = Path(__file__).with_name(".bench_cache.pkl")


def _cache_key():
    return (BENCH_WORLD, BENCH_STORIES)


def _load_cached():
    if not _CACHE_PATH.exists():
        return None
    try:
        with open(_CACHE_PATH, "rb") as handle:
            payload = pickle.load(handle)
    except Exception:
        return None
    if payload.get("key") != _cache_key():
        return None
    return payload


def _store_cache(env, dataset) -> None:
    payload = {"key": _cache_key(), "env": env, "dataset": dataset}
    with open(_CACHE_PATH, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


@pytest.fixture(scope="session")
def _bench_state():
    cached = _load_cached()
    if cached is not None:
        env, dataset = cached["env"], cached["dataset"]
    else:
        env = Environment.build(EnvironmentConfig(world=BENCH_WORLD))
        dataset = collect_dataset(env, BENCH_STORIES, story_seed=1)
        _store_cache(env, dataset)
    yield env, dataset
    # persist relevance-model caches mined during this session
    _store_cache(env, dataset)


@pytest.fixture(scope="session")
def bench_env(_bench_state):
    return _bench_state[0]


@pytest.fixture(scope="session")
def bench_dataset(_bench_state):
    return _bench_state[1]


@pytest.fixture(scope="session")
def bench_experiment(bench_env, bench_dataset):
    return RankingExperiment(bench_env, bench_dataset)


@pytest.fixture(scope="session")
def bench_ranker(bench_env, bench_experiment):
    return train_combined_ranker(bench_env, bench_experiment)


def pytest_terminal_summary(terminalreporter):
    if not session_has_sections():
        return
    report = render(persist_sections())
    terminalreporter.write_sep("=", "reproduction results (paper vs measured)")
    terminalreporter.write(report + "\n")
    path = os.path.join(os.path.dirname(__file__), "RESULTS.md")
    with open(path, "w") as handle:
        handle.write("# Benchmark results\n\n```\n" + report + "\n```\n")
    terminalreporter.write(f"written to {path}\n")
