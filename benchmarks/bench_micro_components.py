"""Component micro-benchmarks (not paper tables).

Steady-state throughput of the hot-path components, measured with
pytest-benchmark's normal multi-round machinery (unlike the experiment
benchmarks, which run heavyweight pipelines once).  These catch
performance regressions in the pieces Section VI's numbers depend on.
"""

import numpy as np
import pytest

from repro.text.stemmer import PorterStemmer
from repro.text.tokenizer import tokenize, tokenize_lower
from repro.features.relevance import stemmed_terms


@pytest.fixture(scope="module")
def sample_text(bench_env):
    return " ".join(story.text for story in bench_env.stories(5, seed=9))


def test_micro_tokenizer(benchmark, sample_text):
    tokens = benchmark(tokenize, sample_text)
    assert len(tokens) > 100


def test_micro_tokenize_lower(benchmark, sample_text):
    words = benchmark(tokenize_lower, sample_text)
    assert words


def test_micro_stemmer_uncached(benchmark, sample_text):
    stemmer = PorterStemmer()
    words = tokenize_lower(sample_text)[:2000]

    def run():
        return [stemmer.stem(word) for word in words]

    stems = benchmark(run)
    assert len(stems) == len(words)


def test_micro_stemmed_terms_cached(benchmark, sample_text):
    """The memoized module-level path used by the runtime framework."""
    stems = benchmark(stemmed_terms, sample_text)
    assert stems


def test_micro_phrase_matcher(benchmark, bench_env, sample_text):
    matcher = bench_env.concept_detector._matcher
    matches = benchmark(matcher.find, sample_text)
    assert isinstance(matches, list)


def test_micro_concept_vector(benchmark, bench_env, sample_text):
    scorer = bench_env.baseline_scorer
    vector = benchmark(scorer.concept_vector, sample_text[:2500])
    assert len(vector) > 0


def test_micro_phrase_search(benchmark, bench_env):
    phrase = bench_env.world.concepts[0].phrase
    results = benchmark(bench_env.engine.phrase_search, phrase, 100)
    assert isinstance(results, list)


def test_micro_ranksvm_decision(benchmark, bench_experiment):
    from repro.ranking import RankSVM

    features = bench_experiment.feature_matrix()
    model = RankSVM(epochs=50)
    model.fit(
        features,
        bench_experiment._labels_arr,
        bench_experiment._groups_arr,
    )
    scores = benchmark(model.decision_function, features)
    assert scores.shape[0] == features.shape[0]
