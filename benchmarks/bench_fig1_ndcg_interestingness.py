"""Figure 1: NDCG@{1,2,3} — random / concept-vector / interestingness model.

The paper's bar chart shows, at every cutoff, random < concept vector <
the learned interestingness model, with NDCG rising in k for all three.
"""

from _report import record_section


def test_fig1_ndcg_interestingness(benchmark, bench_experiment):
    def run():
        return (
            bench_experiment.run_random(),
            bench_experiment.run_concept_vector(),
            bench_experiment.run_model("all features"),
        )

    random_r, baseline_r, learned_r = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    from repro.eval import render_ndcg_figure

    lines = render_ndcg_figure([random_r, baseline_r, learned_r])
    record_section("Figure 1 — NDCG with interestingness features", lines)

    for k in (1, 2, 3):
        assert learned_r.ndcg[k] > baseline_r.ndcg[k]
        assert learned_r.ndcg[k] > random_r.ndcg[k]
    # NDCG rises with k for the learned model (more chances to place gains)
    assert learned_r.ndcg[1] <= learned_r.ndcg[2] <= learned_r.ndcg[3]
