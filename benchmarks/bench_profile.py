"""Profiler overhead benchmark: the sampling profiler must stay cheap.

PR 7's continuous-profiling story only works if leaving the
:class:`~repro.obs.profile.StackSampler` attached to a serving process
is effectively free.  This benchmark times the automaton hot path
(compiled kernel attached, same service shape as ``bench_hotpath``)
with the sampler disabled and enabled at the default 97 hz and records:

* the overhead fraction (profiled / baseline - 1) with a hard bar:
  <= 2% on full-size runs (the smoke bar is looser because a few dozen
  documents finish in well under a second and one noisy scheduler
  quantum swamps the ratio),
* byte-equivalence of the ranked output with the profiler attached —
  profiling must observe the pipeline, never perturb it,
* stage attribution: the sampler joins samples against the service's
  stage marks, so the hot stages (``detect``/``rank``/``stemmer``)
  must actually show up in ``stage_samples()``,
* the ten hottest collapsed stacks, checked into the snapshot so the
  regression gate (``check_regressions.py``) can attach *where the
  time went* to its report when a trajectory ratio slips.

Timing uses the same interleaved min-of-N discipline as the other
benchmarks: baseline and profiled runs alternate inside every round so
host-speed wander cannot land on one side of the ratio.

Run standalone (``python benchmarks/bench_profile.py [--smoke]``) or
under pytest (``PYTHONPATH=src pytest benchmarks/bench_profile.py``).
"""

import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for path in (_HERE, os.path.join(os.path.dirname(_HERE), "src")):
    if path not in sys.path:  # allow `python benchmarks/bench_profile.py`
        sys.path.insert(0, path)

from _report import attach_metrics, record_section
from bench_hotpath import build_service
from repro.obs.profile import StackSampler

SNAPSHOT_PATH = os.path.join(_HERE, "BENCH_profile.json")

PROFILE_HZ = 97.0
DOCUMENT_COUNT = int(os.environ.get("REPRO_BENCH_PROFILE_DOCS", "300"))
SMOKE_DOCUMENT_COUNT = 40
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_PROFILE_REPEATS", "3"))
# a 2% bar needs a timed region long enough that 2% clears the host's
# scheduling-noise floor: five batch passes per region (~1.2s at full
# size) makes the bar ~25ms of signal instead of ~5ms
PASSES_PER_ROUND = int(os.environ.get("REPRO_BENCH_PROFILE_PASSES", "5"))
OVERHEAD_BAR = 0.02  # full runs: sampler costs <= 2% of hot-path time
SMOKE_OVERHEAD_BAR = 0.15  # sub-second smoke runs: noise floor dominates
SERVICE_STAGES = ("stemmer", "detect", "rank")


def run_profile_benchmark(document_count=DOCUMENT_COUNT):
    service, documents = build_service(document_count)
    total_bytes = sum(len(text.encode("utf-8")) for text in documents)

    # the profiled subject is the *fastest* shape we ship — the compiled
    # automaton path — because that is where a fixed per-sample cost
    # hurts the most in relative terms
    kernel = service._pipeline.compile_kernel()
    service._pipeline.attach_kernel(kernel)
    service.process_batch(documents, top=5)  # untimed memo warm-up

    infinity = float("inf")
    baseline_seconds = profiled_seconds = infinity
    sampler = None

    for _round in range(BENCH_REPEATS):
        # -- sampler disabled --------------------------------------------
        started = time.perf_counter()
        for _pass in range(PASSES_PER_ROUND):
            baseline_results = service.process_batch(documents, top=5)
        baseline_seconds = min(
            baseline_seconds, time.perf_counter() - started
        )

        # -- sampler enabled at the default rate -------------------------
        sampler = StackSampler(hz=PROFILE_HZ)
        sampler.start()
        try:
            started = time.perf_counter()
            for _pass in range(PASSES_PER_ROUND):
                profiled_results = service.process_batch(documents, top=5)
            profiled_seconds = min(
                profiled_seconds, time.perf_counter() - started
            )
        finally:
            sampler.stop()

    overhead = profiled_seconds / baseline_seconds - 1.0
    stage_samples = sampler.stage_samples()
    attributed = sum(
        stage_samples.get(stage, 0) for stage in SERVICE_STAGES
    )

    snapshot = {
        "config": {
            "documents": len(documents),
            "bytes": total_bytes,
            "hz": PROFILE_HZ,
            "repeats": BENCH_REPEATS,
            "passes_per_round": PASSES_PER_ROUND,
            "overhead_bar": OVERHEAD_BAR,
        },
        "baseline": {
            "seconds": round(baseline_seconds, 4),
            "mb_per_second": round(
                total_bytes * PASSES_PER_ROUND / baseline_seconds / 1e6, 4
            ),
        },
        "profiled": {
            "seconds": round(profiled_seconds, 4),
            "mb_per_second": round(
                total_bytes * PASSES_PER_ROUND / profiled_seconds / 1e6, 4
            ),
            "samples": sampler.sample_count,
            "ticks": sampler.sample_ticks,
        },
        "profiler": {
            "overhead_fraction": round(overhead, 5),
            "stage_samples": dict(sorted(stage_samples.items())),
            "attributed_stage_samples": attributed,
            "top_stacks": sampler.top_stacks(limit=10),
        },
        "equivalence": {
            "identical_with_profiler": profiled_results == baseline_results,
            "stage_attribution_present": attributed > 0,
        },
    }
    return snapshot


def check_snapshot(snapshot, smoke=False):
    """The PR's acceptance criteria, enforced on every run."""
    equivalence = snapshot["equivalence"]
    assert equivalence["identical_with_profiler"], (
        "ranked output changed with the profiler attached"
    )
    assert equivalence["stage_attribution_present"], snapshot["profiler"]
    assert snapshot["profiled"]["samples"] > 0, snapshot["profiled"]
    bar = SMOKE_OVERHEAD_BAR if smoke else OVERHEAD_BAR
    overhead = snapshot["profiler"]["overhead_fraction"]
    assert overhead <= bar, (
        f"sampler overhead {overhead:.2%} exceeds the {bar:.0%} bar"
    )
    if not smoke:
        snapshot["equivalence"]["overhead_within_bar"] = (
            overhead <= OVERHEAD_BAR
        )


def report_lines(snapshot):
    profiler = snapshot["profiler"]
    stages = ", ".join(
        f"{stage}={count}"
        for stage, count in profiler["stage_samples"].items()
    )
    return [
        f"documents: {snapshot['config']['documents']}, "
        f"{snapshot['config']['bytes'] / 1e6:.2f} MB total, "
        f"sampler at {snapshot['config']['hz']:g} hz",
        f"baseline {snapshot['baseline']['mb_per_second']:6.3f} MB/s -> "
        f"profiled {snapshot['profiled']['mb_per_second']:6.3f} MB/s "
        f"(overhead {profiler['overhead_fraction']:+.2%}, bar "
        f"{snapshot['config']['overhead_bar']:.0%})",
        f"samples: {snapshot['profiled']['samples']} over "
        f"{snapshot['profiled']['ticks']} ticks; stages: {stages}",
        f"ranked output identical with profiler: "
        f"{snapshot['equivalence']['identical_with_profiler']}",
    ]


def test_profiler_overhead():
    """Pytest entry: run the benchmark and enforce the acceptance bar."""
    snapshot = run_profile_benchmark()
    check_snapshot(snapshot)
    with open(SNAPSHOT_PATH, "w") as handle:
        json.dump(attach_metrics(snapshot), handle, indent=1)
        handle.write("\n")
    record_section(
        "Profiler — sampling overhead on the automaton hot path",
        report_lines(snapshot),
    )


def main(argv):
    smoke = "--smoke" in argv
    count = SMOKE_DOCUMENT_COUNT if smoke else DOCUMENT_COUNT
    snapshot = run_profile_benchmark(count)
    check_snapshot(snapshot, smoke=smoke)
    if not smoke:  # the snapshot tracks the full-size run only
        with open(SNAPSHOT_PATH, "w") as handle:
            json.dump(attach_metrics(snapshot), handle, indent=1)
            handle.write("\n")
    print("\n".join(report_lines(snapshot)))
    print("profiler benchmark OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
