"""Table V: all features — the headline result.

Paper:
    Random                       50.01
    Concept Vector Score         30.22
    Best Interestingness Model   23.69
    Best Relevance               24.86
    Interestingness + Relevance  18.66

Shape: the combined model beats every other ranker; relative to the
production baseline the error rate drops by roughly a third.
"""

from _report import record_section
from repro.eval import paired_bootstrap, table5_combined
from repro.features.relevance import RESOURCE_SNIPPETS

from repro.paperdata import TABLE5_WER as PAPER_ROWS


def test_table5_combined(benchmark, bench_experiment):
    results = benchmark.pedantic(
        lambda: table5_combined(bench_experiment), rounds=1, iterations=1
    )
    by_name = {r.name: r for r in results}
    lines = [
        f"{r.name:<30s} measured WER={r.weighted_error_rate * 100:6.2f}%   "
        f"paper={PAPER_ROWS.get(r.name, float('nan')):6.2f}%"
        for r in results
    ]
    combined = by_name["interestingness + relevance"].weighted_error_rate
    baseline = by_name["concept vector score"].weighted_error_rate
    lines.append(
        f"error reduction vs baseline: {(1 - combined / baseline) * 100:.1f}% "
        f"(paper: {(1 - 18.66 / 30.22) * 100:.1f}%)"
    )

    # the paper calls the improvement "significant"; we test it with a
    # paired bootstrap over ranking windows
    import numpy as np

    exp = bench_experiment
    rng = np.random.default_rng(0)
    from repro.ranking.baselines import jitter_ties

    baseline_scores = jitter_ties(exp.baseline_scores(), rng)
    features = exp.feature_matrix((), RESOURCE_SNIPPETS)
    from repro.ranking import RankSVM

    model = RankSVM().fit(features, exp._labels_arr, exp._groups_arr)
    combined_scores = model.decision_function(features)
    comparison = paired_bootstrap(
        exp._labels_arr, baseline_scores, combined_scores, exp._groups_arr,
        resamples=1000,
    )
    lines.append(
        f"paired bootstrap (baseline vs combined): delta="
        f"{comparison.delta_mean * 100:.2f}pp, 95% CI "
        f"[{comparison.delta_low * 100:.2f}, {comparison.delta_high * 100:.2f}], "
        f"p={comparison.p_value:.4f} -> "
        f"{'significant' if comparison.significant else 'not significant'}"
    )
    record_section("Table V — combined model (weighted error rate)", lines)
    assert comparison.significant

    interestingness = by_name["best interestingness model"].weighted_error_rate
    snippets = by_name["relevance only (snippets)"].weighted_error_rate
    # the combined model is the best ranker of all
    assert combined < interestingness
    assert combined < snippets
    assert combined < baseline - 0.05
    # and reduces the baseline error substantially (paper: ~38%)
    assert combined / baseline < 0.75
