"""Seed robustness: the headline orderings across independent worlds.

Not a paper table — a reproduction-quality check.  The Table V
orderings must hold in freshly generated worlds, not just the
benchmark seed.
"""

from _report import record_section
from repro.eval import EXPECTED_ORDERINGS, seed_sweep


def test_seed_robustness(benchmark):
    result = benchmark.pedantic(
        lambda: seed_sweep(seeds=[11, 222, 3333]), rounds=1, iterations=1
    )
    lines = [
        f"{ranker:<24s} WER = "
        f"{result.mean(ranker) * 100:6.2f}% +/- {result.std(ranker) * 100:4.2f}% "
        f"over seeds {result.seeds}"
        for ranker in result.wer
    ]
    for better, worse in EXPECTED_ORDERINGS:
        rate = result.ordering_hold_rate(better, worse)
        lines.append(f"ordering {better} < {worse}: holds {rate * 100:.0f}%")
    record_section("Robustness — Table V orderings across seeds", lines)

    assert result.all_orderings_hold_everywhere()
