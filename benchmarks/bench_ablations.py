"""Design-choice ablations (DESIGN.md section 5).

Not tables in the paper; these quantify the design decisions the paper
makes implicitly:

* linear vs RBF ranking-SVM kernel (the paper reports "the best result
  we obtain" over both);
* CTR-difference-weighted vs unweighted preference pairs;
* the 2500/500 window partitioning vs no windowing (position bias);
* the concept vector's multi-term "bubble-up" bonus on vs off;
* NDCG CTR-bucket resolution (equation 6 fixes 1000 buckets).
"""

import numpy as np

from _report import record_section
from repro.clicks.dataset import ClickDataset
from repro.detection import ConceptVectorScorer
from repro.eval import RankingExperiment
from repro.features.relevance import RESOURCE_SNIPPETS
from repro.ranking import KERNEL_RBF, RankSVM


def test_ablation_kernel(benchmark, bench_experiment):
    def run():
        linear = bench_experiment.run_model("linear kernel")
        rbf = bench_experiment.run_model(
            "rbf kernel", kernel=KERNEL_RBF, gamma=0.3, n_components=300
        )
        return linear, rbf

    linear, rbf = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"linear: WER={linear.weighted_error_rate * 100:6.2f}%",
        f"rbf   : WER={rbf.weighted_error_rate * 100:6.2f}%",
    ]
    record_section("Ablation — RankSVM kernel", lines)
    # both kernels must clearly beat the 50% random line
    assert linear.weighted_error_rate < 0.35
    assert rbf.weighted_error_rate < 0.40


def test_ablation_pair_weighting(benchmark, bench_experiment):
    def run():
        plain = bench_experiment.run_model("unweighted pairs")
        weighted = bench_experiment.run_model(
            "weighted pairs",
            svm=RankSVM(weight_pairs_by_label_gap=True),
        )
        return plain, weighted

    plain, weighted = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"unweighted pairs: WER={plain.weighted_error_rate * 100:6.2f}%",
        f"CTR-gap-weighted: WER={weighted.weighted_error_rate * 100:6.2f}%",
    ]
    record_section("Ablation — pair weighting by CTR gap", lines)
    assert weighted.weighted_error_rate < 0.30


def test_ablation_windowing(benchmark, bench_env, bench_dataset):
    """Windowing combats position bias: without it, far-apart entities
    form misleading preference pairs (early ones earn position clicks)."""

    def run():
        no_windows = ClickDataset.from_records(
            bench_dataset.records, window_chars=10**9, overlap=0
        )
        exp_windowed = RankingExperiment(bench_env, bench_dataset)
        exp_flat = RankingExperiment(bench_env, no_windows)
        return (
            exp_windowed.run_model("windowed"),
            exp_flat.run_model("no windows"),
            no_windows.window_count,
        )

    windowed, flat, flat_groups = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"2500/500 windows: WER={windowed.weighted_error_rate * 100:6.2f}% "
        f"({len(bench_dataset.windows)} groups)",
        f"whole documents : WER={flat.weighted_error_rate * 100:6.2f}% "
        f"({flat_groups} groups)",
    ]
    record_section("Ablation — window partitioning (Section V-A.1)", lines)
    assert windowed.weighted_error_rate < 0.30
    assert flat.weighted_error_rate < 0.50


def test_ablation_multi_term_bonus(benchmark, bench_env, bench_experiment):
    """The concept vector's bubble-up bonus (Section II-B step three)."""

    def run():
        with_bonus = bench_experiment.evaluate_per_window_scorer(
            "bonus on",
            ConceptVectorScorer(
                bench_env.world.doc_frequency,
                bench_env.lexicon,
                multi_term_bonus=True,
            ),
        )
        without = bench_experiment.evaluate_per_window_scorer(
            "bonus off",
            ConceptVectorScorer(
                bench_env.world.doc_frequency,
                bench_env.lexicon,
                multi_term_bonus=False,
            ),
        )
        return with_bonus, without

    with_bonus, without = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"multi-term bonus ON : WER={with_bonus.weighted_error_rate * 100:6.2f}%",
        f"multi-term bonus OFF: WER={without.weighted_error_rate * 100:6.2f}%",
    ]
    record_section("Ablation — concept-vector multi-term bonus", lines)
    # both stay informative baselines
    assert with_bonus.weighted_error_rate < 0.45
    assert without.weighted_error_rate < 0.45


def test_ablation_feature_selection(benchmark, bench_experiment):
    """The paper's backward feature-selection process on our space."""
    from repro.features import backward_eliminate, numeric_feature_names

    def run():
        features = bench_experiment.feature_matrix()
        return backward_eliminate(
            features,
            bench_experiment._labels_arr,
            bench_experiment._groups_arr,
            numeric_feature_names(),
            folds=3,
            min_improvement=0.0005,
            make_model=lambda: RankSVM(epochs=100),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"start: {len(result.steps[0].kept)} columns, "
        f"WER={result.steps[0].weighted_error_rate * 100:6.2f}%",
    ]
    for step in result.steps[1:]:
        lines.append(
            f"  dropped {step.removed:<24s} -> "
            f"WER={step.weighted_error_rate * 100:6.2f}%"
        )
    lines.append(
        f"selected {len(result.selected)} columns, final "
        f"WER={result.final_error * 100:6.2f}%"
    )
    record_section("Ablation — backward feature selection (paper §IV-A process)",
                   lines)
    # selection must never end worse than it started
    assert result.final_error <= result.steps[0].weighted_error_rate + 1e-9
    # the strongest query-log signal must survive
    assert "freq_exact" in result.selected


def test_detection_accuracy(benchmark, bench_env):
    """The paper's first quality dimension: detection accuracy."""
    from repro.eval import evaluate_detection

    stories = bench_env.stories(150, seed=512)
    quality = benchmark.pedantic(
        lambda: evaluate_detection(bench_env.world, bench_env.pipeline, stories),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"span precision: {quality.precision * 100:5.1f}%  "
        f"recall: {quality.recall * 100:5.1f}%  F1: {quality.f1 * 100:5.1f}%",
        f"taxonomy type accuracy: {quality.type_accuracy * 100:5.1f}% "
        f"over {quality.type_total} named detections",
    ]
    record_section("Detection accuracy (quality dimension 1 of 3)", lines)
    assert quality.recall > 0.85
    assert quality.precision > 0.75
    assert quality.type_accuracy > 0.9


def test_ablation_position_bias(benchmark, bench_env, bench_dataset):
    """Quantifies the position bias the windowing step corrects for."""
    from repro.eval import decay_ratio, fitted_decay_chars, position_ctr_curve

    def run():
        curve = position_ctr_curve(
            bench_dataset.records, bin_chars=800, max_position=4000
        )
        return curve, decay_ratio(curve), fitted_decay_chars(curve)

    curve, ratio, fitted = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"chars {bin_.char_start:4d}-{bin_.char_end:4d}: "
        f"CTR={bin_.ctr * 100:5.2f}% over {bin_.views} views"
        for bin_ in curve
        if bin_.views > 0
    ]
    lines.append(
        f"first/last bin CTR ratio: {ratio:.2f}x; fitted decay constant "
        f"~{fitted:.0f} chars (click model configured: "
        f"{bench_env.config.click_model.position_decay_chars:.0f})"
    )
    record_section("Ablation — position bias (Section V-A.1 rationale)", lines)
    assert ratio > 1.0


def test_ablation_ndcg_buckets(benchmark, bench_experiment):
    """Equation 6's bucket resolution: coarser buckets flatten gains."""

    def run():
        features = bench_experiment.feature_matrix((), RESOURCE_SNIPPETS)
        model = RankSVM()
        model.fit(
            features,
            bench_experiment._labels_arr,
            bench_experiment._groups_arr,
        )
        scores = model.decision_function(features)
        return {
            buckets: bench_experiment.ndcg_with_buckets(scores, buckets, k=1)
            for buckets in (10, 100, 1000)
        }

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"buckets={buckets:5d}: ndcg@1={value:.3f}"
        for buckets, value in sorted(values.items())
    ]
    record_section("Ablation — NDCG CTR-bucket resolution", lines)
    for value in values.values():
        assert 0.0 <= value <= 1.0
