"""Hot-path microbenchmark: seed multi-pass vs. single-pass service.

The seed runtime tokenized every document five times (stemmer pass,
named matcher, concept matcher, concept-vector scorer, and the ranker's
relevance context) and matched phrases with per-position tuple slicing.
The single-pass refactor shares one ``TokenizedDocument`` across all
stages and walks a token trie instead.

This benchmark runs both shapes over the same document batch and
records:

* tokenizer invocations per document (seed: 5, single-pass: 1),
* stemmer/ranker throughput in MB/s for both paths,
* a parallel `process_batch(workers=N)` equivalence + throughput check,

and writes a machine-readable snapshot to ``BENCH_hotpath.json`` so
future PRs have a throughput trajectory to compare against.

Run standalone (``python benchmarks/bench_hotpath.py [--smoke]``) or
under pytest (``PYTHONPATH=src pytest benchmarks/bench_hotpath.py``).
"""

import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for path in (_HERE, os.path.join(os.path.dirname(_HERE), "src")):
    if path not in sys.path:  # allow `python benchmarks/bench_hotpath.py`
        sys.path.insert(0, path)

import numpy as np

from _report import attach_metrics, record_section
from repro.corpus import WorldConfig, SyntheticWorld
from repro.detection import (
    ConceptDetector,
    ConceptVectorScorer,
    KIND_PATTERN,
    NamedEntityDetector,
    ShortcutsPipeline,
    deduplicate,
    detectable_concept_phrases,
    resolve_collisions,
)
from repro.detection.pipeline import AnnotatedDocument
from repro.features import (
    InterestingnessExtractor,
    RelevanceModel,
    RelevantKeywordMiner,
    build_stemmed_df,
    stemmed_terms,
)
from repro.querylog import UnitMiner, query_log_for_world
from repro.ranking import RankSVM
from repro.runtime import (
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
)
from repro.search import PrismaTool, SearchEngine, SnippetService, SuggestionService
from repro.text import reset_tokenize_call_count, tokenize_call_count

SNAPSHOT_PATH = os.path.join(_HERE, "BENCH_hotpath.json")

HOTPATH_WORLD = WorldConfig(
    seed=7,
    vocabulary_size=2000,
    topic_count=24,
    words_per_topic=50,
    concept_count=220,
    topic_page_count=150,
)
DOCUMENT_COUNT = int(os.environ.get("REPRO_BENCH_HOTPATH_DOCS", "300"))
SMOKE_DOCUMENT_COUNT = 40
RELEVANCE_PHRASES = 40
BATCH_WORKERS = 4


def build_service(document_count, with_quality=False):
    """A RankerService over a small deterministic world, plus documents.

    With *with_quality* the service also carries a QualityMonitor and a
    DriftDetector baselined on the fresh store (both registering into
    the process-wide registry), matching the ``repro serve`` shape.
    """
    world = SyntheticWorld.build(HOTPATH_WORLD)
    log = query_log_for_world(world)
    lexicon = UnitMiner().mine(log)
    engine = SearchEngine.from_corpus(world.web_corpus)
    detectable = detectable_concept_phrases(
        (tuple(c.terms) for c in world.concepts), lexicon, log
    )
    pipeline = ShortcutsPipeline(
        ConceptDetector(detectable, lexicon),
        ConceptVectorScorer(world.doc_frequency, lexicon),
        named_detector=NamedEntityDetector(world.dictionary),
    )
    extractor = InterestingnessExtractor(
        log, lexicon, engine, world.dictionary, world.wikipedia
    )
    phrases = [c.phrase for c in world.concepts]
    interestingness = QuantizedInterestingnessStore.build(extractor, phrases)
    miner = RelevantKeywordMiner(
        SnippetService(engine),
        PrismaTool(engine),
        SuggestionService(log),
        build_stemmed_df(doc.text for doc in world.web_corpus),
    )
    model = RelevanceModel.mine_all(miner, phrases[:RELEVANCE_PHRASES])
    relevance = PackedRelevanceStore.build(model)

    feature_dim = extractor.extract(phrases[0]).numeric(()).size + 1
    svm = RankSVM(epochs=30)
    rng = np.random.default_rng(0)
    X = rng.normal(size=(40, feature_dim))
    svm.fit(X, X[:, 0], np.repeat(np.arange(8), 5))

    quality = drift = None
    if with_quality:
        from repro.obs.quality import (
            DriftBaseline,
            DriftDetector,
            QualityMonitor,
        )

        quality = QualityMonitor()
        drift = DriftDetector(DriftBaseline.from_store(interestingness))
    service = RankerService(
        pipeline, interestingness, relevance, svm,
        quality=quality, drift=drift,
    )
    documents = [
        story.text for story in world.story_generator(seed=4242).generate_many(
            document_count
        )
    ]
    return service, documents


def seed_process(service, text, top=None):
    """The seed (multi-pass) service shape: one tokenization per stage."""
    stemmed_terms(text)  # the seed's discarded Stemmer timing pass
    pipeline = service._pipeline
    candidates = list(pipeline._patterns.detect(text))
    if pipeline._named is not None:
        candidates.extend(pipeline._named.detect(text))
    candidates.extend(pipeline._concepts.detect(text))
    resolved = deduplicate(resolve_collisions(candidates))
    vector = pipeline._scorer.concept_vector(text)
    scored = [
        d
        if d.kind == KIND_PATTERN
        else d.with_score(pipeline._scorer.score_phrase(vector, d.phrase))
        for d in resolved
    ]
    known = [d for d in scored if d.kind != KIND_PATTERN and d.phrase in service._store]
    pruned = AnnotatedDocument(text=text, detections=known)  # no shared tokens
    ranked = service._ranker.rank_document(pruned)
    return ranked[:top] if top is not None else ranked


def run_hotpath_benchmark(document_count=DOCUMENT_COUNT):
    service, documents = build_service(document_count)
    total_bytes = sum(len(text.encode("utf-8")) for text in documents)

    # -- seed multi-pass shape --------------------------------------------
    reset_tokenize_call_count()
    started = time.perf_counter()
    seed_results = [seed_process(service, text, top=5) for text in documents]
    seed_seconds = time.perf_counter() - started
    seed_calls_per_doc = tokenize_call_count() / len(documents)

    # -- single-pass service ----------------------------------------------
    service.reset_stats()
    reset_tokenize_call_count()
    started = time.perf_counter()
    single_results = service.process_batch(documents, top=5)
    single_seconds = time.perf_counter() - started
    single_calls_per_doc = tokenize_call_count() / len(documents)
    stats = service.stats

    # -- parallel batch -----------------------------------------------------
    service.reset_stats()
    started = time.perf_counter()
    parallel_results = service.process_batch(
        documents, top=5, workers=BATCH_WORKERS
    )
    parallel_seconds = time.perf_counter() - started
    parallel_stats = service.stats

    snapshot = {
        "config": {
            "documents": len(documents),
            "bytes": total_bytes,
            "world_seed": HOTPATH_WORLD.seed,
            "concepts": HOTPATH_WORLD.concept_count,
            "workers": BATCH_WORKERS,
        },
        "tokenize_calls_per_document": {
            "seed_path": round(seed_calls_per_doc, 3),
            "single_pass": round(single_calls_per_doc, 3),
        },
        "seed_path": {
            "seconds": round(seed_seconds, 4),
            "mb_per_second": round(total_bytes / seed_seconds / 1e6, 4),
        },
        "single_pass": {
            "seconds": round(single_seconds, 4),
            "mb_per_second": round(total_bytes / single_seconds / 1e6, 4),
            "stemmer_mb_per_second": round(stats.stemmer_mb_per_second, 4),
            "ranker_mb_per_second": round(stats.ranker_mb_per_second, 4),
            "detection_mb_per_second": round(stats.detection_mb_per_second, 4),
            "feature_mb_per_second": round(stats.feature_mb_per_second, 4),
        },
        "parallel_batch": {
            "workers": BATCH_WORKERS,
            "seconds": round(parallel_seconds, 4),
            "mb_per_second": round(total_bytes / parallel_seconds / 1e6, 4),
            "identical_to_sequential": parallel_results == single_results,
            "documents": parallel_stats.documents,
        },
        "results_identical_to_seed_path": single_results == seed_results,
    }
    return snapshot


def check_snapshot(snapshot):
    """The PR's acceptance criteria, enforced on every run."""
    calls = snapshot["tokenize_calls_per_document"]
    assert calls["single_pass"] <= 1.0, calls
    assert calls["seed_path"] >= 2 * calls["single_pass"], calls
    assert snapshot["results_identical_to_seed_path"]
    assert snapshot["parallel_batch"]["identical_to_sequential"]
    assert (
        snapshot["single_pass"]["mb_per_second"]
        > snapshot["seed_path"]["mb_per_second"]
    ), (snapshot["single_pass"], snapshot["seed_path"])


def report_lines(snapshot):
    calls = snapshot["tokenize_calls_per_document"]
    return [
        f"documents: {snapshot['config']['documents']}, "
        f"{snapshot['config']['bytes'] / 1e6:.2f} MB total",
        f"tokenizer calls/doc: seed path {calls['seed_path']:.1f} -> "
        f"single-pass {calls['single_pass']:.1f}",
        f"end-to-end throughput: seed path "
        f"{snapshot['seed_path']['mb_per_second']:6.3f} MB/s -> single-pass "
        f"{snapshot['single_pass']['mb_per_second']:6.3f} MB/s",
        f"single-pass stages: stemmer "
        f"{snapshot['single_pass']['stemmer_mb_per_second']:6.2f} MB/s, "
        f"detection {snapshot['single_pass']['detection_mb_per_second']:6.3f} MB/s, "
        f"features {snapshot['single_pass']['feature_mb_per_second']:6.3f} MB/s, "
        f"ranker {snapshot['single_pass']['ranker_mb_per_second']:6.3f} MB/s",
        f"process_batch(workers={snapshot['parallel_batch']['workers']}): "
        f"{snapshot['parallel_batch']['mb_per_second']:6.3f} MB/s, "
        f"identical to sequential: "
        f"{snapshot['parallel_batch']['identical_to_sequential']}",
    ]


def test_hotpath_single_pass():
    """Pytest entry: run the benchmark and enforce the acceptance bar."""
    snapshot = run_hotpath_benchmark()
    check_snapshot(snapshot)
    with open(SNAPSHOT_PATH, "w") as handle:
        json.dump(attach_metrics(snapshot), handle, indent=1)
        handle.write("\n")
    record_section("Hot path — single-pass vs seed multi-pass", report_lines(snapshot))


def main(argv):
    count = SMOKE_DOCUMENT_COUNT if "--smoke" in argv else DOCUMENT_COUNT
    snapshot = run_hotpath_benchmark(count)
    check_snapshot(snapshot)
    if "--smoke" not in argv:  # the snapshot tracks the full-size run only
        with open(SNAPSHOT_PATH, "w") as handle:
            json.dump(attach_metrics(snapshot), handle, indent=1)
            handle.write("\n")
    print("\n".join(report_lines(snapshot)))
    print("hot-path benchmark OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
