"""Hot-path microbenchmark: seed multi-pass vs single-pass vs compiled.

The seed runtime tokenized every document five times (stemmer pass,
named matcher, concept matcher, concept-vector scorer, and the ranker's
relevance context) and matched phrases with per-position tuple slicing.
The single-pass refactor shares one ``TokenizedDocument`` across all
stages and walks a token trie instead.  The compiled detection kernel
goes further: interned token-id arrays, flat Aho–Corasick automata for
concept/named/unit matching, and a precomputed vocab->stem table.

This benchmark runs all three shapes over the same document batch and
records:

* tokenizer invocations per document (seed: 5, otherwise: 1) and — for
  the compiled path — interning passes per document (must be 1),
* per-path throughput in MB/s, plus the automaton path's speedups over
  the seed path and over the pure-Python single-pass path,
* byte-equivalence of every path's ranked output,
* a parallel `process_batch(workers=N)` equivalence + throughput check
  (run with the kernel attached),

and writes a machine-readable snapshot to ``BENCH_hotpath.json`` so
future PRs have a throughput trajectory to compare against.  When a
previous snapshot exists, the run also enforces a regression floor: the
automaton-vs-seed speedup *ratio* (machine-independent) must stay
within 20% of the checked-in baseline.

Run standalone (``python benchmarks/bench_hotpath.py [--smoke]``) or
under pytest (``PYTHONPATH=src pytest benchmarks/bench_hotpath.py``).
"""

import json
import os
import sys
import time
from contextlib import contextmanager

_HERE = os.path.dirname(os.path.abspath(__file__))
for path in (_HERE, os.path.join(os.path.dirname(_HERE), "src")):
    if path not in sys.path:  # allow `python benchmarks/bench_hotpath.py`
        sys.path.insert(0, path)

import numpy as np

from _report import attach_metrics, record_section
from repro.corpus import WorldConfig, SyntheticWorld
from repro.detection import (
    ConceptDetector,
    ConceptVectorScorer,
    KIND_PATTERN,
    NamedEntityDetector,
    ShortcutsPipeline,
    deduplicate,
    detectable_concept_phrases,
    resolve_collisions,
)
from repro.detection.pipeline import AnnotatedDocument
from repro.features import (
    InterestingnessExtractor,
    RelevanceModel,
    RelevantKeywordMiner,
    build_stemmed_df,
    stemmed_terms,
)
from repro.querylog import UnitMiner, query_log_for_world
from repro.ranking import RankSVM
from repro.runtime import (
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
)
from repro.detection.kernel import (
    intern_call_count,
    reset_intern_call_count,
)
from repro.search import PrismaTool, SearchEngine, SnippetService, SuggestionService
from repro.text import reset_tokenize_call_count, tokenize_call_count

SNAPSHOT_PATH = os.path.join(_HERE, "BENCH_hotpath.json")

HOTPATH_WORLD = WorldConfig(
    seed=7,
    vocabulary_size=2000,
    topic_count=24,
    words_per_topic=50,
    concept_count=220,
    topic_page_count=150,
)
DOCUMENT_COUNT = int(os.environ.get("REPRO_BENCH_HOTPATH_DOCS", "300"))
SMOKE_DOCUMENT_COUNT = 40
RELEVANCE_PHRASES = 40
BATCH_WORKERS = 4
# the four timed paths are interleaved into this many rounds and the
# per-path minimum over rounds is recorded.  Min-of-N is the standard
# noise-robust estimator (timeit's default): host interference only
# ever adds time, so the minimum is the measurement.  Interleaving
# matters because the headline numbers are *ratios*: shared-host CPU
# speed wanders on multi-second timescales, and timing each path in
# its own contiguous block lets a slow window land entirely on one
# path and skew the ratio.  With seed/single/automaton adjacent inside
# every round, each round's paths see the same host conditions.
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_HOTPATH_REPEATS", "3"))


def build_service(document_count, with_quality=False, kernel=None):
    """A RankerService over a small deterministic world, plus documents.

    *kernel* is forwarded to :class:`ShortcutsPipeline` (None here: the
    benchmark times the pure-Python path first and compiles the kernel
    explicitly afterwards, outside any timed region).

    With *with_quality* the service also carries a QualityMonitor and a
    DriftDetector baselined on the fresh store (both registering into
    the process-wide registry), matching the ``repro serve`` shape.
    """
    world = SyntheticWorld.build(HOTPATH_WORLD)
    log = query_log_for_world(world)
    lexicon = UnitMiner().mine(log)
    engine = SearchEngine.from_corpus(world.web_corpus)
    detectable = detectable_concept_phrases(
        (tuple(c.terms) for c in world.concepts), lexicon, log
    )
    pipeline = ShortcutsPipeline(
        ConceptDetector(detectable, lexicon),
        ConceptVectorScorer(world.doc_frequency, lexicon),
        named_detector=NamedEntityDetector(world.dictionary),
        kernel=kernel,
    )
    extractor = InterestingnessExtractor(
        log, lexicon, engine, world.dictionary, world.wikipedia
    )
    phrases = [c.phrase for c in world.concepts]
    interestingness = QuantizedInterestingnessStore.build(extractor, phrases)
    miner = RelevantKeywordMiner(
        SnippetService(engine),
        PrismaTool(engine),
        SuggestionService(log),
        build_stemmed_df(doc.text for doc in world.web_corpus),
    )
    model = RelevanceModel.mine_all(miner, phrases[:RELEVANCE_PHRASES])
    relevance = PackedRelevanceStore.build(model)

    feature_dim = extractor.extract(phrases[0]).numeric(()).size + 1
    svm = RankSVM(epochs=30)
    rng = np.random.default_rng(0)
    X = rng.normal(size=(40, feature_dim))
    svm.fit(X, X[:, 0], np.repeat(np.arange(8), 5))

    quality = drift = None
    if with_quality:
        from repro.obs.quality import (
            DriftBaseline,
            DriftDetector,
            QualityMonitor,
        )

        quality = QualityMonitor()
        drift = DriftDetector(DriftBaseline.from_store(interestingness))
    service = RankerService(
        pipeline, interestingness, relevance, svm,
        quality=quality, drift=drift,
    )
    documents = [
        story.text for story in world.story_generator(seed=4242).generate_many(
            document_count
        )
    ]
    return service, documents


@contextmanager
def seed_era_stemmer():
    """Run the seed emulation with the seed's *unmemoized* stemmer.

    The seed runtime paid a fresh Porter walk for every token
    occurrence; the bounded ``stem`` memo arrived with the compiled
    kernel work.  Left in place it would leak into the seed timing and
    silently shrink the baseline this benchmark is meant to preserve,
    so the seed block swaps ``stemmed_terms``'s stemmer back to the
    raw implementation (output is identical either way).
    """
    import repro.features.relevance as relevance_module
    from repro.text.stemmer import stem as memoized_stem

    relevance_module.stem = memoized_stem.__wrapped__
    try:
        yield
    finally:
        relevance_module.stem = memoized_stem


def seed_process(service, text, top=None):
    """The seed (multi-pass) service shape: one tokenization per stage."""
    stemmed_terms(text)  # the seed's discarded Stemmer timing pass
    pipeline = service._pipeline
    candidates = list(pipeline._patterns.detect(text))
    if pipeline._named is not None:
        candidates.extend(pipeline._named.detect(text))
    candidates.extend(pipeline._concepts.detect(text))
    resolved = deduplicate(resolve_collisions(candidates))
    vector = pipeline._scorer.concept_vector(text)
    scored = [
        d
        if d.kind == KIND_PATTERN
        else d.with_score(pipeline._scorer.score_phrase(vector, d.phrase))
        for d in resolved
    ]
    known = [d for d in scored if d.kind != KIND_PATTERN and d.phrase in service._store]
    pruned = AnnotatedDocument(text=text, detections=known)  # no shared tokens
    ranked = service._ranker.rank_document(pruned)
    return ranked[:top] if top is not None else ranked


def run_hotpath_benchmark(document_count=DOCUMENT_COUNT):
    service, documents = build_service(document_count)
    total_bytes = sum(len(text.encode("utf-8")) for text in documents)
    count = len(documents)

    # compile once, outside every timed region (offline builds ship the
    # kernel in the pack; lazy compilation is a one-time cost either
    # way), then detach — each round attaches/detaches it so the pure
    # and compiled paths alternate under the same host conditions
    kernel = service._pipeline.compile_kernel()
    service._pipeline.attach_kernel(None)

    # untimed warm-up: one pass per service path fills the stem/idf
    # memos so no timed round pays first-touch costs
    service.process_batch(documents, top=5)
    service._pipeline.attach_kernel(kernel)
    service.process_batch(documents, top=5)

    infinity = float("inf")
    seed_seconds = single_seconds = infinity
    automaton_seconds = parallel_seconds = infinity

    for _round in range(BENCH_REPEATS):
        # -- seed multi-pass shape (kernel detached) ----------------------
        service._pipeline.attach_kernel(None)
        reset_tokenize_call_count()
        with seed_era_stemmer():
            started = time.perf_counter()
            seed_results = [
                seed_process(service, text, top=5) for text in documents
            ]
            seed_seconds = min(
                seed_seconds, time.perf_counter() - started
            )
        seed_calls_per_doc = tokenize_call_count() / count

        # -- single-pass service (pure-Python passes) ---------------------
        service.reset_stats()
        reset_tokenize_call_count()
        started = time.perf_counter()
        single_results = service.process_batch(documents, top=5)
        single_seconds = min(single_seconds, time.perf_counter() - started)
        single_calls_per_doc = tokenize_call_count() / count
        stats = service.stats

        # -- compiled automaton kernel ------------------------------------
        service._pipeline.attach_kernel(kernel)
        service.reset_stats()
        reset_tokenize_call_count()
        reset_intern_call_count()
        started = time.perf_counter()
        automaton_results = service.process_batch(documents, top=5)
        automaton_seconds = min(
            automaton_seconds, time.perf_counter() - started
        )
        automaton_tokenize_per_doc = tokenize_call_count() / count
        automaton_intern_per_doc = intern_call_count() / count
        automaton_stats = service.stats

        # -- parallel batch (kernel attached) -----------------------------
        service.reset_stats()
        started = time.perf_counter()
        parallel_results = service.process_batch(
            documents, top=5, workers=BATCH_WORKERS
        )
        parallel_seconds = min(
            parallel_seconds, time.perf_counter() - started
        )
        parallel_stats = service.stats

    snapshot = {
        "config": {
            "documents": len(documents),
            "bytes": total_bytes,
            "world_seed": HOTPATH_WORLD.seed,
            "concepts": HOTPATH_WORLD.concept_count,
            "workers": BATCH_WORKERS,
        },
        "tokenize_calls_per_document": {
            "seed_path": round(seed_calls_per_doc, 3),
            "single_pass": round(single_calls_per_doc, 3),
            "automaton": round(automaton_tokenize_per_doc, 3),
        },
        "seed_path": {
            "seconds": round(seed_seconds, 4),
            "mb_per_second": round(total_bytes / seed_seconds / 1e6, 4),
        },
        "single_pass": {
            "seconds": round(single_seconds, 4),
            "mb_per_second": round(total_bytes / single_seconds / 1e6, 4),
            "stemmer_mb_per_second": round(stats.stemmer_mb_per_second, 4),
            "ranker_mb_per_second": round(stats.ranker_mb_per_second, 4),
            "detection_mb_per_second": round(stats.detection_mb_per_second, 4),
            "feature_mb_per_second": round(stats.feature_mb_per_second, 4),
        },
        "automaton": {
            "seconds": round(automaton_seconds, 4),
            "mb_per_second": round(total_bytes / automaton_seconds / 1e6, 4),
            "speedup_vs_seed": round(seed_seconds / automaton_seconds, 3),
            "speedup_vs_single_pass": round(
                single_seconds / automaton_seconds, 3
            ),
            "intern_calls_per_document": round(automaton_intern_per_doc, 3),
            "identical_to_seed_path": automaton_results == seed_results,
            "identical_to_pure_python": automaton_results == single_results,
            "stemmer_mb_per_second": round(
                automaton_stats.stemmer_mb_per_second, 4
            ),
            "ranker_mb_per_second": round(
                automaton_stats.ranker_mb_per_second, 4
            ),
            "detection_mb_per_second": round(
                automaton_stats.detection_mb_per_second, 4
            ),
            "feature_mb_per_second": round(
                automaton_stats.feature_mb_per_second, 4
            ),
        },
        "parallel_batch": {
            "workers": BATCH_WORKERS,
            "seconds": round(parallel_seconds, 4),
            "mb_per_second": round(total_bytes / parallel_seconds / 1e6, 4),
            "identical_to_sequential": parallel_results == automaton_results,
            "documents": parallel_stats.documents,
        },
        "results_identical_to_seed_path": single_results == seed_results,
    }
    return snapshot


MIN_AUTOMATON_SPEEDUP = 10.0
FLOOR_FRACTION = 0.8  # regression gate: keep >= 80% of the baseline ratio


def check_snapshot(snapshot, smoke=False):
    """The PR's acceptance criteria, enforced on every run.

    Smoke runs (a few dozen documents on shared CI hardware) check
    every equivalence and structural invariant but leave the hard
    ``MIN_AUTOMATON_SPEEDUP`` bar to full-size runs — at smoke scale
    the ratio is still gated, just by the baseline floor
    (:func:`check_against_baseline`) rather than the absolute bar.
    """
    calls = snapshot["tokenize_calls_per_document"]
    assert calls["single_pass"] <= 1.0, calls
    assert calls["automaton"] <= 1.0, calls
    assert calls["seed_path"] >= 2 * calls["single_pass"], calls
    assert snapshot["results_identical_to_seed_path"]
    assert snapshot["parallel_batch"]["identical_to_sequential"]
    assert (
        snapshot["single_pass"]["mb_per_second"]
        > snapshot["seed_path"]["mb_per_second"]
    ), (snapshot["single_pass"], snapshot["seed_path"])
    automaton = snapshot["automaton"]
    assert automaton["identical_to_seed_path"], "automaton != seed output"
    assert automaton["identical_to_pure_python"], "automaton != trie output"
    assert automaton["intern_calls_per_document"] <= 1.0, automaton
    if not smoke:
        assert automaton["speedup_vs_seed"] >= MIN_AUTOMATON_SPEEDUP, automaton
    assert automaton["speedup_vs_single_pass"] > 1.0, automaton


def check_against_baseline(snapshot, baseline):
    """The throughput floor gate, in machine-independent ratio terms.

    Absolute MB/s varies with the host, but the automaton-vs-seed
    speedup is a ratio of two measurements from the same process on the
    same machine, so it transfers: a >20% drop below the checked-in
    baseline ratio means the compiled path itself regressed.
    """
    base = (baseline or {}).get("automaton", {}).get("speedup_vs_seed")
    if not base:
        return  # pre-kernel snapshot: nothing to gate against yet
    measured = snapshot["automaton"]["speedup_vs_seed"]
    floor = FLOOR_FRACTION * base
    assert measured >= floor, (
        f"automaton speedup regressed: {measured:.2f}x vs seed, floor is "
        f"{floor:.2f}x ({FLOOR_FRACTION:.0%} of baseline {base:.2f}x)"
    )


def load_baseline():
    """The checked-in snapshot (None when absent/unreadable)."""
    try:
        with open(SNAPSHOT_PATH) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def report_lines(snapshot):
    calls = snapshot["tokenize_calls_per_document"]
    return [
        f"documents: {snapshot['config']['documents']}, "
        f"{snapshot['config']['bytes'] / 1e6:.2f} MB total",
        f"tokenizer calls/doc: seed path {calls['seed_path']:.1f} -> "
        f"single-pass {calls['single_pass']:.1f}",
        f"end-to-end throughput: seed path "
        f"{snapshot['seed_path']['mb_per_second']:6.3f} MB/s -> single-pass "
        f"{snapshot['single_pass']['mb_per_second']:6.3f} MB/s -> automaton "
        f"{snapshot['automaton']['mb_per_second']:6.3f} MB/s "
        f"({snapshot['automaton']['speedup_vs_seed']:.1f}x seed, "
        f"{snapshot['automaton']['speedup_vs_single_pass']:.1f}x trie)",
        f"automaton equivalence: seed "
        f"{snapshot['automaton']['identical_to_seed_path']}, pure-python "
        f"{snapshot['automaton']['identical_to_pure_python']}, "
        f"intern calls/doc {snapshot['automaton']['intern_calls_per_document']:.1f}",
        f"single-pass stages: stemmer "
        f"{snapshot['single_pass']['stemmer_mb_per_second']:6.2f} MB/s, "
        f"detection {snapshot['single_pass']['detection_mb_per_second']:6.3f} MB/s, "
        f"features {snapshot['single_pass']['feature_mb_per_second']:6.3f} MB/s, "
        f"ranker {snapshot['single_pass']['ranker_mb_per_second']:6.3f} MB/s",
        f"process_batch(workers={snapshot['parallel_batch']['workers']}): "
        f"{snapshot['parallel_batch']['mb_per_second']:6.3f} MB/s, "
        f"identical to sequential: "
        f"{snapshot['parallel_batch']['identical_to_sequential']}",
    ]


def test_hotpath_single_pass():
    """Pytest entry: run the benchmark and enforce the acceptance bar."""
    baseline = load_baseline()
    snapshot = run_hotpath_benchmark()
    check_snapshot(snapshot)
    check_against_baseline(snapshot, baseline)
    with open(SNAPSHOT_PATH, "w") as handle:
        json.dump(attach_metrics(snapshot), handle, indent=1)
        handle.write("\n")
    record_section(
        "Hot path — seed multi-pass vs single-pass vs compiled kernel",
        report_lines(snapshot),
    )


def main(argv):
    smoke = "--smoke" in argv
    count = SMOKE_DOCUMENT_COUNT if smoke else DOCUMENT_COUNT
    baseline = load_baseline()
    snapshot = run_hotpath_benchmark(count)
    check_snapshot(snapshot, smoke=smoke)
    check_against_baseline(snapshot, baseline)
    if "--smoke" not in argv:  # the snapshot tracks the full-size run only
        with open(SNAPSHOT_PATH, "w") as handle:
            json.dump(attach_metrics(snapshot), handle, indent=1)
            handle.write("\n")
    print("\n".join(report_lines(snapshot)))
    print("hot-path benchmark OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
