"""Observability overhead benchmark: metrics on vs. fully disabled.

The observability layer promises a lock-free hot path — per-thread
numpy shards, ~one array increment per event — so turning it on must
not meaningfully slow the serving path.  This benchmark builds the same
deterministic world twice, once with the registry disabled and once
with metrics enabled plus 1-in-100 trace sampling (the production
shape), runs the identical document batch through both services with
interleaved repeats, and records:

* end-to-end throughput in both modes and the relative overhead
  (**must stay under 3%** on the full run; the smoke run allows 10%
  for CI timer noise);
* a byte-identical check on the ranked output — observability must
  never change a score or an ordering;
* the enabled registry's snapshot (via ``_report.attach_metrics``) so
  ``BENCH_obs.json`` doubles as an exposition-format example.

Run standalone (``python benchmarks/bench_obs.py [--smoke]``) or under
pytest (``PYTHONPATH=src pytest benchmarks/bench_obs.py``).
"""

import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for path in (_HERE, os.path.join(os.path.dirname(_HERE), "src")):
    if path not in sys.path:  # allow `python benchmarks/bench_obs.py`
        sys.path.insert(0, path)

from _report import attach_metrics, record_section
from bench_hotpath import build_service
from repro.obs import configure, get_registry

SNAPSHOT_PATH = os.path.join(_HERE, "BENCH_obs.json")

DOCUMENT_COUNT = int(os.environ.get("REPRO_BENCH_OBS_DOCS", "300"))
SMOKE_DOCUMENT_COUNT = 40
TRACE_SAMPLE_EVERY = 100
REPEATS = 3
SMOKE_REPEATS = 1
OVERHEAD_BAR = 0.03
SMOKE_OVERHEAD_BAR = 0.10


def _build_mode(enabled, document_count):
    """(service, documents) built under a fresh registry/tracer pair.

    ``configure`` must run before construction: instrumented objects
    bind their metric handles when built, so the disabled service holds
    no-op metrics end to end.
    """
    configure(
        enabled=enabled,
        sample_every=TRACE_SAMPLE_EVERY if enabled else 0,
    )
    return build_service(document_count)


def _serialized(results):
    """Ranked output as canonical bytes for the byte-identical check."""
    return json.dumps(
        [
            [(d.phrase, d.start, d.end, d.kind, d.score) for d in ranked]
            for ranked in results
        ],
        sort_keys=True,
    ).encode("utf-8")


def run_obs_benchmark(document_count=DOCUMENT_COUNT, repeats=REPEATS):
    # Build order: disabled first, then enabled — the enabled pair must
    # be the installed one afterwards so attach_metrics exports it.
    service_off, documents = _build_mode(False, document_count)
    service_on, documents_on = _build_mode(True, document_count)
    assert documents == documents_on  # same seeds -> same batch
    registry_on = get_registry()
    total_bytes = sum(len(text.encode("utf-8")) for text in documents)

    # one warmup pass each (tries/caches settle identically)
    results_off = service_off.process_batch(documents, top=5)
    results_on = service_on.process_batch(documents, top=5)

    # interleaved repeats, min-of: robust to machine noise drifting
    # between the two measurement blocks
    seconds_off, seconds_on = [], []
    for __ in range(repeats):
        started = time.perf_counter()
        service_off.process_batch(documents, top=5)
        seconds_off.append(time.perf_counter() - started)
        started = time.perf_counter()
        service_on.process_batch(documents, top=5)
        seconds_on.append(time.perf_counter() - started)
    best_off = min(seconds_off)
    best_on = min(seconds_on)
    overhead = (best_on - best_off) / best_off

    sampled = registry_on.snapshot().get("trace_sampled_total")
    snapshot = {
        "config": {
            "documents": len(documents),
            "bytes": total_bytes,
            "repeats": repeats,
            "trace_sample_every": TRACE_SAMPLE_EVERY,
            "overhead_bar": OVERHEAD_BAR,
        },
        "disabled": {
            "seconds": round(best_off, 4),
            "mb_per_second": round(total_bytes / best_off / 1e6, 4),
        },
        "enabled": {
            "seconds": round(best_on, 4),
            "mb_per_second": round(total_bytes / best_on / 1e6, 4),
            "sampled_traces": (
                int(sampled["series"][0]["value"]) if sampled else 0
            ),
        },
        "overhead_fraction": round(overhead, 5),
        "equivalence": {
            "identical_with_observability": (
                results_on == results_off
                and _serialized(results_on) == _serialized(results_off)
            ),
            "overhead_within_bar": overhead < OVERHEAD_BAR,
        },
    }
    return attach_metrics(snapshot, registry_on)


def check_snapshot(snapshot, overhead_bar=OVERHEAD_BAR):
    """The PR's acceptance criteria, enforced on every run."""
    assert snapshot["equivalence"]["identical_with_observability"]
    assert snapshot["overhead_fraction"] < overhead_bar, snapshot
    assert snapshot["enabled"]["sampled_traces"] >= 1, snapshot["enabled"]
    assert "metrics" in snapshot and "rank_stage_seconds" in snapshot["metrics"]


def report_lines(snapshot):
    return [
        f"documents: {snapshot['config']['documents']}, "
        f"{snapshot['config']['bytes'] / 1e6:.2f} MB total, "
        f"min of {snapshot['config']['repeats']} interleaved repeats",
        f"observability off: {snapshot['disabled']['mb_per_second']:6.3f} MB/s",
        f"observability on : {snapshot['enabled']['mb_per_second']:6.3f} MB/s "
        f"(1/{snapshot['config']['trace_sample_every']} trace sampling, "
        f"{snapshot['enabled']['sampled_traces']} traces kept)",
        f"overhead: {snapshot['overhead_fraction'] * 100:+.2f}% "
        f"(bar: {snapshot['config']['overhead_bar'] * 100:.0f}%)",
        f"ranked output byte-identical: "
        f"{snapshot['equivalence']['identical_with_observability']}",
    ]


def test_observability_overhead():
    """Pytest entry: smoke-size run with the relaxed noise bar."""
    snapshot = run_obs_benchmark(SMOKE_DOCUMENT_COUNT, repeats=SMOKE_REPEATS)
    check_snapshot(snapshot, overhead_bar=SMOKE_OVERHEAD_BAR)
    record_section("Observability — overhead of metrics + tracing", report_lines(snapshot))


def main(argv):
    smoke = "--smoke" in argv
    count = SMOKE_DOCUMENT_COUNT if smoke else DOCUMENT_COUNT
    repeats = SMOKE_REPEATS if smoke else REPEATS
    snapshot = run_obs_benchmark(count, repeats=repeats)
    check_snapshot(
        snapshot, overhead_bar=SMOKE_OVERHEAD_BAR if smoke else OVERHEAD_BAR
    )
    if not smoke:  # the snapshot tracks the full-size run only
        with open(SNAPSHOT_PATH, "w") as handle:
            json.dump(snapshot, handle, indent=1)
            handle.write("\n")
    print("\n".join(report_lines(snapshot)))
    print("observability benchmark OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
