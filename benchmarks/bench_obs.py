"""Observability overhead benchmark: metrics on vs. fully disabled.

The observability layer promises a lock-free hot path — per-thread
numpy shards, ~one array increment per event — so turning it on must
not meaningfully slow the serving path.  This benchmark builds the same
deterministic world twice, once with the registry disabled and once
with metrics enabled plus 1-in-100 trace sampling (the production
shape), runs the identical document batch through both services with
interleaved repeats, and records:

* end-to-end throughput in both modes and the relative overhead
  (**must stay under 3%** on the full run; the smoke run allows 10%
  for CI timer noise);
* a third *quality* mode — metrics plus an attached QualityMonitor and
  DriftDetector, the ``repro serve`` shape — whose explain=False
  throughput must stay within **1%** of plain metrics-on (smoke: 10%);
* a byte-identical check on the ranked output — observability must
  never change a score or an ordering — and an explain-equivalence
  check: ``process(..., explain=True)`` must reproduce the plain
  ranking (phrase, span, kind, score) byte for byte;
* the enabled registry's snapshot (via ``_report.attach_metrics``) so
  ``BENCH_obs.json`` doubles as an exposition-format example.

Run standalone (``python benchmarks/bench_obs.py [--smoke]``) or under
pytest (``PYTHONPATH=src pytest benchmarks/bench_obs.py``).
"""

import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for path in (_HERE, os.path.join(os.path.dirname(_HERE), "src")):
    if path not in sys.path:  # allow `python benchmarks/bench_obs.py`
        sys.path.insert(0, path)

from _report import attach_metrics, record_section
from bench_hotpath import build_service
from repro.obs import configure, get_registry

SNAPSHOT_PATH = os.path.join(_HERE, "BENCH_obs.json")

DOCUMENT_COUNT = int(os.environ.get("REPRO_BENCH_OBS_DOCS", "300"))
SMOKE_DOCUMENT_COUNT = 40
TRACE_SAMPLE_EVERY = 100
REPEATS = 3
SMOKE_REPEATS = 1
OVERHEAD_BAR = 0.03
SMOKE_OVERHEAD_BAR = 0.10
QUALITY_OVERHEAD_BAR = 0.01  # quality+drift vs plain metrics-on
SMOKE_QUALITY_OVERHEAD_BAR = 0.10
EXPLAIN_CHECK_DOCUMENTS = 40  # explain re-runs per-concept python loops


def _build_mode(enabled, document_count, with_quality=False):
    """(service, documents) built under a fresh registry/tracer pair.

    ``configure`` must run before construction: instrumented objects
    bind their metric handles when built, so the disabled service holds
    no-op metrics end to end.
    """
    configure(
        enabled=enabled,
        sample_every=TRACE_SAMPLE_EVERY if enabled else 0,
    )
    return build_service(document_count, with_quality=with_quality)


def _serialized(results):
    """Ranked output as canonical bytes for the byte-identical check."""
    return json.dumps(
        [
            [(d.phrase, d.start, d.end, d.kind, d.score) for d in ranked]
            for ranked in results
        ],
        sort_keys=True,
    ).encode("utf-8")


def _explain_matches_plain(service, documents):
    """explain=True reproduces the plain ranking byte for byte."""
    for text in documents:
        plain = service.process(text, top=5)
        ranked, explanations = service.process(text, top=5, explain=True)
        if _serialized([plain]) != _serialized([ranked]):
            return False
        if len(explanations) != len(ranked):
            return False
        for detection, explanation in zip(ranked, explanations):
            if explanation.phrase != detection.phrase:
                return False
            if abs(explanation.contribution_sum()
                   - explanation.decision_score) > 1e-9:
                return False
    return True


def run_obs_benchmark(document_count=DOCUMENT_COUNT, repeats=REPEATS):
    # Build order: disabled first, then the enabled pair — the
    # quality-mode registry must be the installed one afterwards so
    # attach_metrics exports the full serving shape.
    service_off, documents = _build_mode(False, document_count)
    service_on, documents_on = _build_mode(True, document_count)
    registry_on = get_registry()
    service_quality, documents_quality = _build_mode(
        True, document_count, with_quality=True
    )
    registry_quality = get_registry()
    assert documents == documents_on == documents_quality  # same seeds
    total_bytes = sum(len(text.encode("utf-8")) for text in documents)

    # one warmup pass each (tries/caches settle identically)
    results_off = service_off.process_batch(documents, top=5)
    results_on = service_on.process_batch(documents, top=5)
    results_quality = service_quality.process_batch(documents, top=5)
    explain_identical = _explain_matches_plain(
        service_quality, documents[:EXPLAIN_CHECK_DOCUMENTS]
    )

    # interleaved repeats, min-of: robust to machine noise drifting
    # between the measurement blocks
    seconds_off, seconds_on, seconds_quality = [], [], []
    for __ in range(repeats):
        started = time.perf_counter()
        service_off.process_batch(documents, top=5)
        seconds_off.append(time.perf_counter() - started)
        started = time.perf_counter()
        service_on.process_batch(documents, top=5)
        seconds_on.append(time.perf_counter() - started)
        started = time.perf_counter()
        service_quality.process_batch(documents, top=5)
        seconds_quality.append(time.perf_counter() - started)
    best_off = min(seconds_off)
    best_on = min(seconds_on)
    best_quality = min(seconds_quality)
    overhead = (best_on - best_off) / best_off
    quality_overhead = (best_quality - best_on) / best_on

    sampled = registry_quality.snapshot().get("trace_sampled_total")
    snapshot = {
        "config": {
            "documents": len(documents),
            "bytes": total_bytes,
            "repeats": repeats,
            "trace_sample_every": TRACE_SAMPLE_EVERY,
            "overhead_bar": OVERHEAD_BAR,
            "quality_overhead_bar": QUALITY_OVERHEAD_BAR,
            "explain_check_documents": EXPLAIN_CHECK_DOCUMENTS,
        },
        "disabled": {
            "seconds": round(best_off, 4),
            "mb_per_second": round(total_bytes / best_off / 1e6, 4),
        },
        "enabled": {
            "seconds": round(best_on, 4),
            "mb_per_second": round(total_bytes / best_on / 1e6, 4),
            "sampled_traces": (
                int(sampled["series"][0]["value"]) if sampled else 0
            ),
        },
        "quality": {
            "seconds": round(best_quality, 4),
            "mb_per_second": round(total_bytes / best_quality / 1e6, 4),
        },
        "overhead_fraction": round(overhead, 5),
        "quality_overhead_fraction": round(quality_overhead, 5),
        "equivalence": {
            "identical_with_observability": (
                results_on == results_off
                and _serialized(results_on) == _serialized(results_off)
            ),
            "identical_with_quality_monitors": (
                _serialized(results_quality) == _serialized(results_off)
            ),
            "explain_order_identical": explain_identical,
            "overhead_within_bar": overhead < OVERHEAD_BAR,
            "quality_overhead_within_bar": (
                quality_overhead < QUALITY_OVERHEAD_BAR
            ),
        },
    }
    return attach_metrics(snapshot, registry_quality)


def check_snapshot(
    snapshot, overhead_bar=OVERHEAD_BAR,
    quality_overhead_bar=QUALITY_OVERHEAD_BAR,
):
    """The PR's acceptance criteria, enforced on every run."""
    assert snapshot["equivalence"]["identical_with_observability"]
    assert snapshot["equivalence"]["identical_with_quality_monitors"]
    assert snapshot["equivalence"]["explain_order_identical"]
    assert snapshot["overhead_fraction"] < overhead_bar, snapshot
    assert (
        snapshot["quality_overhead_fraction"] < quality_overhead_bar
    ), snapshot
    assert snapshot["enabled"]["sampled_traces"] >= 1, snapshot["enabled"]
    assert "metrics" in snapshot and "rank_stage_seconds" in snapshot["metrics"]
    assert "feature_drift_zscore" in snapshot["metrics"]


def report_lines(snapshot):
    return [
        f"documents: {snapshot['config']['documents']}, "
        f"{snapshot['config']['bytes'] / 1e6:.2f} MB total, "
        f"min of {snapshot['config']['repeats']} interleaved repeats",
        f"observability off: {snapshot['disabled']['mb_per_second']:6.3f} MB/s",
        f"observability on : {snapshot['enabled']['mb_per_second']:6.3f} MB/s "
        f"(1/{snapshot['config']['trace_sample_every']} trace sampling, "
        f"{snapshot['enabled']['sampled_traces']} traces kept)",
        f"quality+drift on : {snapshot['quality']['mb_per_second']:6.3f} MB/s",
        f"overhead: {snapshot['overhead_fraction'] * 100:+.2f}% "
        f"(bar: {snapshot['config']['overhead_bar'] * 100:.0f}%)",
        f"quality overhead vs metrics-on: "
        f"{snapshot['quality_overhead_fraction'] * 100:+.2f}% "
        f"(bar: {snapshot['config']['quality_overhead_bar'] * 100:.0f}%)",
        f"ranked output byte-identical: "
        f"{snapshot['equivalence']['identical_with_observability']}, "
        f"with quality monitors: "
        f"{snapshot['equivalence']['identical_with_quality_monitors']}, "
        f"explain order: "
        f"{snapshot['equivalence']['explain_order_identical']}",
    ]


def test_observability_overhead():
    """Pytest entry: smoke-size run with the relaxed noise bar."""
    snapshot = run_obs_benchmark(SMOKE_DOCUMENT_COUNT, repeats=SMOKE_REPEATS)
    check_snapshot(
        snapshot,
        overhead_bar=SMOKE_OVERHEAD_BAR,
        quality_overhead_bar=SMOKE_QUALITY_OVERHEAD_BAR,
    )
    record_section("Observability — overhead of metrics + tracing", report_lines(snapshot))


def main(argv):
    smoke = "--smoke" in argv
    count = SMOKE_DOCUMENT_COUNT if smoke else DOCUMENT_COUNT
    repeats = SMOKE_REPEATS if smoke else REPEATS
    snapshot = run_obs_benchmark(count, repeats=repeats)
    check_snapshot(
        snapshot,
        overhead_bar=SMOKE_OVERHEAD_BAR if smoke else OVERHEAD_BAR,
        quality_overhead_bar=(
            SMOKE_QUALITY_OVERHEAD_BAR if smoke else QUALITY_OVERHEAD_BAR
        ),
    )
    if not smoke:  # the snapshot tracks the full-size run only
        with open(SNAPSHOT_PATH, "w") as handle:
            json.dump(snapshot, handle, indent=1)
            handle.write("\n")
    print("\n".join(report_lines(snapshot)))
    print("observability benchmark OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
