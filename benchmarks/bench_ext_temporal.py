"""EXTENSION: temporal/trend features (paper Section IV-C future work).

Not a table in the paper — the authors defer trend awareness to future
work.  This benchmark quantifies it on the synthetic world: breaking-
news events spike a concept's query volume and CTR for a week; adding
``spike_ratio`` and ``momentum`` features (from weekly query logs) to
the static Table I space should reduce the weighted error rate, most
visibly inside the event-affected ranking groups.
"""

from _report import record_section
from repro.eval import temporal_feature_experiment


def test_ext_temporal_features(benchmark, bench_env):
    result = benchmark.pedantic(
        lambda: temporal_feature_experiment(
            bench_env, weeks=8, stories_per_week=50, events_per_week=12.0
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"entities: {result.entity_count} "
        f"({result.event_entity_count} on spiking concepts)",
        f"overall WER:       static={result.static_wer * 100:6.2f}%  "
        f"+temporal={result.temporal_wer * 100:6.2f}%  "
        f"({result.improvement_percent:+.1f}%)",
        f"event-window WER:  static={result.event_static_wer * 100:6.2f}%  "
        f"+temporal={result.event_temporal_wer * 100:6.2f}%  "
        f"({result.event_improvement_percent:+.1f}%)",
    ]
    record_section("Extension — temporal trend features (paper future work)", lines)

    # trend features must help where events occur and never hurt overall
    assert result.event_temporal_wer < result.event_static_wer
    assert result.temporal_wer < result.static_wer + 0.01
