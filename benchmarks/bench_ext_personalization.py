"""EXTENSION: personalization via collaborative filtering (Section IV-C).

The paper: "personalization and collaborative filtering techniques can
greatly improve this prediction for individuals by analyzing the
history of actions taken."  We simulate logged-in users with latent
topic interests, factorize their train-period interaction matrix, and
measure per-user pairwise preference accuracy on a held-out period:
the CF-personalized ordering vs the global-interestingness ordering.
"""

import numpy as np

from _report import record_section
from repro.clicks import UserClickModel
from repro.personalization import (
    PersonalizedClickSimulator,
    factorize,
    generate_users,
)


def test_ext_personalization(benchmark, bench_env):
    def run():
        env = bench_env
        rng = np.random.default_rng(71)
        users = generate_users(rng, len(env.world.topics), 40)
        simulator = PersonalizedClickSimulator(
            env.world,
            env.pipeline,
            users,
            UserClickModel(seed=29),
            personalization_weight=0.75,
            views_per_session=20,
        )
        stories = env.stories(80, seed=404)
        train = simulator.simulate(stories, sessions=6000, seed=1)
        test = simulator.simulate(stories, sessions=3000, seed=2)
        model = factorize(train, rank=8)

        # held-out evaluation: order concept pairs per user by test CTR
        test_ctr = test.ctr()
        test_views = test.views
        interestingness = np.asarray(
            [c.interestingness for c in env.world.concepts]
        )
        global_correct = personal_correct = total = 0
        for user in users:
            seen = np.flatnonzero(test_views[user.user_id] >= 40)
            predicted = model.predict_user(user.user_id)
            for i_pos, i in enumerate(seen):
                for j in seen[i_pos + 1 :]:
                    gap = test_ctr[user.user_id, i] - test_ctr[user.user_id, j]
                    if abs(gap) < 0.01:
                        continue
                    total += 1
                    truth = gap > 0
                    global_correct += (
                        interestingness[i] > interestingness[j]
                    ) == truth
                    personal_correct += (predicted[i] > predicted[j]) == truth
        return total, global_correct, personal_correct

    total, global_correct, personal_correct = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    global_acc = global_correct / total
    personal_acc = personal_correct / total
    lines = [
        f"held-out per-user preference pairs: {total}",
        f"global interestingness ordering : {global_acc * 100:5.1f}% correct",
        f"CF-personalized ordering        : {personal_acc * 100:5.1f}% correct "
        f"({(personal_acc - global_acc) * 100:+.1f}pp)",
    ]
    record_section(
        "Extension — collaborative-filtering personalization", lines
    )

    assert total > 200
    assert personal_acc > global_acc
