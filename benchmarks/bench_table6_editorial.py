"""Table VI: the editorial study.

Paper (Concept Vector Score -> Ranking Algorithm):
    News:    Very Interesting 32.6% -> 45.4%, Not Interesting 26.4% -> 15.1%
             Very Relevant    53.0% -> 66.3%, Not Relevant    17.7% ->  7.4%
    Answers: Very Interesting 35.9% -> 41.6%, Not Interesting 28.5% -> 18.1%
             Very Relevant    50.3% -> 61.3%, Not Relevant    20.4% -> 10.6%
    Overall: non-interesting + non-relevant share drops 45.1%
             (23.3% -> 12.8%).

Shape: on both content types, the learned ranking raises the Very
shares and cuts the Not shares for both criteria.
"""

import numpy as np

from _report import record_section
from repro.eval import CONTENT_ANSWERS, CONTENT_NEWS, table6_editorial
from repro.eval.editorial import NOT, SOMEWHAT, VERY


def test_table6_editorial(benchmark, bench_env, bench_ranker):
    results = benchmark.pedantic(
        lambda: table6_editorial(
            bench_env, bench_ranker, news_count=150, answers_count=300
        ),
        rounds=1,
        iterations=1,
    )

    lines = []
    for ranker_name in ("concept vector score", "ranking algorithm"):
        for content in (CONTENT_NEWS, CONTENT_ANSWERS):
            table = results[ranker_name][content]
            lines.append(
                f"{ranker_name:<22s} {content:<8s} "
                f"interesting: very={table.interestingness[VERY] * 100:5.1f}% "
                f"somewhat={table.interestingness[SOMEWHAT] * 100:5.1f}% "
                f"not={table.interestingness[NOT] * 100:5.1f}%  |  "
                f"relevant: very={table.relevance[VERY] * 100:5.1f}% "
                f"somewhat={table.relevance[SOMEWHAT] * 100:5.1f}% "
                f"not={table.relevance[NOT] * 100:5.1f}%"
            )

    base_not = np.mean(
        [
            results["concept vector score"][c].not_interesting_or_relevant()
            for c in (CONTENT_NEWS, CONTENT_ANSWERS)
        ]
    )
    learned_not = np.mean(
        [
            results["ranking algorithm"][c].not_interesting_or_relevant()
            for c in (CONTENT_NEWS, CONTENT_ANSWERS)
        ]
    )
    lines.append(
        f"non-interesting/non-relevant share: {base_not * 100:.1f}% -> "
        f"{learned_not * 100:.1f}% ({(1 - learned_not / base_not) * 100:.1f}% drop; "
        "paper: 23.3% -> 12.8%, a 45.1% drop)"
    )
    record_section("Table VI — editorial study", lines)

    for content in (CONTENT_NEWS, CONTENT_ANSWERS):
        baseline = results["concept vector score"][content]
        learned = results["ranking algorithm"][content]
        assert learned.interestingness[VERY] > baseline.interestingness[VERY]
        assert learned.interestingness[NOT] < baseline.interestingness[NOT]
        assert learned.relevance[VERY] > baseline.relevance[VERY]
        assert learned.relevance[NOT] < baseline.relevance[NOT]
    assert learned_not < base_not * 0.8
