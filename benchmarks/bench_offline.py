"""Offline-build benchmark: parallel vectorized pipeline vs seed path.

The seed offline pipeline tokenizes the corpus twice (index + stemmed
df), builds dict-of-dicts postings, and mines each concept's relevant
keywords by re-tokenizing snippet strings and walking python Counters.
The offline builder's fast mode tokenizes once, freezes the index into
CSR numpy columns, and mines keywords/units on interned id arrays, with
an optional process-pool fan-out for per-concept mining.

This benchmark generates a synthetic corpus + query log (alphabetic
vocabulary — the tokenizer drops numeric tokens — with concepts
injected into documents so phrase search and mining have real signal),
then runs :class:`~repro.offline.builder.OfflineBuilder` in seed mode
and fast mode (twice, at different worker counts) and records:

* per-stage seconds, docs/sec and concepts/sec for both modes,
* the end-to-end speedup (the PR bar: >= 3x),
* equivalence flags — pack bytes identical across seed/fast and across
  worker counts, frozen CSR answers == dict index answers, parallel
  mining == serial mining, vectorized unit lexicon == seed lexicon,
  vectorized keyword miner == seed miner on all three resources.

Run standalone (``python benchmarks/bench_offline.py [--smoke]``) or
under pytest (``PYTHONPATH=src pytest benchmarks/bench_offline.py``).
"""

import json
import os
import random
import string
import sys
import tempfile

_HERE = os.path.dirname(os.path.abspath(__file__))
for path in (_HERE, os.path.join(os.path.dirname(_HERE), "src")):
    if path not in sys.path:  # allow `python benchmarks/bench_offline.py`
        sys.path.insert(0, path)

from _report import attach_metrics, record_section
from repro.features.relevance import (
    RESOURCES,
    RelevantKeywordMiner,
    build_stemmed_df,
)
from repro.offline.builder import BuildConfig, OfflineBuilder
from repro.offline.corpus import TokenizedCorpus
from repro.offline.mining import VectorizedKeywordMiner
from repro.querylog.log import QueryLog
from repro.querylog.units import UnitMiner, VectorizedUnitMiner, lexicon_signature
from repro.search.engine import SearchEngine
from repro.search.prisma import PrismaTool
from repro.search.snippets import SnippetService
from repro.search.suggestions import SuggestionService

SNAPSHOT_PATH = os.path.join(_HERE, "BENCH_offline.json")

DOC_COUNT = int(os.environ.get("REPRO_BENCH_OFFLINE_DOCS", "1600"))
CONCEPT_COUNT = int(os.environ.get("REPRO_BENCH_OFFLINE_CONCEPTS", "600"))
SMOKE_DOC_COUNT = 600
SMOKE_CONCEPT_COUNT = 280
VOCABULARY_SIZE = 900
DOC_TOKENS = (60, 100)
MINER_SAMPLE = 24  # concepts cross-checked per miner/resource
BUILD_REPEATS = 2  # best-of-N wall clock per mode (absorbs scheduler noise)
MIN_SPEEDUP = 3.0  # acceptance: fast build >= 3x the seed build
# The mode-independent stages (units, interestingness, quantize, pack)
# are a fixed floor on the fast build's total, so the end-to-end ratio
# shrinks with corpus size.  The smoke run exists to exercise the
# equivalence flags quickly in CI; it asserts a proportionally lower bar.
SMOKE_MIN_SPEEDUP = 2.25


def synthetic_vocabulary(rng, size=VOCABULARY_SIZE):
    """Distinct pure-alphabetic words (numbers don't survive tokenize)."""
    words = set()
    while len(words) < size:
        length = rng.randint(3, 9)
        words.add("".join(rng.choice(string.ascii_lowercase) for __ in range(length)))
    return sorted(words)


def synthetic_world(doc_count, concept_count, seed=17):
    """(documents, query log, concept phrases) with injected structure."""
    rng = random.Random(seed)
    vocabulary = synthetic_vocabulary(rng)
    concepts = []
    seen = set()
    while len(concepts) < concept_count:
        size = rng.choice((1, 2, 2, 2, 3))
        phrase = " ".join(rng.choice(vocabulary) for __ in range(size))
        if phrase not in seen:
            seen.add(phrase)
            concepts.append(phrase)
    documents = []
    low, high = DOC_TOKENS
    for doc_id in range(doc_count):
        tokens = [
            vocabulary[min(int(rng.paretovariate(1.1)) - 1, len(vocabulary) - 1)]
            for __ in range(rng.randint(low, high))
        ]
        # splice concept phrases in so phrase queries return real hit lists
        for phrase in rng.sample(concepts, rng.randint(2, 6)):
            position = rng.randint(0, len(tokens))
            tokens[position:position] = phrase.split()
        documents.append((doc_id + 1, " ".join(tokens)))
    queries = {}
    for phrase in concepts:
        queries[phrase] = rng.randint(2, 60)
        queries[f"{phrase} {rng.choice(vocabulary)}"] = rng.randint(1, 12)
        if rng.random() < 0.5:
            queries[f"{rng.choice(vocabulary)} {phrase}"] = rng.randint(1, 8)
    for __ in range(concept_count):
        left, right = rng.choice(vocabulary), rng.choice(vocabulary)
        queries.setdefault(f"{left} {right}", rng.randint(1, 20))
    return documents, QueryLog.from_strings(queries), concepts


def _stage_map(report):
    return {stage.name: round(stage.seconds, 6) for stage in report.stages}


def _check_frozen_vs_dict(documents, concepts, rng):
    """Frozen CSR engine answers == staged dict engine answers."""
    staged = SearchEngine()
    frozen = SearchEngine()
    for doc_id, text in documents:
        staged.add_document(doc_id, text)
        frozen.add_document(doc_id, text)
    frozen.freeze()
    probes = rng.sample(concepts, min(40, len(concepts)))
    probes += [f"{a.split()[0]} {b.split()[0]}" for a, b in zip(probes, probes[1:])]
    for query in probes:
        if staged.search(query, limit=30) != frozen.search(query, limit=30):
            return False
        if staged.phrase_search(query, limit=30) != frozen.phrase_search(query, limit=30):
            return False
        if staged.result_count(query) != frozen.result_count(query):
            return False
        if staged.phrase_result_count(query) != frozen.phrase_result_count(query):
            return False
    return True


def run_offline_benchmark(doc_count=DOC_COUNT, concept_count=CONCEPT_COUNT):
    documents, query_log, concepts = synthetic_world(doc_count, concept_count)
    rng = random.Random(23)

    def best_build(tmp, tag, config):
        """Best-of-N wall clock; pack bytes are identical across runs."""
        reports = [
            OfflineBuilder(config).build(
                documents, query_log, concepts, os.path.join(tmp, f"{tag}{attempt}")
            )
            for attempt in range(BUILD_REPEATS)
        ]
        return min(reports, key=lambda report: report.total_seconds)

    with tempfile.TemporaryDirectory() as tmp:
        seed_report = best_build(tmp, "seed", BuildConfig(fast=False))
        fast_report = best_build(tmp, "fast", BuildConfig(fast=True, workers=1))
        fanout_report = OfflineBuilder(BuildConfig(fast=True, workers=2)).build(
            documents, query_log, concepts, os.path.join(tmp, "fanout")
        )

    # -- layer-by-layer equivalence flags -------------------------------
    pack_bytes_identical = seed_report.pack_sha256 == fast_report.pack_sha256
    parallel_pack_identical = fast_report.pack_sha256 == fanout_report.pack_sha256

    frozen_index_matches_dict = _check_frozen_vs_dict(documents, concepts, rng)

    seed_lexicon = UnitMiner().mine(query_log)
    fast_lexicon = VectorizedUnitMiner().mine(query_log)
    vectorized_units_match_seed = (
        lexicon_signature(seed_lexicon) == lexicon_signature(fast_lexicon)
        and seed_lexicon.max_length == fast_lexicon.max_length
    )

    # seed-style miner vs vectorized miner, all three resources
    seed_engine = SearchEngine()
    for doc_id, text in documents:
        seed_engine.add_document(doc_id, text)
    seed_df = build_stemmed_df(text for __, text in documents)
    suggestions = SuggestionService(query_log)
    seed_miner = RelevantKeywordMiner(
        SnippetService(seed_engine), PrismaTool(seed_engine), suggestions, seed_df
    )
    corpus = TokenizedCorpus(documents)
    fast_miner = VectorizedKeywordMiner(
        corpus, corpus.engine(), suggestions, corpus.stemmed_df()
    )
    sample = rng.sample(concepts, min(MINER_SAMPLE, len(concepts)))
    vectorized_miner_matches_seed = all(
        seed_miner.mine(phrase, resource) == fast_miner.mine(phrase, resource)
        for resource in RESOURCES
        for phrase in sample
    )

    serial = {
        resource: {phrase: seed_miner.mine(phrase, resource) for phrase in sample}
        for resource in RESOURCES
    }
    parallel_mining_matches_serial = (
        seed_miner.mine_many(sample, RESOURCES, workers=2, chunk_size=5) == serial
    )

    speedup = seed_report.total_seconds / fast_report.total_seconds
    snapshot = {
        "config": {
            "documents": doc_count,
            "concepts": concept_count,
            "vocabulary": VOCABULARY_SIZE,
            "queries": len(query_log),
            "miner_sample": len(sample),
        },
        "seed_build": {
            "total_seconds": round(seed_report.total_seconds, 4),
            "docs_per_second": round(seed_report.docs_per_second, 1),
            "concepts_per_second": round(seed_report.concepts_per_second, 1),
            "stage_seconds": _stage_map(seed_report),
        },
        "fast_build": {
            "total_seconds": round(fast_report.total_seconds, 4),
            "docs_per_second": round(fast_report.docs_per_second, 1),
            "concepts_per_second": round(fast_report.concepts_per_second, 1),
            "stage_seconds": _stage_map(fast_report),
        },
        "fanout_build": {
            "workers": fanout_report.workers,
            "total_seconds": round(fanout_report.total_seconds, 4),
        },
        "speedup": {
            "end_to_end": round(speedup, 2),
            "relevance_stage": round(
                seed_report.stage("relevance").seconds
                / max(fast_report.stage("relevance").seconds, 1e-9),
                2,
            ),
            "corpus_and_index": round(
                (
                    seed_report.stage("corpus").seconds
                    + seed_report.stage("index").seconds
                )
                / max(
                    fast_report.stage("corpus").seconds
                    + fast_report.stage("index").seconds,
                    1e-9,
                ),
                2,
            ),
        },
        "equivalence": {
            "pack_bytes_identical": bool(pack_bytes_identical),
            "parallel_pack_identical": bool(parallel_pack_identical),
            "frozen_index_matches_dict": bool(frozen_index_matches_dict),
            "parallel_mining_matches_serial": bool(parallel_mining_matches_serial),
            "vectorized_units_match_seed": bool(vectorized_units_match_seed),
            "vectorized_miner_matches_seed": bool(vectorized_miner_matches_seed),
        },
    }
    return snapshot


def check_snapshot(snapshot, floor=MIN_SPEEDUP):
    """The PR's acceptance criteria, enforced on every run."""
    flags = snapshot["equivalence"]
    assert all(flags.values()), flags
    assert snapshot["speedup"]["end_to_end"] >= floor, snapshot["speedup"]


def report_lines(snapshot):
    config = snapshot["config"]
    seed_build = snapshot["seed_build"]
    fast_build = snapshot["fast_build"]
    return [
        f"corpus: {config['documents']} docs, {config['concepts']} concepts, "
        f"{config['queries']} distinct queries",
        f"seed build: {seed_build['total_seconds']:7.3f}s "
        f"({seed_build['docs_per_second']:.0f} docs/s, "
        f"{seed_build['concepts_per_second']:.0f} concepts/s)",
        f"fast build: {fast_build['total_seconds']:7.3f}s "
        f"({fast_build['docs_per_second']:.0f} docs/s, "
        f"{fast_build['concepts_per_second']:.0f} concepts/s)",
        f"speedup: end-to-end {snapshot['speedup']['end_to_end']:.2f}x, "
        f"relevance stage {snapshot['speedup']['relevance_stage']:.2f}x, "
        f"corpus+index {snapshot['speedup']['corpus_and_index']:.2f}x",
        f"equivalence: {snapshot['equivalence']}",
    ]


def test_offline_build():
    """Pytest entry: run the benchmark and enforce the acceptance bar."""
    snapshot = run_offline_benchmark()
    check_snapshot(snapshot)
    with open(SNAPSHOT_PATH, "w") as handle:
        json.dump(attach_metrics(snapshot), handle, indent=1)
        handle.write("\n")
    record_section("Offline build — vectorized pipeline vs seed path", report_lines(snapshot))


def main(argv):
    if "--smoke" in argv:
        snapshot = run_offline_benchmark(SMOKE_DOC_COUNT, SMOKE_CONCEPT_COUNT)
        check_snapshot(snapshot, floor=SMOKE_MIN_SPEEDUP)
    else:
        snapshot = run_offline_benchmark()
        check_snapshot(snapshot)
    if "--smoke" not in argv:  # the snapshot tracks the full-size run only
        with open(SNAPSHOT_PATH, "w") as handle:
            json.dump(attach_metrics(snapshot), handle, indent=1)
            handle.write("\n")
    print("\n".join(report_lines(snapshot)))
    print("offline benchmark OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
