"""Table III: weighted error rates with interestingness features.

Paper:
    Random                       50.01
    Concept Vector Score         30.22
    All Features                 23.69
    - Query Logs                 24.50
    - Taxonomy Based             24.47
    - Search Results             23.80
    - Other                      23.78
    - Text Based                 23.73

Shape: random ~50%; baseline clearly better than random; the learned
model clearly better than the baseline; removing the query-log group
hurts most, taxonomy second; the other ablations are near-noise.
"""

from _report import record_section
from repro.eval import table3_interestingness

from repro.paperdata import TABLE3_WER as PAPER_ROWS


def test_table3_interestingness(benchmark, bench_experiment):
    results = benchmark.pedantic(
        lambda: table3_interestingness(bench_experiment), rounds=1, iterations=1
    )
    by_name = {r.name: r for r in results}
    lines = [
        f"{r.name:<24s} measured WER={r.weighted_error_rate * 100:6.2f}%   "
        f"paper={PAPER_ROWS.get(r.name, float('nan')):6.2f}%"
        for r in results
    ]
    record_section("Table III — interestingness features (weighted error rate)", lines)

    random_wer = by_name["random"].weighted_error_rate
    baseline = by_name["concept vector score"].weighted_error_rate
    learned = by_name["all features"].weighted_error_rate
    assert 0.45 < random_wer < 0.55
    assert baseline < random_wer - 0.05
    assert learned < baseline - 0.05
    # the query-log ablation must hurt the most
    ablations = {r.name: r.weighted_error_rate for r in results if r.name.startswith("-")}
    assert ablations["- query_logs"] == max(ablations.values())
    assert ablations["- query_logs"] > learned
