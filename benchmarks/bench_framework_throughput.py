"""Section VI: production framework footprint and throughput.

Paper, on a 2006-era dual-core Opteron 275: 1445 documents of 2.5 KB
average with 6.45 detections each; stemmer 7.9 MB/s, ranker 2.4 MB/s.
Memory: 18 MB interestingness store and ~400 MB relevance store per
1 million concepts, with Golomb coding proposed to shrink the latter.

We measure the same quantities at our concept-universe scale and report
the per-1M-concepts extrapolation next to the paper's figures.  Python
throughput is not expected to match a C++ production system; the shape
to reproduce is stemmer-faster-than-ranker and the storage arithmetic.
"""

from _report import record_section
from repro.ranking import RankSVM
from repro.runtime import (
    GlobalTidTable,
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
)


def test_framework_throughput(benchmark, bench_env, bench_experiment):
    env = bench_env
    inventory = [c.phrase for c in env.world.concepts]

    interestingness = QuantizedInterestingnessStore.build(env.extractor, inventory)
    relevance_model = env.relevance_model(inventory)
    tid_table = GlobalTidTable()
    relevance = PackedRelevanceStore.build(relevance_model, tid_table)

    features = bench_experiment.feature_matrix((), "snippets")
    svm = RankSVM()
    svm.fit(
        features,
        bench_experiment._labels_arr,
        bench_experiment._groups_arr,
    )
    service = RankerService(env.pipeline, interestingness, relevance, svm)

    documents = [story.text for story in env.stories(300, seed=4242)]

    def run():
        service.reset_stats()
        service.process_batch(documents, top=5)
        return service.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    concepts = len(interestingness)
    per_million_interest = interestingness.memory_bytes() / concepts * 1e6 / 1e6
    per_million_relevance = relevance.memory_bytes() / concepts * 1e6 / 1e6
    per_million_compressed = relevance.compressed_bytes() / concepts * 1e6 / 1e6
    lines = [
        f"documents: {stats.documents}, "
        f"{stats.bytes_processed / stats.documents / 1e3:.2f} KB avg "
        f"(paper: 1445 docs, 2.5 KB avg)",
        f"detections/doc: {stats.detections_per_document:.2f} (paper: 6.45)",
        f"stemmer throughput: {stats.stemmer_mb_per_second:6.2f} MB/s "
        f"(paper: 7.9 MB/s, C++ on 2006 hardware)",
        f"ranker  throughput: {stats.ranker_mb_per_second:6.2f} MB/s "
        f"(paper: 2.4 MB/s)",
        f"interestingness store: {per_million_interest:6.1f} MB per 1M concepts "
        f"(paper: 18 MB)",
        f"relevance store:       {per_million_relevance:6.1f} MB per 1M concepts "
        f"(paper: ~400 MB)",
        f"relevance store (Golomb): {per_million_compressed:6.1f} MB per 1M "
        f"(the paper's proposed compression)",
        f"global TID table: {len(tid_table)} terms for "
        f"{relevance.memory_bytes() // 4} pairs (TIDs shared across concepts)",
    ]
    record_section("Section VI — framework footprint and throughput", lines)

    assert stats.stemmer_mb_per_second > stats.ranker_mb_per_second
    assert per_million_interest == 18.0  # 9 fields x 2 bytes
    assert 200.0 <= per_million_relevance <= 400.0  # <=100 pairs x 4 bytes
    assert per_million_compressed < per_million_relevance
    assert len(tid_table) <= (1 << 22)
