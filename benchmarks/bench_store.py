"""Serving-store microbenchmark: columnar arena vs. seed per-element loop.

The seed relevance store kept a dict of per-concept packed arrays and
scored by unpacking every (TID, score) pair in Python, testing set
membership, and dequantizing one element at a time.  The columnar
refactor stores every concept in one contiguous arena, scores with
vectorized numpy (shift out the TID column, sorted-intersect against
the document context, dequantize the matches), and batches a whole
document's candidates through one ``score_many`` call.

This benchmark builds a synthetic relevance model at the paper's shape
(m = 100 keywords per concept), then records:

* relevance-lookup throughput (lookups/sec) for the seed loop, the
  columnar store, and the Golomb-compressed store (decode-cache warm),
* cold-start seconds: v1 eager pack load vs. v2 ``mmap`` zero-copy load,
* resident bytes for the packed and compressed stores,
* equivalence flags — the vectorized paths must match the seed loop
  *exactly* (same floats), not approximately,

and writes a machine-readable snapshot to ``BENCH_store.json``.

Run standalone (``python benchmarks/bench_store.py [--smoke]``) or
under pytest (``PYTHONPATH=src pytest benchmarks/bench_store.py``).
"""

import json
import os
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
for path in (_HERE, os.path.join(os.path.dirname(_HERE), "src")):
    if path not in sys.path:  # allow `python benchmarks/bench_store.py`
        sys.path.insert(0, path)

import numpy as np

from _report import attach_metrics, record_section
from repro.features import RelevanceModel
from repro.features.quantize import dequantize
from repro.runtime import (
    CompressedRelevanceStore,
    PackedRelevanceStore,
    load_relevance_store,
    save_relevance_store,
    unpack_pair,
)
from repro.runtime.tid import SCORE_BITS

SNAPSHOT_PATH = os.path.join(_HERE, "BENCH_store.json")

CONCEPT_COUNT = int(os.environ.get("REPRO_BENCH_STORE_CONCEPTS", "1200"))
SMOKE_CONCEPT_COUNT = 220
VOCABULARY = 8000
TERMS_PER_CONCEPT = 100  # the paper's m = 100 relevant keywords
CONTEXT_COUNT = 24
CONTEXT_SIZE = 150
MIN_SPEEDUP = 5.0  # acceptance: columnar >= 5x the seed loop


def synthetic_model(concepts, seed=41):
    """A relevance model at the paper's per-concept keyword budget."""
    rng = np.random.default_rng(seed)
    entries = {}
    for index in range(concepts):
        term_ids = rng.choice(VOCABULARY, size=TERMS_PER_CONCEPT, replace=False)
        entries[f"concept {index}"] = tuple(
            (f"term{tid}", float(rng.uniform(0.01, 90.0))) for tid in term_ids
        )
    return RelevanceModel(entries)


def document_contexts(store, seed=43):
    """Synthetic document contexts as TID sets (the seed's input shape)."""
    rng = np.random.default_rng(seed)
    universe = np.asarray(sorted(tid for __, tid in store.tid_table.items()))
    return [
        set(rng.choice(universe, size=min(CONTEXT_SIZE, universe.size),
                       replace=False).tolist())
        for __ in range(CONTEXT_COUNT)
    ]


def seed_score_loop(store, phrase, context):
    """The seed implementation: unpack every pair in Python, sum matches."""
    total = 0.0
    for packed in store.packed(phrase).tolist():
        tid, code = unpack_pair(packed)
        if tid in context:
            total += dequantize(code, store.score_max, SCORE_BITS)
    return total


def seed_style_load(path):
    """The seed loader shape: eager read, per-phrase array copies.

    Reproduces the seed's ``load_relevance_store`` — full-file read,
    dense TID re-assign loop, and one ``astype`` copy per concept into a
    dict of arrays — as the O(corpus) cold-start baseline.
    """
    from repro.runtime import GlobalTidTable, read_pack
    from repro.runtime.datapack import _json_load

    sections = read_pack(path)
    meta = _json_load(sections["meta"])
    tid_table = GlobalTidTable()
    for term in meta["terms"]:
        tid_table.assign(term)
    pairs = np.frombuffer(sections["pairs"], dtype="<u4")
    per_concept = {}
    for entry in meta["index"]:
        start = entry["offset"]
        per_concept[entry["phrase"]] = pairs[
            start : start + entry["count"]
        ].astype(np.uint32)
    return tid_table, meta["score_max"], per_concept


def run_store_benchmark(concept_count=CONCEPT_COUNT):
    model = synthetic_model(concept_count)
    packed = PackedRelevanceStore.build(model)
    packed.arena()  # finalize outside the timed regions
    # cache sized to the concept set: measures the decode-cache-warm tier
    compressed = CompressedRelevanceStore.from_packed(
        packed, cache_size=concept_count
    )
    phrases = packed.phrases()
    contexts = document_contexts(packed)
    lookups = len(phrases) * len(contexts)

    # -- seed per-element loop ---------------------------------------------
    started = time.perf_counter()
    seed_scores = [
        [seed_score_loop(packed, phrase, context) for phrase in phrases]
        for context in contexts
    ]
    seed_seconds = time.perf_counter() - started

    # -- columnar vectorized batch -----------------------------------------
    started = time.perf_counter()
    columnar_scores = [
        packed.score_many(phrases, context).tolist() for context in contexts
    ]
    columnar_seconds = time.perf_counter() - started

    # -- per-phrase vectorized (no batching) --------------------------------
    single_scores = [
        [packed.score(phrase, context) for phrase in phrases]
        for context in contexts
    ]

    # -- compressed store, decode cache warm over repeated contexts ---------
    compressed.score_many(phrases, contexts[0])  # prime
    started = time.perf_counter()
    compressed_scores = [
        compressed.score_many(phrases, context).tolist() for context in contexts
    ]
    compressed_seconds = time.perf_counter() - started

    # -- cold start: seed-style eager load vs v2 mmap load -------------------
    with tempfile.TemporaryDirectory() as tmp:
        v1_path = os.path.join(tmp, "relevance_v1.rpak")
        v2_path = os.path.join(tmp, "relevance_v2.rpak")
        save_relevance_store(packed, v1_path, version=1)
        save_relevance_store(packed, v2_path)
        started = time.perf_counter()
        seed_style_load(v1_path)
        seed_load_seconds = time.perf_counter() - started
        started = time.perf_counter()
        eager = load_relevance_store(v1_path, use_mmap=False)
        v1_seconds = time.perf_counter() - started
        started = time.perf_counter()
        mapped = load_relevance_store(v2_path, use_mmap=True)
        v2_seconds = time.perf_counter() - started
        probe_context = contexts[0]
        mmap_matches = all(
            mapped.score(phrase, probe_context) == packed.score(phrase, probe_context)
            and eager.score(phrase, probe_context)
            == packed.score(phrase, probe_context)
            for phrase in phrases[:: max(1, len(phrases) // 50)]
        )
        pack_bytes = os.path.getsize(v2_path)

    snapshot = {
        "config": {
            "concepts": len(phrases),
            "terms_per_concept": TERMS_PER_CONCEPT,
            "vocabulary": VOCABULARY,
            "contexts": len(contexts),
            "context_size": CONTEXT_SIZE,
            "lookups": lookups,
        },
        "lookup": {
            "seed_ops_per_second": round(lookups / seed_seconds, 1),
            "columnar_ops_per_second": round(lookups / columnar_seconds, 1),
            "compressed_ops_per_second": round(lookups / compressed_seconds, 1),
            "speedup_columnar_vs_seed": round(seed_seconds / columnar_seconds, 2),
        },
        "cold_start": {
            "seed_style_seconds": round(seed_load_seconds, 5),
            "v1_eager_seconds": round(v1_seconds, 5),
            "v2_mmap_seconds": round(v2_seconds, 5),
            "pack_bytes": pack_bytes,
        },
        "resident": {
            "packed_bytes": packed.memory_bytes(),
            "compressed_bytes": compressed.memory_bytes(),
            "compression_ratio": round(
                packed.memory_bytes() / max(1, compressed.memory_bytes()), 3
            ),
        },
        "decode_cache": compressed.cache_info(),
        "equivalence": {
            "columnar_matches_seed": columnar_scores == seed_scores,
            "score_matches_score_many": single_scores == columnar_scores,
            "compressed_matches_seed": compressed_scores == seed_scores,
            "mmap_load_matches_memory": bool(mmap_matches),
        },
    }
    return snapshot


def check_snapshot(snapshot):
    """The PR's acceptance criteria, enforced on every run."""
    flags = snapshot["equivalence"]
    assert all(flags.values()), flags
    speedup = snapshot["lookup"]["speedup_columnar_vs_seed"]
    assert speedup >= MIN_SPEEDUP, snapshot["lookup"]
    assert snapshot["resident"]["compressed_bytes"] < snapshot["resident"][
        "packed_bytes"
    ], snapshot["resident"]


def report_lines(snapshot):
    lookup = snapshot["lookup"]
    cold = snapshot["cold_start"]
    resident = snapshot["resident"]
    return [
        f"concepts: {snapshot['config']['concepts']} x "
        f"{snapshot['config']['terms_per_concept']} keywords, "
        f"{snapshot['config']['lookups']} lookups",
        f"lookup throughput: seed loop {lookup['seed_ops_per_second']:10.0f} ops/s"
        f" -> columnar {lookup['columnar_ops_per_second']:10.0f} ops/s "
        f"({lookup['speedup_columnar_vs_seed']:.1f}x)",
        f"compressed store (cache warm): "
        f"{lookup['compressed_ops_per_second']:10.0f} ops/s",
        f"cold start: seed-style {cold['seed_style_seconds'] * 1e3:8.2f} ms, "
        f"v1 eager {cold['v1_eager_seconds'] * 1e3:8.2f} ms -> "
        f"v2 mmap {cold['v2_mmap_seconds'] * 1e3:8.2f} ms "
        f"({cold['pack_bytes'] / 1e6:.2f} MB pack)",
        f"resident: packed {resident['packed_bytes'] / 1e6:.2f} MB, "
        f"compressed {resident['compressed_bytes'] / 1e6:.2f} MB "
        f"({resident['compression_ratio']:.2f}x smaller)",
        f"equivalence: {snapshot['equivalence']}",
    ]


def test_store_columnar():
    """Pytest entry: run the benchmark and enforce the acceptance bar."""
    snapshot = run_store_benchmark()
    check_snapshot(snapshot)
    with open(SNAPSHOT_PATH, "w") as handle:
        json.dump(attach_metrics(snapshot), handle, indent=1)
        handle.write("\n")
    record_section("Serving store — columnar arena vs seed loop", report_lines(snapshot))


def main(argv):
    count = SMOKE_CONCEPT_COUNT if "--smoke" in argv else CONCEPT_COUNT
    snapshot = run_store_benchmark(count)
    check_snapshot(snapshot)
    if "--smoke" not in argv:  # the snapshot tracks the full-size run only
        with open(SNAPSHOT_PATH, "w") as handle:
            json.dump(attach_metrics(snapshot), handle, indent=1)
            handle.write("\n")
    print("\n".join(report_lines(snapshot)))
    print("store benchmark OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
