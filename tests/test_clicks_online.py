"""Tests for the online CTR feedback extension (paper Section VIII)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clicks import OnlineCtrTracker, OnlineScoreAdjuster


class TestOnlineCtrTracker:
    def test_empty_tracker(self):
        tracker = OnlineCtrTracker()
        assert tracker.global_ctr == 0.0
        assert tracker.views("anything") == 0.0
        assert tracker.ctr("anything") == 0.0

    def test_observe_accumulates(self):
        tracker = OnlineCtrTracker()
        tracker.observe("cuba", 100, 5)
        tracker.observe("cuba", 100, 5)
        assert tracker.views("cuba") == pytest.approx(200, rel=0.01)

    def test_global_ctr(self):
        tracker = OnlineCtrTracker()
        tracker.observe("a", 100, 10)
        tracker.observe("b", 100, 0)
        assert tracker.global_ctr == pytest.approx(0.05, rel=0.01)

    def test_invalid_observation(self):
        tracker = OnlineCtrTracker()
        with pytest.raises(ValueError):
            tracker.observe("x", 10, 11)
        with pytest.raises(ValueError):
            tracker.observe("x", -1, 0)

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            OnlineCtrTracker(half_life_views=0)

    def test_shrinkage_toward_global(self):
        tracker = OnlineCtrTracker()
        tracker.observe("hot", 50, 25)  # raw CTR 0.5
        tracker.observe("bulk", 10000, 100)  # global ~0.0125
        shrunk = tracker.ctr("hot", prior_views=200)
        assert tracker.global_ctr < shrunk < 0.5

    def test_low_traffic_stays_near_prior(self):
        tracker = OnlineCtrTracker()
        tracker.observe("bulk", 10000, 200)
        tracker.observe("lucky", 2, 2)  # two views, two clicks
        assert tracker.ctr("lucky", prior_views=200) < 0.05

    def test_decay_forgets_old_evidence(self):
        tracker = OnlineCtrTracker(half_life_views=1000)
        tracker.observe("old", 500, 250)  # hot at first
        for __ in range(20):
            tracker.observe("filler", 1000, 10)  # heavy cold traffic
        # old evidence decayed by 2^-20
        assert tracker.views("old") < 1.0

    def test_observe_report(self, env_world, env_pipeline):
        from repro.clicks import ClickTracker, UserClickModel

        production = ClickTracker(env_world, env_pipeline, UserClickModel(seed=9))
        record = production.track_story(env_world.story_generator(13).generate(0))
        tracker = OnlineCtrTracker()
        tracker.observe_report(record)
        if record.entities:
            assert tracker.views(record.entities[0].phrase) > 0

    @given(
        st.lists(
            st.tuples(st.integers(1, 500), st.integers(0, 500)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30)
    def test_ctr_always_in_unit_interval(self, observations):
        tracker = OnlineCtrTracker()
        for views, clicks in observations:
            tracker.observe("x", views, min(clicks, views))
        assert 0.0 <= tracker.ctr("x") <= 1.0
        assert 0.0 <= tracker.global_ctr <= 1.0


class TestOnlineScoreAdjuster:
    def build(self):
        tracker = OnlineCtrTracker()
        tracker.observe("average", 10000, 200)  # global CTR 0.02
        tracker.observe("breaking", 2000, 200)  # live CTR 0.1 (5x)
        tracker.observe("dud", 2000, 2)  # live CTR 0.001
        return tracker, OnlineScoreAdjuster(tracker, strength=0.5)

    def test_hot_concept_boosted(self):
        __, adjuster = self.build()
        assert adjuster.adjustment("breaking") > 0.1

    def test_cold_concept_punished(self):
        __, adjuster = self.build()
        assert adjuster.adjustment("dud") < -0.1

    def test_average_concept_between_extremes(self):
        __, adjuster = self.build()
        middle = adjuster.adjustment("average")
        assert adjuster.adjustment("dud") < middle < adjuster.adjustment("breaking")
        assert abs(middle) < 0.25

    def test_unseen_concept_near_prior(self):
        __, adjuster = self.build()
        # unseen concepts shrink to the global CTR -> tiny adjustment
        assert abs(adjuster.adjustment("never seen")) < 0.1

    def test_ratio_clamped(self):
        tracker = OnlineCtrTracker()
        tracker.observe("bulk", 100000, 100)
        tracker.observe("viral", 10000, 9000)
        adjuster = OnlineScoreAdjuster(tracker, strength=1.0, max_ratio=8.0)
        assert adjuster.adjustment("viral") <= math.log(8.0) + 1e-9

    def test_empty_tracker_no_adjustment(self):
        adjuster = OnlineScoreAdjuster(OnlineCtrTracker())
        assert adjuster.adjustment("x") == 0.0

    def test_adjust_scores_alignment(self):
        __, adjuster = self.build()
        with pytest.raises(ValueError):
            adjuster.adjust_scores(["a"], [1.0, 2.0])

    def test_rerank_promotes_breaking_news(self):
        __, adjuster = self.build()
        # offline model slightly prefers 'dud'; live data flips it
        ranked = adjuster.rerank(["dud", "breaking"], [1.0, 0.9])
        assert ranked[0][0] == "breaking"

    def test_rerank_respects_large_offline_gap(self):
        __, adjuster = self.build()
        ranked = adjuster.rerank(["dud", "breaking"], [10.0, 0.0])
        assert ranked[0][0] == "dud"


class TestOnlineEndToEnd:
    def test_world_event_spike_reranks(self, env_world, env_pipeline):
        """A concept whose CTR spikes climbs the adjusted ranking."""
        from repro.clicks import ClickTracker, UserClickModel

        production = ClickTracker(env_world, env_pipeline, UserClickModel(seed=21))
        stories = env_world.story_generator(seed=33).generate_many(15)
        records = production.track(stories)
        tracker = OnlineCtrTracker()
        for record in records:
            tracker.observe_report(record)

        phrases = sorted(
            {e.phrase for r in records for e in r.entities}
        )[:6]
        if len(phrases) < 3:
            return
        # fabricate a breaking-news spike on one mid-ranked phrase
        spiking = phrases[2]
        for __ in range(10):
            tracker.observe(spiking, 500, 100)

        adjuster = OnlineScoreAdjuster(tracker, strength=1.0)
        flat_scores = [0.0] * len(phrases)
        ranked = adjuster.rerank(phrases, flat_scores)
        assert ranked[0][0] == spiking

    @staticmethod
    def _report(story_id, views, *entities):
        """A weekly-report row from (phrase, clicks) pairs."""
        from repro.clicks.tracking import EntityObservation, StoryClickRecord

        return StoryClickRecord(
            story_id=story_id,
            text=" ".join(phrase for phrase, __ in entities),
            views=views,
            entities=[
                EntityObservation(
                    phrase=phrase, concept_id=None, entity_type=None,
                    position=index, baseline_score=0.0,
                    views=views, clicks=clicks,
                )
                for index, (phrase, clicks) in enumerate(entities)
            ],
        )

    def test_report_stream_to_rerank(self):
        """Weekly reports -> tracker -> adjuster flips a flat ranking."""
        tracker = OnlineCtrTracker()
        for story_id in range(5):
            tracker.observe_report(self._report(
                story_id, 1000,
                ("hot topic", 100),   # CTR 0.10
                ("average", 20),      # CTR 0.02
                ("cold topic", 1),    # CTR 0.001
            ))
        adjuster = OnlineScoreAdjuster(tracker, strength=0.5)
        ranked = adjuster.rerank(
            ["cold topic", "average", "hot topic"], [0.0, 0.0, 0.0]
        )
        assert [phrase for phrase, __ in ranked] == [
            "hot topic", "average", "cold topic"
        ]
        # adjusted scores keep the additive-margin scale ordering
        assert ranked[0][1] > ranked[1][1] > ranked[2][1]

    def test_decay_across_reports_follows_regime_change(self):
        """Old hot evidence decays: the rerank tracks the NEW regime."""
        tracker = OnlineCtrTracker(half_life_views=2000)
        # early regime: 'fading' is the breaking story
        for story_id in range(3):
            tracker.observe_report(self._report(
                story_id, 1000, ("fading", 150), ("steady", 20),
            ))
        adjuster = OnlineScoreAdjuster(tracker, strength=1.0)
        early = adjuster.rerank(["steady", "fading"], [0.0, 0.0])
        assert early[0][0] == "fading"

        # late regime: heavy traffic where 'fading' stops clicking
        for story_id in range(3, 23):
            tracker.observe_report(self._report(
                story_id, 1000, ("fading", 1), ("steady", 20),
            ))
        late = adjuster.rerank(["steady", "fading"], [0.0, 0.0])
        assert late[0][0] == "steady"
        # the early spike is worth less than half a report of views now
        assert tracker.views("fading") < 21000

    def test_prior_views_smoothing_resists_tiny_samples(self):
        """Two lucky clicks cannot outrank an established hot concept."""
        tracker = OnlineCtrTracker()
        for story_id in range(5):
            tracker.observe_report(self._report(
                story_id, 2000, ("established", 200), ("bulk", 40),
            ))
        # one tiny report with a perfect CTR
        tracker.observe_report(self._report(99, 2, ("lucky", 2)))

        # raw CTR says lucky (1.0) beats established (0.1)...
        raw_lucky = 1.0
        assert raw_lucky > 0.1
        # ...but the shrunk estimate stays near the global prior
        assert tracker.ctr("lucky", prior_views=200) < tracker.ctr(
            "established", prior_views=200
        )
        adjuster = OnlineScoreAdjuster(tracker, strength=0.5)
        ranked = adjuster.rerank(["lucky", "established"], [0.0, 0.0])
        assert ranked[0][0] == "established"
        # smoothing dampens, not erases: lucky still beats a dead concept
        tracker.observe_report(self._report(100, 2000, ("dead", 0)))
        assert adjuster.adjustment("lucky") > adjuster.adjustment("dead")
