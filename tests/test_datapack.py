"""Tests for binary data-pack persistence."""

import numpy as np
import pytest

from repro.features import RelevanceModel
from repro.ranking import KERNEL_RBF, RankSVM
from repro.runtime import (
    GlobalTidTable,
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    load_interestingness_store,
    load_ranker,
    load_relevance_store,
    read_pack,
    save_interestingness_store,
    save_ranker,
    save_relevance_store,
    write_pack,
)


class TestPackContainer:
    def test_round_trip_sections(self, tmp_path):
        path = tmp_path / "x.rpak"
        sections = {"a": b"hello", "b": b"", "kind": b"test"}
        write_pack(path, sections)
        assert read_pack(path) == sections

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rpak"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="magic"):
            read_pack(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "t.rpak"
        write_pack(path, {"a": b"payload"})
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(ValueError, match="truncated"):
            read_pack(path)

    def test_unicode_section_names(self, tmp_path):
        path = tmp_path / "u.rpak"
        write_pack(path, {"naïve-ß": b"x"})
        assert read_pack(path) == {"naïve-ß": b"x"}


class TestInterestingnessStorePersistence:
    def test_round_trip(self, tmp_path, env_world, env_extractor):
        phrases = [c.phrase for c in env_world.concepts[:15]]
        store = QuantizedInterestingnessStore.build(env_extractor, phrases)
        path = tmp_path / "interest.rpak"
        save_interestingness_store(store, path)
        loaded = load_interestingness_store(path)
        assert sorted(loaded.phrases()) == sorted(store.phrases())
        for phrase in phrases:
            assert loaded.extract(phrase) == store.extract(phrase)
        assert loaded.memory_bytes() == store.memory_bytes()

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "wrong.rpak"
        write_pack(path, {"kind": b"other"})
        with pytest.raises(ValueError):
            load_interestingness_store(path)


class TestRelevanceStorePersistence:
    def make_store(self):
        model = RelevanceModel(
            {
                "global warming": (("climat", 50.0), ("carbon", 30.0)),
                "stock market": (("trade", 42.0), ("carbon", 7.0)),
            }
        )
        return PackedRelevanceStore.build(model, GlobalTidTable())

    def test_round_trip_scores(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "rel.rpak"
        save_relevance_store(store, path)
        loaded = load_relevance_store(path)
        for phrase in ("global warming", "stock market"):
            text = "climat carbon trade today"
            assert loaded.score_text(phrase, text) == pytest.approx(
                store.score_text(phrase, text)
            )
        assert loaded.memory_bytes() == store.memory_bytes()
        assert len(loaded.tid_table) == len(store.tid_table)

    def test_tid_sharing_preserved(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "rel.rpak"
        save_relevance_store(store, path)
        loaded = load_relevance_store(path)
        # 'carbon' is shared; total distinct terms is 3
        assert len(loaded.tid_table) == 3

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "wrong.rpak"
        write_pack(path, {"kind": b"interestingness"})
        with pytest.raises(ValueError):
            load_relevance_store(path)


class TestRankerPersistence:
    def fit_model(self, kernel="linear"):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, 4))
        y = X @ np.array([1.0, -0.5, 0.2, 0.0])
        g = np.repeat(np.arange(10), 6)
        model = RankSVM(kernel=kernel, epochs=50, n_components=64)
        model.fit(X, y, g)
        return model, X

    def test_linear_round_trip(self, tmp_path):
        model, X = self.fit_model()
        path = tmp_path / "model.rpak"
        save_ranker(model, path)
        loaded = load_ranker(path)
        assert np.allclose(loaded.decision_function(X), model.decision_function(X))

    def test_rbf_round_trip(self, tmp_path):
        model, X = self.fit_model(kernel=KERNEL_RBF)
        path = tmp_path / "model.rpak"
        save_ranker(model, path)
        loaded = load_ranker(path)
        assert np.allclose(loaded.decision_function(X), model.decision_function(X))

    def test_config_preserved(self, tmp_path):
        model, __ = self.fit_model()
        path = tmp_path / "model.rpak"
        save_ranker(model, path)
        loaded = load_ranker(path)
        assert loaded.c == model.c
        assert loaded.kernel == model.kernel
        assert loaded.epochs == model.epochs

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_ranker(RankSVM(), tmp_path / "x.rpak")
