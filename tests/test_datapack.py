"""Tests for binary data-pack persistence."""

import numpy as np
import pytest

from repro.features import RelevanceModel
from repro.ranking import KERNEL_RBF, RankSVM
from repro.runtime import (
    MAX_SCORE_CODE,
    MAX_TID,
    GlobalTidTable,
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    load_interestingness_store,
    load_ranker,
    load_relevance_store,
    open_pack,
    read_pack,
    save_interestingness_store,
    save_ranker,
    save_relevance_store,
    write_pack,
)


class TestPackContainer:
    def test_round_trip_sections(self, tmp_path):
        path = tmp_path / "x.rpak"
        sections = {"a": b"hello", "b": b"", "kind": b"test"}
        write_pack(path, sections)
        assert read_pack(path) == sections

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rpak"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="magic"):
            read_pack(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "t.rpak"
        write_pack(path, {"a": b"payload"})
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(ValueError, match="truncated"):
            read_pack(path)

    def test_unicode_section_names(self, tmp_path):
        path = tmp_path / "u.rpak"
        write_pack(path, {"naïve-ß": b"x"})
        assert read_pack(path) == {"naïve-ß": b"x"}


class TestInterestingnessStorePersistence:
    def test_round_trip(self, tmp_path, env_world, env_extractor):
        phrases = [c.phrase for c in env_world.concepts[:15]]
        store = QuantizedInterestingnessStore.build(env_extractor, phrases)
        path = tmp_path / "interest.rpak"
        save_interestingness_store(store, path)
        loaded = load_interestingness_store(path)
        assert sorted(loaded.phrases()) == sorted(store.phrases())
        for phrase in phrases:
            assert loaded.extract(phrase) == store.extract(phrase)
        assert loaded.memory_bytes() == store.memory_bytes()

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "wrong.rpak"
        write_pack(path, {"kind": b"other"})
        with pytest.raises(ValueError):
            load_interestingness_store(path)


class TestRelevanceStorePersistence:
    def make_store(self):
        model = RelevanceModel(
            {
                "global warming": (("climat", 50.0), ("carbon", 30.0)),
                "stock market": (("trade", 42.0), ("carbon", 7.0)),
            }
        )
        return PackedRelevanceStore.build(model, GlobalTidTable())

    def test_round_trip_scores(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "rel.rpak"
        save_relevance_store(store, path)
        loaded = load_relevance_store(path)
        for phrase in ("global warming", "stock market"):
            text = "climat carbon trade today"
            assert loaded.score_text(phrase, text) == pytest.approx(
                store.score_text(phrase, text)
            )
        assert loaded.memory_bytes() == store.memory_bytes()
        assert len(loaded.tid_table) == len(store.tid_table)

    def test_tid_sharing_preserved(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "rel.rpak"
        save_relevance_store(store, path)
        loaded = load_relevance_store(path)
        # 'carbon' is shared; total distinct terms is 3
        assert len(loaded.tid_table) == 3

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "wrong.rpak"
        write_pack(path, {"kind": b"interestingness"})
        with pytest.raises(ValueError):
            load_relevance_store(path)

    def test_empty_store_round_trip(self, tmp_path):
        store = PackedRelevanceStore(GlobalTidTable(), score_max=1.0)
        path = tmp_path / "empty.rpak"
        save_relevance_store(store, path)
        loaded = load_relevance_store(path)
        assert len(loaded) == 0
        assert loaded.memory_bytes() == 0
        assert loaded.score("anything", {1, 2}) == 0.0
        assert loaded.score_many(["a", "b"], {1}).tolist() == [0.0, 0.0]

    def test_max_tid_boundary_round_trip(self, tmp_path):
        # Plant a term at the very top of the 22-bit TID space; packing,
        # persistence, and the sparse v2 term list must all survive it.
        table = GlobalTidTable.from_items([("edge", MAX_TID - 1), ("top", MAX_TID)])
        store = PackedRelevanceStore(table, score_max=10.0)
        store.add("boundary concept", (("top", 10.0), ("edge", 0.0)))
        path = tmp_path / "edge.rpak"
        save_relevance_store(store, path)
        loaded = load_relevance_store(path)
        context = {MAX_TID - 1, MAX_TID}
        assert loaded.score("boundary concept", context) == store.score(
            "boundary concept", context
        )
        assert len(loaded.tid_table) == 2

    def test_quantize_extremes_round_trip(self, tmp_path):
        # score 0 -> code 0, score == score_max -> code 1023: both ends of
        # the 10-bit range must dequantize back to the same values.
        store = PackedRelevanceStore(GlobalTidTable(), score_max=64.0)
        store.add("extremes", (("zero", 0.0), ("full", 64.0)))
        packed = store.packed("extremes")
        codes = sorted((int(p) & MAX_SCORE_CODE) for p in packed)
        assert codes == [0, MAX_SCORE_CODE]
        path = tmp_path / "extremes.rpak"
        save_relevance_store(store, path)
        loaded = load_relevance_store(path)
        both = {0, 1}
        assert loaded.score("extremes", both) == store.score("extremes", both)
        assert loaded.score("extremes", both) == 64.0

    def test_v1_pack_still_loads(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "legacy.rpak"
        save_relevance_store(store, path, version=1)
        loaded = load_relevance_store(path)
        text = "climat carbon trade today"
        for phrase in ("global warming", "stock market"):
            assert loaded.score_text(phrase, text) == store.score_text(phrase, text)
        assert loaded.memory_bytes() == store.memory_bytes()

    def test_mmap_load_is_zero_copy(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "rel.rpak"
        save_relevance_store(store, path)
        loaded = load_relevance_store(path, use_mmap=True)
        arena = loaded.arena()
        # views over the read-only map: no write access, no owned data
        assert not arena.pairs.flags.writeable
        assert not arena.pairs.flags.owndata
        eager = load_relevance_store(path, use_mmap=False)
        assert eager.memory_bytes() == loaded.memory_bytes()


class TestMappedPackErrors:
    def test_corrupt_magic_raises_clean_error(self, tmp_path):
        path = tmp_path / "bad.rpak"
        path.write_bytes(b"JUNK" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            open_pack(path)
        with pytest.raises(ValueError, match="magic"):
            load_relevance_store(path)

    def test_truncated_pack_raises_clean_error(self, tmp_path):
        good = tmp_path / "good.rpak"
        store = PackedRelevanceStore(GlobalTidTable(), score_max=1.0)
        store.add("x", (("a", 1.0),))
        save_relevance_store(store, good)
        bad = tmp_path / "cut.rpak"
        bad.write_bytes(good.read_bytes()[:-5])
        with pytest.raises(ValueError, match="truncated"):
            open_pack(bad)
        with pytest.raises(ValueError, match="truncated"):
            load_relevance_store(bad)

    def test_empty_file_raises_value_error(self, tmp_path):
        path = tmp_path / "empty.rpak"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            open_pack(path)

    def test_context_manager_and_sections(self, tmp_path):
        path = tmp_path / "ok.rpak"
        write_pack(path, {"kind": b"test", "data": b"\x01\x02"})
        with open_pack(path) as pack:
            assert "data" in pack
            assert sorted(pack.names()) == ["data", "kind"]
            assert bytes(pack["data"]) == b"\x01\x02"
            assert pack.get("missing") is None
        with open_pack(path) as pack:
            assert bytes(pack["kind"]) == b"test"
        with pytest.raises(KeyError):
            open_pack(path)["missing"]


class TestRankerPersistence:
    def fit_model(self, kernel="linear"):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, 4))
        y = X @ np.array([1.0, -0.5, 0.2, 0.0])
        g = np.repeat(np.arange(10), 6)
        model = RankSVM(kernel=kernel, epochs=50, n_components=64)
        model.fit(X, y, g)
        return model, X

    def test_linear_round_trip(self, tmp_path):
        model, X = self.fit_model()
        path = tmp_path / "model.rpak"
        save_ranker(model, path)
        loaded = load_ranker(path)
        assert np.allclose(loaded.decision_function(X), model.decision_function(X))

    def test_rbf_round_trip(self, tmp_path):
        model, X = self.fit_model(kernel=KERNEL_RBF)
        path = tmp_path / "model.rpak"
        save_ranker(model, path)
        loaded = load_ranker(path)
        assert np.allclose(loaded.decision_function(X), model.decision_function(X))

    def test_config_preserved(self, tmp_path):
        model, __ = self.fit_model()
        path = tmp_path / "model.rpak"
        save_ranker(model, path)
        loaded = load_ranker(path)
        assert loaded.c == model.c
        assert loaded.kernel == model.kernel
        assert loaded.epochs == model.epochs

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_ranker(RankSVM(), tmp_path / "x.rpak")
