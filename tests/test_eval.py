"""Tests for the evaluation harness: environment, crossval, editorial,
production.  Uses a compact environment so the whole module stays fast."""

import numpy as np
import pytest

from repro.corpus import WorldConfig
from repro.eval import (
    CONTENT_ANSWERS,
    CONTENT_NEWS,
    EditorialJudge,
    Environment,
    EnvironmentConfig,
    JudgeConfig,
    RankingExperiment,
    collect_dataset,
    production_ctr_experiment,
    table2_summations,
    table5_combined,
    table6_editorial,
    train_combined_ranker,
)
from repro.eval.editorial import NOT, SOMEWHAT, VERY
from repro.features.relevance import RESOURCE_SNIPPETS

EVAL_CONFIG = EnvironmentConfig(
    world=WorldConfig(
        seed=77,
        vocabulary_size=1800,
        topic_count=24,
        words_per_topic=50,
        concept_count=260,
        topic_page_count=150,
    )
)


@pytest.fixture(scope="module")
def eval_env():
    return Environment.build(EVAL_CONFIG)


@pytest.fixture(scope="module")
def dataset(eval_env):
    return collect_dataset(eval_env, 180, story_seed=3)


@pytest.fixture(scope="module")
def experiment(eval_env, dataset):
    return RankingExperiment(eval_env, dataset)


class TestEnvironment:
    def test_build_assembles_stack(self, eval_env):
        assert eval_env.world.concepts
        assert len(eval_env.query_log) > 0
        assert len(eval_env.lexicon) > 0
        assert eval_env.engine.document_count == len(eval_env.world.web_corpus)

    def test_relevance_model_cached_and_extended(self, eval_env):
        phrases = [c.phrase for c in eval_env.world.concepts[:3]]
        first = eval_env.relevance_model(phrases, RESOURCE_SNIPPETS)
        more = eval_env.relevance_model(
            phrases + [eval_env.world.concepts[3].phrase], RESOURCE_SNIPPETS
        )
        assert len(more) >= len(first)
        for phrase in phrases:
            assert more.relevant_terms(phrase) == first.relevant_terms(phrase)

    def test_stories_deterministic(self, eval_env):
        a = eval_env.stories(3, seed=9)
        b = eval_env.stories(3, seed=9)
        assert [s.text for s in a] == [s.text for s in b]


class TestCollectDataset:
    def test_dataset_survives_filters(self, dataset):
        assert dataset.story_count > 20
        assert dataset.window_count >= dataset.story_count
        assert dataset.entity_count > dataset.story_count * 2

    def test_dataset_deterministic(self, eval_env):
        a = collect_dataset(eval_env, 30, story_seed=4)
        b = collect_dataset(eval_env, 30, story_seed=4)
        assert a.story_count == b.story_count
        assert a.total_clicks == b.total_clicks


class TestRankingExperiment:
    def test_random_near_half(self, experiment):
        result = experiment.run_random()
        assert 0.45 < result.weighted_error_rate < 0.55

    def test_baseline_beats_random(self, experiment):
        random = experiment.run_random()
        baseline = experiment.run_concept_vector()
        assert baseline.weighted_error_rate < random.weighted_error_rate - 0.05

    def test_learned_beats_baseline(self, experiment):
        baseline = experiment.run_concept_vector()
        learned = experiment.run_model("all")
        assert learned.weighted_error_rate < baseline.weighted_error_rate - 0.05

    def test_combined_is_best(self, experiment):
        learned = experiment.run_model("all")
        combined = experiment.run_model(
            "combined",
            relevance_resource=RESOURCE_SNIPPETS,
            tie_break_with_relevance=True,
        )
        assert combined.weighted_error_rate <= learned.weighted_error_rate

    def test_ablation_changes_matrix_width(self, experiment):
        full = experiment.feature_matrix()
        ablated = experiment.feature_matrix(exclude_groups=("query_logs",))
        assert ablated.shape[1] == full.shape[1] - 3

    def test_relevance_scores_nonnegative(self, experiment):
        scores = experiment.relevance_scores(RESOURCE_SNIPPETS)
        assert (scores >= 0).all()
        assert scores.max() > 0

    def test_ndcg_ordering_consistent_with_error(self, experiment):
        """Better WER should come with better NDCG@1 (Figures 1-3)."""
        random = experiment.run_random()
        learned = experiment.run_model("all")
        assert learned.ndcg[1] > random.ndcg[1]
        assert learned.ndcg[2] > random.ndcg[2]
        assert learned.ndcg[3] > random.ndcg[3]

    def test_result_row_formatting(self, experiment):
        row = experiment.run_random().row()
        assert "WER=" in row and "ndcg@1=" in row

    def test_empty_dataset_rejected(self, eval_env):
        from repro.clicks.dataset import ClickDataset

        with pytest.raises(ValueError):
            RankingExperiment(eval_env, ClickDataset(records=[], windows=[]))


class TestTable2:
    def test_specific_beats_junk(self, eval_env):
        rows = table2_summations(eval_env)
        specific = [r.summation for r in rows if r.kind == "specific"]
        junk = [r.summation for r in rows if r.kind == "general/junk"]
        assert specific and junk
        assert np.mean(specific) > np.mean(junk)


class TestEditorial:
    def test_judge_grades_monotone(self):
        judge = EditorialJudge(JudgeConfig(noise_sigma=0.0))
        assert judge.judge_interestingness(0.9) == VERY
        assert judge.judge_interestingness(0.3) == SOMEWHAT
        assert judge.judge_interestingness(0.01) == NOT
        assert judge.judge_relevance(0.9) == VERY
        assert judge.judge_relevance(0.45) == SOMEWHAT
        assert judge.judge_relevance(0.05) == NOT

    def test_study_learned_beats_baseline(self, eval_env, experiment):
        ranker = train_combined_ranker(eval_env, experiment)
        results = table6_editorial(
            eval_env, ranker, news_count=40, answers_count=60
        )
        for content in (CONTENT_NEWS, CONTENT_ANSWERS):
            baseline = results["concept vector score"][content]
            learned = results["ranking algorithm"][content]
            # distributions sum to 1
            assert sum(baseline.interestingness.values()) == pytest.approx(1.0)
            assert sum(learned.relevance.values()) == pytest.approx(1.0)
            # the learned ranker must cut the "not interesting/relevant" share
            assert (
                learned.not_interesting_or_relevant()
                < baseline.not_interesting_or_relevant()
            )


class TestProduction:
    def test_ctr_improves_views_drop(self, eval_env, experiment):
        ranker = train_combined_ranker(eval_env, experiment)
        comparison = production_ctr_experiment(
            eval_env,
            ranker,
            annotate_top=3,
            stories_per_week=12,
            before_weeks=4,
            after_weeks=3,
        )
        assert comparison.views_change_percent < -20.0
        assert comparison.ctr_change_percent > 20.0
        # clicks fall far less than views
        assert abs(comparison.clicks_change_percent) < abs(
            comparison.views_change_percent
        )

    def test_period_stats_math(self):
        from repro.eval import PeriodStats, ProductionComparison

        before = PeriodStats(weeks=2, views=2000, clicks=20)
        after = PeriodStats(weeks=2, views=1000, clicks=19)
        cmp = ProductionComparison(before, after)
        assert cmp.views_change_percent == pytest.approx(-50.0)
        assert cmp.clicks_change_percent == pytest.approx(-5.0)
        assert cmp.ctr_change_percent == pytest.approx(90.0)
