"""Property-based invariants of the synthetic world across configurations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import SyntheticWorld, WorldConfig
from repro.text.vectorize import DocumentFrequencyTable

config_strategy = st.builds(
    WorldConfig,
    seed=st.integers(0, 2**16),
    vocabulary_size=st.integers(400, 900),
    topic_count=st.integers(2, 6),
    words_per_topic=st.integers(20, 40),
    concept_count=st.integers(20, 60),
    named_entity_fraction=st.floats(0.0, 1.0),
    junk_fraction=st.floats(0.0, 0.1),
    topic_page_count=st.integers(10, 40),
)


class TestWorldInvariants:
    @given(config_strategy)
    @settings(max_examples=8, deadline=None)
    def test_any_valid_config_builds_consistently(self, config):
        world = SyntheticWorld.build(config)
        # sizes
        assert len(world.vocabulary) == config.vocabulary_size
        assert len(world.topics) == config.topic_count
        assert len(world.concepts) == config.concept_count
        # ids dense and phrases unique
        assert [c.concept_id for c in world.concepts] == list(
            range(config.concept_count)
        )
        phrases = [c.phrase for c in world.concepts]
        assert len(set(phrases)) == len(phrases)
        # latents bounded
        for concept in world.concepts:
            assert 0.0 <= concept.interestingness <= 1.0
            assert 0.0 <= concept.specificity <= 1.0
            for topic in concept.home_topics:
                assert 0 <= topic < config.topic_count
        # document frequency table covers the corpus
        assert world.doc_frequency.total_documents == len(world.web_corpus)
        # dictionary only contains named entities
        for phrase in world.dictionary.phrases():
            concept = world.concept_by_phrase(phrase)
            assert concept.is_named_entity

    @given(config_strategy)
    @settings(max_examples=5, deadline=None)
    def test_mentions_always_match_surface(self, config):
        world = SyntheticWorld.build(config)
        stories = world.story_generator(seed=1).generate_many(3)
        by_id = {c.concept_id: c for c in world.concepts}
        for story in stories:
            for mention in story.mentions:
                assert (
                    story.text[mention.start : mention.end]
                    == by_id[mention.concept_id].phrase
                )
                assert 0.0 <= mention.relevance <= 1.0


class TestRawIdf:
    def build(self):
        table = DocumentFrequencyTable()
        table.add_document(["common", "rare"])
        table.add_document(["common"])
        table.add_document(["common"])
        return table

    def test_raw_idf_ordering(self):
        table = self.build()
        assert table.raw_idf("rare") > table.raw_idf("common")
        assert table.raw_idf("unseen") > table.raw_idf("rare")

    def test_ubiquitous_term_near_zero(self):
        table = self.build()
        assert table.raw_idf("common") == pytest.approx(
            np.log(4 / 4), abs=0.3
        )

    def test_raw_idf_below_floored_idf(self):
        table = self.build()
        for term in ("common", "rare", "unseen"):
            assert table.raw_idf(term) < table.idf(term)
