"""Tests for the command-line interface (parser wiring + demo command)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_serve_arguments(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--port-file", "/tmp/port",
            "--pack", "packs/", "--top", "7",
            "--trace-out", "t.jsonl", "--trace-max-bytes", "4096",
        ])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.port_file == "/tmp/port"
        assert args.pack == "packs/"
        assert args.top == 7
        assert args.trace_max_bytes == 4096

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8080
        assert args.pack is None
        assert args.trace_max_bytes is None

    def test_stats_sources(self):
        args = build_parser().parse_args(["stats", "--snapshot", "snap.json"])
        assert args.snapshot == "snap.json"
        assert args.url is None
        args = build_parser().parse_args(
            ["stats", "--url", "http://127.0.0.1:9/metrics"]
        )
        assert args.url == "http://127.0.0.1:9/metrics"
        assert args.snapshot is None
    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.top == 5

    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "table3", "--stories", "50"])
        assert args.name == "table3"
        assert args.stories == 50
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "table9"])

    def test_rank_arguments(self):
        args = build_parser().parse_args(["rank", "file.txt", "--html"])
        assert args.file == "file.txt"
        assert args.html is True

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "top concepts" in output

    def test_rank_missing_file(self, capsys):
        assert main(["rank", "/nonexistent/file.txt"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_quick_experiment_table5(self, capsys):
        assert main(["experiment", "table5", "--quick", "--stories", "60"]) == 0
        output = capsys.readouterr().out
        assert "interestingness + relevance" in output
        assert "WER=" in output

    def test_quick_experiment_table2(self, capsys):
        assert main(["experiment", "table2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "specific" in output

    def test_describe_quick(self, capsys):
        assert main(["describe", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "unit lexicon" in output
        assert "query log" in output

    def test_stats_snapshot_file_renders_without_a_workload(
        self, capsys, tmp_path
    ):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("rank_documents_total").inc(12)
        snapshot_file = tmp_path / "snap.json"
        snapshot_file.write_text(json.dumps(registry.snapshot()))

        assert main(["stats", "--snapshot", str(snapshot_file)]) == 0
        output = capsys.readouterr().out
        assert "repro_rank_documents_total 12" in output

        assert main([
            "stats", "--snapshot", str(snapshot_file), "--format", "json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rank_documents_total"]["series"][0]["value"] == 12

    def test_stats_snapshot_and_url_are_exclusive(self, capsys, tmp_path):
        snapshot_file = tmp_path / "snap.json"
        snapshot_file.write_text("{}")
        assert main([
            "stats", "--snapshot", str(snapshot_file),
            "--url", "http://127.0.0.1:9/metrics",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
