"""Tests for the command-line interface (parser wiring + demo command)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.top == 5

    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "table3", "--stories", "50"])
        assert args.name == "table3"
        assert args.stories == 50
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "table9"])

    def test_rank_arguments(self):
        args = build_parser().parse_args(["rank", "file.txt", "--html"])
        assert args.file == "file.txt"
        assert args.html is True

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "top concepts" in output

    def test_rank_missing_file(self, capsys):
        assert main(["rank", "/nonexistent/file.txt"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_quick_experiment_table5(self, capsys):
        assert main(["experiment", "table5", "--quick", "--stories", "60"]) == 0
        output = capsys.readouterr().out
        assert "interestingness + relevance" in output
        assert "WER=" in output

    def test_quick_experiment_table2(self, capsys):
        assert main(["experiment", "table2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "specific" in output

    def test_describe_quick(self, capsys):
        assert main(["describe", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "unit lexicon" in output
        assert "query log" in output
