"""Tests for tokenization, sentence and paragraph boundaries."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text import Token, paragraphs, sentences, tokenize, tokenize_lower
from repro.text.tokenizer import iter_ngrams


class TestTokenize:
    def test_simple_words(self):
        tokens = tokenize("hello world")
        assert [t.text for t in tokens] == ["hello", "world"]

    def test_offsets_recover_source(self):
        text = "President Bush's position was similar."
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_apostrophes_kept_inside_words(self):
        tokens = tokenize("don't stop O'Brien")
        assert [t.text for t in tokens] == ["don't", "stop", "O'Brien"]

    def test_numbers_with_separators(self):
        tokens = tokenize("1,234.5 units")
        assert tokens[0].text == "1,234.5"

    def test_punctuation_is_separate_tokens(self):
        tokens = tokenize("Wait, what?!")
        assert [t.text for t in tokens] == ["Wait", ",", "what", "?", "!"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_is_word(self):
        tokens = tokenize("abc , 42")
        assert tokens[0].is_word()
        assert not tokens[1].is_word()
        assert not tokens[2].is_word()

    def test_token_lower(self):
        assert Token("Texas", 0, 5).lower == "texas"


class TestTokenizeLower:
    def test_drops_punctuation_and_lowercases(self):
        assert tokenize_lower("Hello, World!") == ["hello", "world"]

    def test_snippet_from_paper(self):
        words = tokenize_lower("argued at a debate with Obama last week in Texas")
        assert "obama" in words
        assert "texas" in words

    @given(st.text(max_size=200))
    def test_never_raises_and_all_lowercase(self, text):
        words = tokenize_lower(text)
        assert all(word == word.lower() for word in words)

    @given(st.text(max_size=200))
    def test_word_tokens_start_alpha(self, text):
        for word in tokenize_lower(text):
            assert word[0].isalpha()


class TestSentences:
    def test_basic_split(self):
        parts = sentences("This is one. This is two.")
        assert len(parts) == 2

    def test_abbreviation_not_split(self):
        parts = sentences("Sen. Clinton argued. Obama replied.")
        assert len(parts) == 2
        assert parts[0].startswith("Sen. Clinton")

    def test_question_and_exclamation(self):
        parts = sentences("Really? Yes! Fine.")
        assert len(parts) == 3

    def test_no_terminator(self):
        assert sentences("no terminator here") == ["no terminator here"]

    def test_empty(self):
        assert sentences("") == []


class TestParagraphs:
    def test_blank_line_split(self):
        parts = paragraphs("para one\n\npara two\n\n\npara three")
        assert parts == ["para one", "para two", "para three"]

    def test_single_newline_not_split(self):
        assert paragraphs("line one\nline two") == ["line one\nline two"]

    def test_empty(self):
        assert paragraphs("   \n\n  ") == []


class TestIterNgrams:
    def test_all_ngrams_up_to_len(self):
        grams = list(iter_ngrams(["a", "b", "c"], 2))
        assert ("a",) in grams
        assert ("a", "b") in grams
        assert ("b", "c") in grams
        assert ("a", "b", "c") not in grams

    def test_counts(self):
        grams = list(iter_ngrams(["a", "b", "c", "d"], 3))
        # 4 unigrams + 3 bigrams + 2 trigrams
        assert len(grams) == 9

    @given(st.lists(st.text(min_size=1, max_size=4), max_size=8), st.integers(1, 4))
    def test_every_ngram_is_contiguous_subsequence(self, words, max_len):
        for gram in iter_ngrams(words, max_len):
            assert len(gram) <= max_len
            joined = list(gram)
            # must appear contiguously in words
            found = any(
                words[i : i + len(joined)] == joined
                for i in range(len(words) - len(joined) + 1)
            )
            assert found
