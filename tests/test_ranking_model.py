"""Direct tests for FeatureAssembler and ConceptRanker."""

import numpy as np
import pytest

from repro.features import RelevanceModel, RelevanceScorer
from repro.features.interestingness import numeric_feature_names
from repro.ranking import ConceptRanker, FeatureAssembler, RankSVM


@pytest.fixture(scope="module")
def relevance_scorer(env_world, env_miner):
    phrases = [c.phrase for c in env_world.concepts[:30]]
    return RelevanceScorer(RelevanceModel.mine_all(env_miner, phrases))


@pytest.fixture(scope="module")
def trained_svm():
    """A deterministic model on the combined feature width."""
    rng = np.random.default_rng(2)
    width = len(numeric_feature_names()) + 1  # + relevance column
    X = rng.normal(size=(60, width))
    y = X[:, 0] - X[:, -1]
    g = np.repeat(np.arange(10), 6)
    return RankSVM(epochs=40).fit(X, y, g)


class TestFeatureAssembler:
    def test_vector_width_without_relevance(self, env_extractor, env_world):
        assembler = FeatureAssembler(extractor=env_extractor)
        vector = assembler.vector(env_world.concepts[0].phrase)
        assert vector.shape == (len(numeric_feature_names()),)

    def test_vector_width_with_relevance(
        self, env_extractor, env_world, relevance_scorer
    ):
        assembler = FeatureAssembler(
            extractor=env_extractor, relevance_scorer=relevance_scorer
        )
        context = relevance_scorer.context_stems("some context text")
        vector = assembler.vector(env_world.concepts[0].phrase, context)
        assert vector.shape == (len(numeric_feature_names()) + 1,)

    def test_relevance_requires_context(
        self, env_extractor, relevance_scorer, env_world
    ):
        assembler = FeatureAssembler(
            extractor=env_extractor, relevance_scorer=relevance_scorer
        )
        with pytest.raises(ValueError):
            assembler.vector(env_world.concepts[0].phrase, None)

    def test_context_of_none_without_scorer(self, env_extractor):
        assembler = FeatureAssembler(extractor=env_extractor)
        assert assembler.context_of("anything") is None

    def test_exclude_groups_shrinks(self, env_extractor, env_world):
        assembler = FeatureAssembler(
            extractor=env_extractor, exclude_groups=("query_logs",)
        )
        vector = assembler.vector(env_world.concepts[0].phrase)
        assert vector.shape == (len(numeric_feature_names()) - 3,)

    def test_matrix_stacks(self, env_extractor, env_world):
        assembler = FeatureAssembler(extractor=env_extractor)
        phrases = [c.phrase for c in env_world.concepts[:4]]
        matrix = assembler.matrix(phrases)
        assert matrix.shape[0] == 4

    def test_relevance_of_zero_without_scorer(self, env_extractor):
        assembler = FeatureAssembler(extractor=env_extractor)
        assert (assembler.relevance_of(["a", "b"], None) == 0).all()


class TestConceptRanker:
    @pytest.fixture(scope="class")
    def ranker(self, env_extractor, relevance_scorer, trained_svm):
        assembler = FeatureAssembler(
            extractor=env_extractor, relevance_scorer=relevance_scorer
        )
        return ConceptRanker(assembler, trained_svm)

    def test_score_phrases_shape(self, ranker, env_world, env_stories):
        phrases = [c.phrase for c in env_world.concepts[:5]]
        scores = ranker.score_phrases(phrases, env_stories[0].text)
        assert scores.shape == (5,)

    def test_score_empty(self, ranker, env_stories):
        assert ranker.score_phrases([], env_stories[0].text).shape == (0,)

    def test_rank_phrases_sorted(self, ranker, env_world, env_stories):
        phrases = [c.phrase for c in env_world.concepts[:6]]
        ranked = ranker.rank_phrases(phrases, env_stories[0].text)
        scores = [s for __, s in ranked]
        assert scores == sorted(scores, reverse=True)
        assert sorted(p for p, __ in ranked) == sorted(phrases)

    def test_rank_document_and_top(self, ranker, env_pipeline, env_stories):
        annotated = env_pipeline.process(env_stories[1].text)
        ranked = ranker.rank_document(annotated)
        top2 = ranker.top_detections(annotated, 2)
        assert [d.phrase for d in top2] == [d.phrase for d in ranked[:2]]
        scores = [d.score for d in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_rank_document_empty(self, ranker, env_pipeline):
        annotated = env_pipeline.process("")
        assert ranker.rank_document(annotated) == []

    def test_tie_break_toggle_changes_nothing_on_strict_scores(
        self, env_extractor, relevance_scorer, trained_svm, env_world, env_stories
    ):
        assembler = FeatureAssembler(
            extractor=env_extractor, relevance_scorer=relevance_scorer
        )
        with_tb = ConceptRanker(assembler, trained_svm, True)
        without_tb = ConceptRanker(assembler, trained_svm, False)
        phrases = [c.phrase for c in env_world.concepts[:5]]
        a = [p for p, __ in with_tb.rank_phrases(phrases, env_stories[2].text)]
        b = [p for p, __ in without_tb.rank_phrases(phrases, env_stories[2].text)]
        # scores are continuous; epsilon tie-breaking cannot reorder them
        assert a == b


class TestSeedSweepUnit:
    def test_two_tiny_seeds(self):
        from repro.corpus import WorldConfig
        from repro.eval import seed_sweep

        result = seed_sweep(
            seeds=[3, 4],
            base_world=WorldConfig(
                vocabulary_size=1000,
                topic_count=10,
                words_per_topic=35,
                concept_count=90,
                topic_page_count=60,
            ),
            stories=60,
        )
        assert result.seeds == [3, 4]
        for ranker, values in result.wer.items():
            assert len(values) == 2
            assert all(0.0 <= v <= 1.0 for v in values)
        # random must sit near 50% on both seeds
        assert 0.4 < result.mean("random") < 0.6
        assert 0.0 <= result.ordering_hold_rate("combined", "random") <= 1.0
