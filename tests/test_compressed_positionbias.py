"""Tests for the compressed relevance store and position-bias analysis."""

import numpy as np
import pytest

from repro.clicks.tracking import EntityObservation, StoryClickRecord
from repro.eval import decay_ratio, fitted_decay_chars, position_ctr_curve
from repro.features import RelevanceModel, RelevanceScorer
from repro.runtime import (
    CompressedRelevanceStore,
    GlobalTidTable,
    PackedRelevanceStore,
)


def make_model():
    return RelevanceModel(
        {
            "global warming": tuple(
                (f"term{i}", 100.0 - i) for i in range(100)
            ),
            "stock market": (("trade", 42.0), ("term3", 7.0)),
            "cold concept": (),
        }
    )


class TestCompressedRelevanceStore:
    def test_scores_match_packed_store(self):
        model = make_model()
        packed = PackedRelevanceStore.build(model, GlobalTidTable())
        compressed = CompressedRelevanceStore.build(model, GlobalTidTable())
        text = "term0 term1 term50 trade something"
        for phrase in model.phrases():
            assert compressed.score_text(phrase, text) == pytest.approx(
                packed.score_text(phrase, text)
            )

    def test_memory_smaller_than_packed(self):
        model = make_model()
        packed = PackedRelevanceStore.build(model, GlobalTidTable())
        compressed = CompressedRelevanceStore.build(model, GlobalTidTable())
        assert compressed.memory_bytes() < packed.memory_bytes()

    def test_from_packed_conversion(self):
        model = make_model()
        packed = PackedRelevanceStore.build(model, GlobalTidTable())
        converted = CompressedRelevanceStore.from_packed(packed)
        text = "term0 term7 trade"
        for phrase in model.phrases():
            assert converted.score_text(phrase, text) == pytest.approx(
                packed.score_text(phrase, text)
            )
        assert converted.tid_table is packed.tid_table

    def test_unknown_phrase_and_empty_context(self):
        compressed = CompressedRelevanceStore.build(make_model())
        assert compressed.score("unknown", {1, 2}) == 0.0
        assert compressed.score("global warming", set()) == 0.0

    def test_contains_and_len(self):
        compressed = CompressedRelevanceStore.build(make_model())
        assert "global warming" in compressed
        assert "GLOBAL WARMING" in compressed
        assert len(compressed) == 3

    def test_drop_in_for_ranker_service(
        self, env_world, env_extractor, env_miner, env_pipeline, env_stories
    ):
        """The compressed store must slot into RankerService unchanged."""
        import numpy as np

        from repro.ranking import RankSVM
        from repro.runtime import QuantizedInterestingnessStore, RankerService

        phrases = [c.phrase for c in env_world.concepts]
        interestingness = QuantizedInterestingnessStore.build(
            env_extractor, phrases
        )
        model = RelevanceModel.mine_all(env_miner, phrases[:40])
        packed = PackedRelevanceStore.build(model)
        compressed = CompressedRelevanceStore.from_packed(packed)

        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 16))
        svm = RankSVM(epochs=30)
        svm.fit(X, X[:, 0], np.repeat(np.arange(10), 5))

        service_packed = RankerService(env_pipeline, interestingness, packed, svm)
        service_compressed = RankerService(
            env_pipeline, interestingness, compressed, svm
        )
        story = env_stories[0]
        ranked_packed = [d.phrase for d in service_packed.process(story.text)]
        ranked_compressed = [
            d.phrase for d in service_compressed.process(story.text)
        ]
        assert ranked_packed == ranked_compressed

    def test_on_world_mined_keywords(self, env_world, env_miner):
        phrases = [c.phrase for c in env_world.concepts[:10]]
        model = RelevanceModel.mine_all(env_miner, phrases)
        packed = PackedRelevanceStore.build(model, GlobalTidTable())
        compressed = CompressedRelevanceStore.from_packed(packed)
        story = env_world.story_generator(seed=6).generate(0)
        context_packed = packed.context_stems(story.text)
        for phrase in phrases:
            assert compressed.score(phrase, context_packed) == pytest.approx(
                packed.score(phrase, context_packed)
            )
        assert compressed.memory_bytes() < packed.memory_bytes()


def make_records(decay_chars=1000.0, stories=60, seed=0):
    """Records whose CTR decays exponentially with position."""
    rng = np.random.default_rng(seed)
    records = []
    for story_id in range(stories):
        entities = []
        for position in (50, 800, 1700, 2600, 3500):
            views = 500
            ctr = 0.1 * np.exp(-position / decay_chars)
            clicks = int(rng.binomial(views, ctr))
            entities.append(
                EntityObservation(
                    phrase=f"e{position}",
                    concept_id=0,
                    entity_type=None,
                    position=position,
                    baseline_score=0.0,
                    views=views,
                    clicks=clicks,
                )
            )
        records.append(
            StoryClickRecord(
                story_id=story_id, text="x" * 4000, views=500, entities=entities
            )
        )
    return records


class TestPositionBias:
    def test_curve_shape(self):
        curve = position_ctr_curve(make_records(), bin_chars=500)
        assert len(curve) == 8
        populated = [b for b in curve if b.views > 0]
        # CTR decays monotonically across populated bins
        ctrs = [b.ctr for b in populated]
        assert ctrs == sorted(ctrs, reverse=True)

    def test_decay_ratio(self):
        curve = position_ctr_curve(make_records(decay_chars=800))
        assert decay_ratio(curve) > 3.0

    def test_flat_curve_ratio_one(self):
        records = make_records(decay_chars=1e9)
        curve = position_ctr_curve(records)
        assert decay_ratio(curve) == pytest.approx(1.0, abs=0.2)

    def test_fitted_decay_recovers_constant(self):
        curve = position_ctr_curve(make_records(decay_chars=1200, stories=200))
        fitted = fitted_decay_chars(curve)
        assert fitted == pytest.approx(1200, rel=0.25)

    def test_invalid_bin(self):
        with pytest.raises(ValueError):
            position_ctr_curve([], bin_chars=0)

    def test_empty_records(self):
        curve = position_ctr_curve([], bin_chars=500)
        assert all(b.views == 0 for b in curve)
        assert decay_ratio(curve) == 1.0
        assert fitted_decay_chars(curve) == float("inf")

    def test_click_model_decay_recoverable(self, env_world, env_pipeline):
        """The world's tracked clicks must show the configured bias."""
        from repro.clicks import ClickTracker, UserClickModel

        tracker = ClickTracker(env_world, env_pipeline, UserClickModel(seed=77))
        stories = env_world.story_generator(seed=88).generate_many(100)
        records = tracker.track(stories)
        curve = position_ctr_curve(records, bin_chars=800, max_position=3200)
        assert decay_ratio(curve) > 1.0
