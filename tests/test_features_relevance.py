"""Tests for relevant-keyword mining and runtime relevance scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import (
    RESOURCES,
    RelevanceModel,
    RelevanceScorer,
    build_stemmed_df,
    stemmed_terms,
)
from repro.features.quantize import dequantize, quantize


class TestStemmedTerms:
    def test_stopwords_removed(self):
        assert "the" not in stemmed_terms("the running dogs")

    def test_terms_are_stemmed(self):
        terms = stemmed_terms("running quickly connections")
        assert "run" in terms
        assert "connect" in terms

    def test_punctuation_stripped(self):
        assert stemmed_terms("hello, world!") == ["hello", "world"]


class TestMining:
    def hot_concept(self, env_world, env_log):
        return max(
            (c for c in env_world.concepts if not c.is_junk and len(c.terms) >= 2),
            key=lambda c: env_log.freq_exact(c.terms),
        )

    def test_snippet_keywords_capped_and_sorted(self, env_world, env_log, env_miner):
        concept = self.hot_concept(env_world, env_log)
        terms = env_miner.mine_from_snippets(concept.phrase)
        assert 0 < len(terms) <= 100
        scores = [s for __, s in terms]
        assert scores == sorted(scores, reverse=True)

    def test_snippet_keywords_exclude_concept_terms(
        self, env_world, env_log, env_miner
    ):
        concept = self.hot_concept(env_world, env_log)
        mined = {t for t, __ in env_miner.mine_from_snippets(concept.phrase)}
        concept_stems = set(stemmed_terms(concept.phrase))
        assert not mined & concept_stems

    def test_snippet_keywords_include_home_topic_words(
        self, env_world, env_log, env_miner
    ):
        concept = self.hot_concept(env_world, env_log)
        mined = {t for t, __ in env_miner.mine_from_snippets(concept.phrase)}
        topic_stems = set()
        for topic_id in concept.home_topics:
            topic_stems.update(
                stemmed_terms(" ".join(env_world.topics[topic_id].words))
            )
        assert mined & topic_stems

    def test_prisma_keywords_sparser_than_snippets(
        self, env_world, env_log, env_miner
    ):
        concept = self.hot_concept(env_world, env_log)
        prisma = env_miner.mine_from_prisma(concept.phrase)
        snippets = env_miner.mine_from_snippets(concept.phrase)
        assert len(prisma) <= 20
        assert len(snippets) >= len(prisma)

    def test_suggestions_keywords(self, env_world, env_log, env_miner):
        concept = self.hot_concept(env_world, env_log)
        terms = env_miner.mine_from_suggestions(concept.phrase)
        assert terms
        assert all(score > 0 for __, score in terms)

    def test_mine_dispatch(self, env_world, env_log, env_miner):
        concept = self.hot_concept(env_world, env_log)
        for resource in RESOURCES:
            assert isinstance(env_miner.mine(concept.phrase, resource), tuple)
        with pytest.raises(ValueError):
            env_miner.mine(concept.phrase, "nope")


class TestTable2Property:
    def test_specific_concepts_higher_summation_than_junk(
        self, env_world, env_log, env_miner
    ):
        """The Table II separation: specific >> junk/general summations."""
        regular = [
            c
            for c in env_world.concepts
            if not c.is_junk and c.specificity > 0.8 and len(c.terms) >= 2
        ]
        regular = sorted(
            regular, key=lambda c: env_log.freq_exact(c.terms), reverse=True
        )[:8]
        junk = env_world.junk_concepts()
        assert regular and junk
        model = RelevanceModel.mine_all(
            env_miner, [c.phrase for c in regular + junk]
        )
        specific_sums = [model.summation(c.phrase) for c in regular]
        junk_sums = [model.summation(c.phrase) for c in junk]
        assert np.mean(specific_sums) > 2 * max(np.mean(junk_sums), 1e-9)


class TestRelevanceScoring:
    @pytest.fixture(scope="class")
    def model_and_scorer(self, env_world, env_log, env_miner):
        concepts = [
            c for c in env_world.concepts if not c.is_junk and c.home_topics
        ]
        concepts = sorted(
            concepts, key=lambda c: env_log.freq_exact(c.terms), reverse=True
        )[:10]
        model = RelevanceModel.mine_all(env_miner, [c.phrase for c in concepts])
        return concepts, model, RelevanceScorer(model)

    def test_in_context_beats_out_of_context(
        self, model_and_scorer, env_world
    ):
        concepts, __, scorer = model_and_scorer
        generator = env_world.story_generator(seed=77)
        stories = generator.generate_many(60)
        in_scores, out_scores = [], []
        for story in stories:
            context = scorer.context_stems(story.text)
            for concept in concepts:
                score = scorer.score(concept.phrase, context)
                if concept.relevant_in(story.topics):
                    in_scores.append(score)
                else:
                    out_scores.append(score)
        assert in_scores and out_scores
        assert np.mean(in_scores) > np.mean(out_scores)

    def test_unknown_phrase_scores_zero(self, model_and_scorer):
        __, __, scorer = model_and_scorer
        assert scorer.score_text("unknown phrase", "any text at all") == 0.0

    def test_empty_context_scores_zero(self, model_and_scorer):
        concepts, __, scorer = model_and_scorer
        assert scorer.score(concepts[0].phrase, set()) == 0.0

    def test_score_monotone_in_context(self, model_and_scorer):
        concepts, model, scorer = model_and_scorer
        terms = model.relevant_terms(concepts[0].phrase)
        if len(terms) < 4:
            pytest.skip("too few mined terms")
        small = {terms[0][0]}
        large = {t for t, __ in terms[:4]}
        assert scorer.score(concepts[0].phrase, large) >= scorer.score(
            concepts[0].phrase, small
        )


class TestQuantize:
    def test_round_trip_small_error(self):
        for value in [0.0, 0.1, 0.5, 0.9, 1.0]:
            code = quantize(value, 1.0, 10)
            assert abs(dequantize(code, 1.0, 10) - value) < 1.0 / 1023 + 1e-12

    def test_clamping(self):
        assert quantize(2.0, 1.0, 8) == 255
        assert quantize(-1.0, 1.0, 8) == 0

    def test_zero_max(self):
        assert quantize(5.0, 0.0, 8) == 0
        assert dequantize(100, 0.0, 8) == 0.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            quantize(1.0, 1.0, 40)

    @given(
        st.floats(min_value=0, max_value=1000),
        st.integers(1, 16),
    )
    @settings(max_examples=50)
    def test_round_trip_bounded_error(self, value, bits):
        max_value = 1000.0
        code = quantize(value, max_value, bits)
        assert 0 <= code < (1 << bits)
        recovered = dequantize(code, max_value, bits)
        assert abs(recovered - value) <= max_value / ((1 << bits) - 1) / 2 + 1e-9
