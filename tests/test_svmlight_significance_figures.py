"""Tests for SVMlight I/O, bootstrap significance, and figure rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    EvalResult,
    paired_bootstrap,
    render_bar,
    render_ndcg_figure,
    render_wer_figure,
)
from repro.ranking import dump_ranking_file, load_ranking_file


class TestSvmlightFormat:
    def sample(self):
        features = np.array([[1.0, 0.0, 2.5], [0.0, 3.0, 0.0], [1.5, 2.0, 0.5]])
        labels = [0.15, 0.05, 0.4]
        groups = [2, 1, 2]
        return features, labels, groups

    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.dat"
        features, labels, groups = self.sample()
        dump_ranking_file(path, features, labels, groups)
        loaded_x, loaded_y, loaded_g, comments = load_ranking_file(path)
        # rows are regrouped by qid; compare as sets of (label, group, row)
        original = {
            (labels[i], groups[i], tuple(features[i])) for i in range(3)
        }
        recovered = {
            (float(loaded_y[i]), int(loaded_g[i]), tuple(loaded_x[i]))
            for i in range(3)
        }
        assert original == recovered

    def test_qid_blocks_contiguous(self, tmp_path):
        path = tmp_path / "data.dat"
        features, labels, groups = self.sample()
        dump_ranking_file(path, features, labels, groups)
        qids = [
            line.split()[1]
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert qids == sorted(qids)

    def test_zero_features_omitted(self, tmp_path):
        path = tmp_path / "data.dat"
        dump_ranking_file(path, np.array([[0.0, 5.0]]), [1.0], [1])
        content = path.read_text()
        assert "1:" not in content
        assert "2:5" in content

    def test_comments_round_trip(self, tmp_path):
        path = tmp_path / "data.dat"
        dump_ranking_file(
            path, np.array([[1.0]]), [1.0], [1], comments=["cuba talks"]
        )
        __, __, __, comments = load_ranking_file(path)
        assert comments == ["cuba talks"]

    def test_misaligned_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            dump_ranking_file(tmp_path / "x", np.zeros((2, 1)), [1.0], [1, 2])

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("1.0 nofqid 1:2\n")
        with pytest.raises(ValueError, match="qid"):
            load_ranking_file(path)

    def test_descending_indices_rejected(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("1.0 qid:1 2:1 1:1\n")
        with pytest.raises(ValueError, match="ascend"):
            load_ranking_file(path)

    def test_blank_and_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "data.dat"
        path.write_text("# header\n\n0.5 qid:3 1:1\n")
        __, labels, groups, __c = load_ranking_file(path)
        assert labels.tolist() == [0.5]
        assert groups.tolist() == [3]

    @given(
        st.integers(2, 5),
        st.integers(1, 4),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, rows, cols, seed):
        import tempfile
        from pathlib import Path

        rng = np.random.default_rng(seed)
        features = rng.normal(size=(rows, cols)).round(3)
        labels = rng.random(rows).round(3)
        groups = rng.integers(0, 3, rows)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prop.dat"
            dump_ranking_file(path, features, labels, groups)
            loaded_x, loaded_y, loaded_g, __ = load_ranking_file(path)
        assert loaded_x.shape[0] == rows
        # widths may differ if trailing columns were all zero
        assert loaded_x.shape[1] <= cols


class TestPairedBootstrap:
    def make_data(self, quality_b=0.9, groups=40, seed=0):
        """System B orders groups correctly with prob quality_b; A at 0.5."""
        rng = np.random.default_rng(seed)
        labels, a_scores, b_scores, group_ids = [], [], [], []
        for group in range(groups):
            ctrs = rng.random(4)
            labels.extend(ctrs)
            a_scores.extend(rng.random(4))
            if rng.random() < quality_b:
                b_scores.extend(ctrs)  # perfect ordering
            else:
                b_scores.extend(-ctrs)  # inverted
            group_ids.extend([group] * 4)
        return labels, a_scores, b_scores, group_ids

    def test_clear_improvement_significant(self):
        labels, a, b, g = self.make_data(quality_b=0.95)
        result = paired_bootstrap(labels, a, b, g, resamples=500)
        assert result.wer_b < result.wer_a
        assert result.delta_mean > 0
        assert result.significant

    def test_no_improvement_not_significant(self):
        labels, a, __, g = self.make_data()
        rng = np.random.default_rng(1)
        b = rng.random(len(a))
        result = paired_bootstrap(labels, a, b, g, resamples=500)
        assert not result.significant

    def test_identical_systems(self):
        labels, a, __, g = self.make_data()
        result = paired_bootstrap(labels, a, a, g, resamples=200)
        assert result.delta_mean == pytest.approx(0.0)
        assert not result.significant

    def test_deterministic(self):
        labels, a, b, g = self.make_data()
        first = paired_bootstrap(labels, a, b, g, resamples=200, seed=3)
        second = paired_bootstrap(labels, a, b, g, resamples=200, seed=3)
        assert first.delta_mean == second.delta_mean

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap([], [], [], [], resamples=10)


class TestFigures:
    def results(self):
        return [
            EvalResult("random", 0.50, 0.50, {1: 0.44, 2: 0.54, 3: 0.61}),
            EvalResult("learned", 0.17, 0.25, {1: 0.72, 2: 0.80, 3: 0.84}),
        ]

    def test_bar_full_and_empty(self):
        assert render_bar(1.0, width=10) == "#" * 10
        assert render_bar(0.0, width=10) == "." * 10

    def test_bar_clamps(self):
        assert render_bar(2.0, width=10) == "#" * 10
        assert render_bar(-1.0, width=10) == "." * 10

    def test_bar_zero_peak(self):
        assert render_bar(1.0, width=5, peak=0.0) == "." * 5

    def test_ndcg_figure_structure(self):
        lines = render_ndcg_figure(self.results())
        assert lines[0] == "ndcg@1"
        assert any("learned" in line and "0.720" in line for line in lines)
        # 3 cutoffs x (1 header + 2 bars)
        assert len(lines) == 9

    def test_wer_figure_values(self):
        lines = render_wer_figure(self.results())
        assert any("50.00%" in line for line in lines)
        assert any("17.00%" in line for line in lines)
        # the learned bar must be visibly shorter
        random_bar = lines[0].count("#")
        learned_bar = lines[1].count("#")
        assert learned_bar < random_bar
