"""Tests for error rates and NDCG — including the paper's worked examples.

The paper (Section V-A.2) works through a four-concept example with
perfect ordering [A, B, C, D], CTRs [(A, 0.15), (B, 0.05), (C, 0.02),
(D, 0.01)], and two predicted rankings R1 = [A, B, D, C] and
R2 = [B, A, C, D].  It reports:

* plain error rate: 16.67% for both R1 and R2;
* weighted error rate: 2.22% for R1 and 22.22% for R2;
* with score(j) = CTR(j) * 10: ndcg@1 = 1.0 / 0.23, ndcg@2 = 1.0 / 0.75,
  ndcg@3 = 0.98 / 0.76 for R1 / R2 respectively.

These values pin the metric implementations exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    CTRBucketizer,
    error_rate,
    grouped_errors,
    mean_ndcg,
    ndcg_at_k,
    pairwise_errors,
    weighted_error_rate,
)

# labels = CTRs of A, B, C, D
CTRS = np.array([0.15, 0.05, 0.02, 0.01])
# predicted scores inducing R1 = [A, B, D, C]
R1_SCORES = np.array([4.0, 3.0, 1.0, 2.0])
# predicted scores inducing R2 = [B, A, C, D]
R2_SCORES = np.array([3.0, 4.0, 2.0, 1.0])


class TestPaperErrorRateExamples:
    def test_r1_plain_error_rate(self):
        assert error_rate(CTRS, R1_SCORES) == pytest.approx(1 / 6)

    def test_r2_plain_error_rate(self):
        assert error_rate(CTRS, R2_SCORES) == pytest.approx(1 / 6)

    def test_r1_weighted_error_rate(self):
        assert weighted_error_rate(CTRS, R1_SCORES) == pytest.approx(
            0.0222, abs=1e-3
        )

    def test_r2_weighted_error_rate(self):
        assert weighted_error_rate(CTRS, R2_SCORES) == pytest.approx(
            0.2222, abs=1e-3
        )


class TestPaperNdcgExamples:
    """The paper simplifies with score(j) = CTR(j) * 10 for this example."""

    JUDGMENTS = CTRS * 10

    def test_r1_ndcg_at_1(self):
        assert ndcg_at_k(self.JUDGMENTS, R1_SCORES, 1) == pytest.approx(1.0)

    def test_r2_ndcg_at_1(self):
        assert ndcg_at_k(self.JUDGMENTS, R2_SCORES, 1) == pytest.approx(
            0.23, abs=0.005
        )

    def test_r1_ndcg_at_2(self):
        assert ndcg_at_k(self.JUDGMENTS, R1_SCORES, 2) == pytest.approx(1.0)

    def test_r2_ndcg_at_2(self):
        assert ndcg_at_k(self.JUDGMENTS, R2_SCORES, 2) == pytest.approx(
            0.75, abs=0.005
        )

    def test_r1_ndcg_at_3(self):
        assert ndcg_at_k(self.JUDGMENTS, R1_SCORES, 3) == pytest.approx(
            0.98, abs=0.005
        )

    def test_r2_ndcg_at_3(self):
        assert ndcg_at_k(self.JUDGMENTS, R2_SCORES, 3) == pytest.approx(
            0.76, abs=0.005
        )


class TestErrorRateMechanics:
    def test_perfect_ranking_zero(self):
        assert weighted_error_rate(CTRS, np.array([4.0, 3.0, 2.0, 1.0])) == 0.0

    def test_reversed_ranking_one(self):
        assert weighted_error_rate(CTRS, np.array([1.0, 2.0, 3.0, 4.0])) == 1.0

    def test_tied_predictions_half_mistake(self):
        errors = pairwise_errors([0.2, 0.1], [1.0, 1.0])
        assert errors.error_rate == pytest.approx(0.5)

    def test_tied_labels_not_counted(self):
        errors = pairwise_errors([0.1, 0.1], [1.0, 2.0])
        assert errors.total_pairs == 0
        assert errors.error_rate == 0.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            pairwise_errors([0.1], [1.0, 2.0])

    def test_grouped_accumulation(self):
        labels = [0.2, 0.1, 0.2, 0.1]
        # group 0 correct, group 1 wrong
        predicted = [2.0, 1.0, 1.0, 2.0]
        groups = [0, 0, 1, 1]
        errors = grouped_errors(labels, predicted, groups)
        assert errors.error_rate == pytest.approx(0.5)

    def test_addition_identity(self):
        from repro.metrics import EMPTY_ERRORS

        errors = pairwise_errors(CTRS, R1_SCORES)
        combined = EMPTY_ERRORS + errors
        assert combined.weighted_error_rate == errors.weighted_error_rate

    @given(
        st.lists(st.floats(0, 1), min_size=2, max_size=8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_random_ranking_expected_half(self, labels, seed):
        """Error rate of a random ranking averages ~50% over many draws."""
        labels = np.asarray(labels)
        if np.unique(labels).size < 2:
            return
        rng = np.random.default_rng(seed)
        rates = [
            pairwise_errors(labels, rng.random(labels.size)).error_rate
            for __ in range(60)
        ]
        assert abs(float(np.mean(rates)) - 0.5) < 0.25

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=10))
    @settings(max_examples=30)
    def test_error_rate_bounds(self, labels):
        labels = np.asarray(labels)
        predicted = np.arange(labels.size, dtype=float)
        errors = pairwise_errors(labels, predicted)
        assert 0.0 <= errors.error_rate <= 1.0
        assert 0.0 <= errors.weighted_error_rate <= 1.0


class TestBucketizer:
    def test_monotone(self):
        bucketizer = CTRBucketizer().fit(np.linspace(0, 0.2, 500))
        assert bucketizer.bucket(0.0) <= bucketizer.bucket(0.1) <= bucketizer.bucket(0.2)

    def test_range(self):
        bucketizer = CTRBucketizer().fit(np.linspace(0, 0.2, 500))
        assert bucketizer.bucket(-1.0) == 0
        assert bucketizer.bucket(1.0) == 1000

    def test_judgment_scale(self):
        bucketizer = CTRBucketizer().fit(np.linspace(0, 0.2, 500))
        assert 0.0 <= bucketizer.judgment(0.13) <= 10.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CTRBucketizer().bucket(0.5)

    def test_quantile_semantics(self):
        # half the population below 0.1 -> bucket ~500
        population = [0.05] * 500 + [0.15] * 500
        bucketizer = CTRBucketizer().fit(population)
        assert bucketizer.bucket(0.1) == pytest.approx(500, abs=10)


class TestNdcgMechanics:
    def test_perfect_is_one(self):
        judgments = np.array([3.0, 2.0, 1.0])
        assert ndcg_at_k(judgments, np.array([9.0, 5.0, 1.0]), 3) == pytest.approx(1.0)

    def test_all_zero_judgments(self):
        assert ndcg_at_k(np.zeros(3), np.array([1.0, 2.0, 3.0]), 2) == 1.0

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for __ in range(50):
            judgments = rng.random(5) * 10
            predicted = rng.random(5)
            value = ndcg_at_k(judgments, predicted, 3)
            assert 0.0 <= value <= 1.0 + 1e-12

    def test_mean_ndcg_groups(self):
        judgments = [3.0, 1.0, 3.0, 1.0]
        predicted = [2.0, 1.0, 1.0, 2.0]  # group 0 perfect, group 1 inverted
        groups = [0, 0, 1, 1]
        value = mean_ndcg(judgments, predicted, groups, k=1)
        per_group_bad = (2**1.0 - 1) / (2**3.0 - 1)
        assert value == pytest.approx((1.0 + per_group_bad) / 2)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            ndcg_at_k([1.0], [1.0, 2.0], 1)
