"""Tests for the columnar arena, vectorized scoring, and decode cache.

The golden requirement: the vectorized arena lookups must reproduce the
seed per-element loop *byte-identically* — same dequantize arithmetic,
same left-to-right accumulation order — so every comparison here is
exact equality, never approx.
"""

import numpy as np
import pytest

from repro.features import RelevanceModel
from repro.features.quantize import dequantize
from repro.runtime import (
    BitReader,
    BitWriter,
    CompressedRelevanceStore,
    GlobalTidTable,
    PackedRelevanceStore,
    PhraseArena,
    as_tid_context,
    golomb_decode,
    golomb_decode_array,
    golomb_encode,
    sorted_membership,
    unpack_fixed_width,
    unpack_pair,
)
from repro.runtime.tid import MAX_SCORE_CODE, MAX_TID, SCORE_BITS, pack_pair


def synthetic_model(concepts=40, vocabulary=300, terms_per=25, seed=7):
    """A randomized relevance model with shared terms across concepts."""
    rng = np.random.default_rng(seed)
    entries = {}
    for index in range(concepts):
        count = int(rng.integers(1, terms_per + 1))
        term_ids = rng.choice(vocabulary, size=count, replace=False)
        entries[f"concept {index}"] = tuple(
            (f"term{tid}", float(rng.uniform(0.01, 80.0))) for tid in term_ids
        )
    entries["empty concept"] = ()
    return RelevanceModel(entries)


def seed_score(store, phrase, context_tids):
    """The seed implementation: per-element unpack + scalar accumulation."""
    total = 0.0
    for packed in store.packed(phrase).tolist():
        tid, code = unpack_pair(packed)
        if tid in context_tids:
            total += dequantize(code, store.score_max, SCORE_BITS)
    return total


def random_contexts(store, rng, count=12):
    """TID subsets of varying density, incl. empty and full."""
    universe = sorted(tid for __, tid in store.tid_table.items())
    contexts = [set(), set(universe)]
    for __ in range(count):
        size = int(rng.integers(1, max(2, len(universe))))
        contexts.append(set(rng.choice(universe, size=size, replace=False).tolist()))
    return contexts


class TestPhraseArena:
    def test_from_segments_layout(self):
        arena = PhraseArena.from_segments(
            [
                ("a", np.asarray([5, 9], dtype=np.uint32)),
                ("b", np.zeros(0, dtype=np.uint32)),
                ("c", np.asarray([1], dtype=np.uint32)),
            ]
        )
        assert arena.pairs.tolist() == [5, 9, 1]
        assert arena.offsets.tolist() == [0, 2, 2, 3]
        assert arena.phrases == ["a", "b", "c"]
        assert arena.rows == {"a": 0, "b": 1, "c": 2}
        assert arena.segment(0).tolist() == [5, 9]
        assert arena.segment(1).size == 0
        assert arena.pair_count == 3

    def test_empty_arena(self):
        arena = PhraseArena.from_segments([])
        assert arena.pair_count == 0
        assert arena.phrases == []
        assert arena.offsets.tolist() == [0]

    def test_gather_flattens_requested_rows(self):
        arena = PhraseArena.from_segments(
            [
                ("a", np.asarray([10, 11], dtype=np.uint32)),
                ("b", np.asarray([20], dtype=np.uint32)),
                ("c", np.asarray([30, 31, 32], dtype=np.uint32)),
            ]
        )
        values, bounds = arena.gather(np.asarray([2, 0], dtype=np.int64))
        assert values.tolist() == [30, 31, 32, 10, 11]
        assert bounds.tolist() == [3, 5]

    def test_gather_with_empty_rows(self):
        arena = PhraseArena.from_segments(
            [
                ("a", np.zeros(0, dtype=np.uint32)),
                ("b", np.asarray([7], dtype=np.uint32)),
            ]
        )
        values, bounds = arena.gather(np.asarray([0, 1, 0], dtype=np.int64))
        assert values.tolist() == [7]
        assert bounds.tolist() == [0, 1, 1]


class TestContextNormalization:
    def test_none_and_empty(self):
        assert as_tid_context(None) is None
        assert as_tid_context(set()) is None
        assert as_tid_context(np.zeros(0, dtype=np.uint32)) is None

    def test_set_becomes_sorted_array(self):
        ctx = as_tid_context({9, 2, 5})
        assert ctx.tolist() == [2, 5, 9]
        assert ctx.dtype == np.uint32

    def test_array_passes_through(self):
        source = np.asarray([1, 4, 6], dtype=np.uint32)
        assert as_tid_context(source) is source

    def test_sorted_membership(self):
        ctx = np.asarray([2, 5, 9], dtype=np.uint32)
        tids = np.asarray([1, 2, 5, 8, 9, 11], dtype=np.uint32)
        assert sorted_membership(ctx, tids).tolist() == [
            False, True, True, False, True, False,
        ]

    def test_membership_above_context_max(self):
        # positions past the end of the context must not wrap into hits
        ctx = np.asarray([3], dtype=np.uint32)
        tids = np.asarray([3, 4, 1000], dtype=np.uint32)
        assert sorted_membership(ctx, tids).tolist() == [True, False, False]


class TestPackPairBoundaries:
    def test_max_tid_round_trips(self):
        packed = pack_pair(MAX_TID, MAX_SCORE_CODE)
        assert packed == 0xFFFFFFFF
        assert unpack_pair(packed) == (MAX_TID, MAX_SCORE_CODE)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_pair(MAX_TID + 1, 0)
        with pytest.raises(ValueError):
            pack_pair(0, MAX_SCORE_CODE + 1)


class TestGoldenScoring:
    """Vectorized paths must equal the seed loop exactly (==, no approx)."""

    @pytest.fixture(scope="class")
    def packed_store(self):
        return PackedRelevanceStore.build(synthetic_model())

    def test_score_matches_seed_loop_exactly(self, packed_store):
        rng = np.random.default_rng(11)
        phrases = packed_store.phrases() + ["unknown phrase"]
        for context in random_contexts(packed_store, rng):
            for phrase in phrases:
                expected = seed_score(packed_store, phrase, context)
                assert packed_store.score(phrase, context) == expected

    def test_score_many_matches_score_exactly(self, packed_store):
        rng = np.random.default_rng(13)
        phrases = packed_store.phrases() + ["unknown phrase", "empty concept"]
        for context in random_contexts(packed_store, rng):
            batch = packed_store.score_many(phrases, context)
            for phrase, value in zip(phrases, batch.tolist()):
                assert value == packed_store.score(phrase, context)

    def test_array_and_set_contexts_agree(self, packed_store):
        context = {tid for __, tid in list(packed_store.tid_table.items())[::2]}
        ctx_array = as_tid_context(context)
        for phrase in packed_store.phrases():
            assert packed_store.score(phrase, context) == packed_store.score(
                phrase, ctx_array
            )

    def test_compressed_matches_seed_loop_exactly(self, packed_store):
        compressed = CompressedRelevanceStore.from_packed(packed_store)
        rng = np.random.default_rng(17)
        for context in random_contexts(packed_store, rng, count=6):
            for phrase in packed_store.phrases():
                assert compressed.score(phrase, context) == seed_score(
                    packed_store, phrase, context
                )

    def test_mutation_after_finalize(self, packed_store):
        store = PackedRelevanceStore.build(synthetic_model(concepts=5))
        store.score("concept 0", {0, 1})  # finalize the arena
        store.add("late arrival", (("term0", 3.0), ("brandnew", 1.0)))
        context = {store.tid_table.lookup("term0")}
        assert "late arrival" in store
        assert store.score("late arrival", context) == seed_score(
            store, "late arrival", context
        )


class TestGolombBlockwise:
    def test_round_trip_random_sequences(self):
        rng = np.random.default_rng(3)
        for __ in range(25):
            count = int(rng.integers(1, 120))
            values = np.unique(rng.integers(0, 50_000, size=count)).tolist()
            payload, m = golomb_encode(values)
            assert golomb_decode(payload, len(values), m) == values
            assert golomb_decode_array(payload, len(values), m).tolist() == values

    def test_writer_matches_bit_at_a_time_reference(self):
        rng = np.random.default_rng(5)
        fields = [
            (int(rng.integers(0, 1 << width)), width)
            for width in rng.integers(1, 30, size=60).tolist()
        ]
        writer = BitWriter()
        reference_bits = []
        for value, width in fields:
            writer.write_bits(value, width)
            reference_bits.extend((value >> i) & 1 for i in range(width - 1, -1, -1))
        while len(reference_bits) % 8:
            reference_bits.append(0)
        reference = bytes(
            int("".join(map(str, reference_bits[i : i + 8])), 2)
            for i in range(0, len(reference_bits), 8)
        )
        assert writer.getvalue() == reference

    def test_reader_round_trips_writer(self):
        rng = np.random.default_rng(9)
        fields = [
            (int(rng.integers(0, 1 << width)), width)
            for width in rng.integers(1, 40, size=80).tolist()
        ]
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_bits(width) == value

    def test_unary_long_runs(self):
        writer = BitWriter()
        lengths = [0, 1, 7, 31, 32, 33, 100, 257]
        for length in lengths:
            writer.write_unary(length)
        reader = BitReader(writer.getvalue())
        for length in lengths:
            assert reader.read_unary() == length

    def test_exhausted_reader_raises(self):
        reader = BitReader(b"\x00")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_unpack_fixed_width_matches_reader(self):
        rng = np.random.default_rng(21)
        codes = rng.integers(0, 1 << SCORE_BITS, size=57).tolist()
        writer = BitWriter()
        for code in codes:
            writer.write_bits(code, SCORE_BITS)
        payload = writer.getvalue()
        assert unpack_fixed_width(payload, len(codes), SCORE_BITS).tolist() == codes
        reader = BitReader(payload)
        assert [reader.read_bits(SCORE_BITS) for __ in codes] == codes

    def test_unpack_fixed_width_empty(self):
        assert unpack_fixed_width(b"", 0, SCORE_BITS).size == 0


class TestDecodeCache:
    def make_store(self, cache_size=2):
        packed = PackedRelevanceStore.build(synthetic_model(concepts=6))
        return (
            CompressedRelevanceStore.from_packed(packed, cache_size=cache_size),
            packed,
        )

    def test_hits_and_misses_counted(self):
        store, packed = self.make_store(cache_size=8)
        context = {tid for __, tid in packed.tid_table.items()}
        store.score("concept 0", context)
        store.score("concept 0", context)
        store.score("concept 1", context)
        info = store.cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 1
        assert info["size"] == 2

    def test_lru_eviction_at_capacity(self):
        store, packed = self.make_store(cache_size=2)
        context = {tid for __, tid in packed.tid_table.items()}
        store.score("concept 0", context)
        store.score("concept 1", context)
        store.score("concept 2", context)  # evicts concept 0
        assert store.cache_info()["size"] == 2
        store.score("concept 0", context)  # miss again
        assert store.cache_info()["misses"] == 4

    def test_cache_disabled(self):
        store, packed = self.make_store(cache_size=0)
        context = {tid for __, tid in packed.tid_table.items()}
        first = store.score("concept 0", context)
        assert store.score("concept 0", context) == first
        info = store.cache_info()
        assert info["size"] == 0
        assert info["hits"] == 0
        assert info["misses"] == 2

    def test_add_invalidates_cached_entry(self):
        store, packed = self.make_store(cache_size=4)
        context = {tid for __, tid in packed.tid_table.items()}
        store.score("concept 0", context)
        store.add("concept 0", (("term0", 5.0),))
        tid = store.tid_table.lookup("term0")
        expected = dequantize(
            round(5.0 / store.score_max * MAX_SCORE_CODE), store.score_max, SCORE_BITS
        )
        assert store.score("concept 0", {tid}) == expected


class TestBuildVersusFromPacked:
    """Satellite: the two compressed-store construction paths agree."""

    def test_scores_identical(self):
        model = synthetic_model(concepts=20, seed=23)
        packed = PackedRelevanceStore.build(model)
        direct = CompressedRelevanceStore.build(model)
        converted = CompressedRelevanceStore.from_packed(packed)
        assert converted.score_max == packed.score_max
        assert direct.score_max == packed.score_max
        assert len(direct) == len(converted)
        rng = np.random.default_rng(29)
        for context in random_contexts(packed, rng, count=8):
            for phrase in packed.phrases():
                ctx = set(context)
                assert direct.score(phrase, ctx) == converted.score(phrase, ctx)

    def test_build_skips_peak_scan_when_given(self):
        model = synthetic_model(concepts=8, seed=31)
        packed = PackedRelevanceStore.build(model)
        reused = CompressedRelevanceStore.build(model, score_max=packed.score_max)
        assert reused.score_max == packed.score_max
