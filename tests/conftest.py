"""Shared fixtures: one small synthetic environment for the whole suite.

Building a world, query log, unit lexicon, search engine, and detectors
takes a couple of seconds; session scope keeps the suite fast.
"""

import numpy as np
import pytest

from repro.corpus import SyntheticWorld, WorldConfig
from repro.detection import (
    ConceptDetector,
    ConceptVectorScorer,
    NamedEntityDetector,
    ShortcutsPipeline,
    detectable_concept_phrases,
)
from repro.querylog import UnitMiner, query_log_for_world
from repro.search import PrismaTool, SearchEngine, SnippetService, SuggestionService

ENV_CONFIG = WorldConfig(
    seed=21,
    vocabulary_size=2000,
    topic_count=24,
    words_per_topic=50,
    concept_count=220,
    topic_page_count=150,
)


@pytest.fixture(scope="session")
def env_world():
    return SyntheticWorld.build(ENV_CONFIG)


@pytest.fixture(scope="session")
def env_log(env_world):
    return query_log_for_world(env_world)


@pytest.fixture(scope="session")
def env_lexicon(env_log):
    return UnitMiner().mine(env_log)


@pytest.fixture(scope="session")
def env_engine(env_world):
    return SearchEngine.from_corpus(env_world.web_corpus)


@pytest.fixture(scope="session")
def env_snippets(env_engine):
    return SnippetService(env_engine)


@pytest.fixture(scope="session")
def env_prisma(env_engine):
    return PrismaTool(env_engine)


@pytest.fixture(scope="session")
def env_suggestions(env_log):
    return SuggestionService(env_log)


@pytest.fixture(scope="session")
def env_detectable(env_world, env_lexicon, env_log):
    return detectable_concept_phrases(
        (tuple(c.terms) for c in env_world.concepts), env_lexicon, env_log
    )


@pytest.fixture(scope="session")
def env_concept_detector(env_detectable, env_lexicon):
    return ConceptDetector(env_detectable, env_lexicon)


@pytest.fixture(scope="session")
def env_scorer(env_world, env_lexicon):
    return ConceptVectorScorer(env_world.doc_frequency, env_lexicon)


@pytest.fixture(scope="session")
def env_pipeline(env_concept_detector, env_scorer, env_world):
    return ShortcutsPipeline(
        env_concept_detector,
        env_scorer,
        named_detector=NamedEntityDetector(env_world.dictionary),
    )


@pytest.fixture(scope="session")
def env_stories(env_world):
    return env_world.story_generator(seed=2).generate_many(40)


@pytest.fixture(scope="session")
def env_stemmed_df(env_world):
    from repro.features import build_stemmed_df

    return build_stemmed_df(doc.text for doc in env_world.web_corpus)


@pytest.fixture(scope="session")
def env_miner(env_snippets, env_prisma, env_suggestions, env_stemmed_df):
    from repro.features import RelevantKeywordMiner

    return RelevantKeywordMiner(
        env_snippets, env_prisma, env_suggestions, env_stemmed_df
    )


@pytest.fixture(scope="session")
def env_extractor(env_log, env_lexicon, env_engine, env_world):
    from repro.features import InterestingnessExtractor

    return InterestingnessExtractor(
        env_log, env_lexicon, env_engine, env_world.dictionary, env_world.wikipedia
    )
