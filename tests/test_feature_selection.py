"""Tests for backward feature elimination (the paper's selection process)."""

import numpy as np
import pytest

from repro.features import backward_eliminate
from repro.ranking import RankSVM


def make_data(n_groups=30, per_group=5, seed=0, noise_features=3):
    """Labels depend on two signal features; others are pure noise."""
    rng = np.random.default_rng(seed)
    X, y, g = [], [], []
    for group in range(n_groups):
        signal = rng.normal(size=(per_group, 2))
        noise = rng.normal(size=(per_group, noise_features))
        labels = signal @ np.array([1.0, -0.8]) + rng.normal(
            scale=0.05, size=per_group
        )
        X.append(np.hstack([signal, noise]))
        y.extend(labels)
        g.extend([group] * per_group)
    names = ["signal_a", "signal_b"] + [f"noise_{i}" for i in range(noise_features)]
    return np.vstack(X), np.asarray(y), np.asarray(g), names


class TestBackwardElimination:
    def test_keeps_signal_features(self):
        X, y, g, names = make_data()
        result = backward_eliminate(
            X, y, g, names, folds=3,
            make_model=lambda: RankSVM(epochs=80),
        )
        assert "signal_a" in result.selected
        assert "signal_b" in result.selected

    def test_error_never_increases_along_trace(self):
        X, y, g, names = make_data(seed=1)
        result = backward_eliminate(X, y, g, names, folds=3)
        errors = [step.weighted_error_rate for step in result.steps]
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))

    def test_eliminated_plus_selected_is_everything(self):
        X, y, g, names = make_data(seed=2)
        result = backward_eliminate(X, y, g, names, folds=3)
        assert sorted(result.eliminated + result.selected) == sorted(names)

    def test_min_features_respected(self):
        X, y, g, names = make_data(seed=3)
        result = backward_eliminate(
            X, y, g, names, folds=2, min_features=4,
            # force aggressive elimination
            min_improvement=-1.0,
        )
        assert len(result.selected) >= 4

    def test_misaligned_names_rejected(self):
        X, y, g, names = make_data()
        with pytest.raises(ValueError):
            backward_eliminate(X, y, g, names[:-1])

    def test_deterministic(self):
        X, y, g, names = make_data(seed=4)
        a = backward_eliminate(X, y, g, names, folds=3)
        b = backward_eliminate(X, y, g, names, folds=3)
        assert a.selected == b.selected
        assert a.final_error == b.final_error

    def test_empty_result_defaults(self):
        from repro.features import SelectionResult

        result = SelectionResult()
        assert result.selected == ()
        assert result.eliminated == ()
        assert result.final_error == 1.0
