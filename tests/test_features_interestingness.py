"""Tests for the Table I interestingness feature space."""

import numpy as np
import pytest

from repro.corpus.concepts import TAXONOMY_TYPES
from repro.features import (
    FEATURE_GROUPS,
    FEATURE_NAMES,
    numeric_feature_names,
)


class TestFeatureInventory:
    def test_nine_features(self):
        assert len(FEATURE_NAMES) == 9

    def test_groups_partition_features(self):
        grouped = [name for group in FEATURE_GROUPS.values() for name in group]
        assert sorted(grouped) == sorted(FEATURE_NAMES)

    def test_paper_group_names(self):
        assert set(FEATURE_GROUPS) == {
            "query_logs",
            "search_results",
            "text_based",
            "taxonomy",
            "other",
        }


class TestExtraction:
    def test_extract_known_concept(self, env_world, env_extractor, env_log):
        concept = max(
            (c for c in env_world.concepts if not c.is_junk),
            key=lambda c: env_log.freq_exact(c.terms),
        )
        vector = env_extractor.extract(concept.phrase)
        assert vector.freq_exact == env_log.freq_exact(concept.terms)
        assert vector.freq_phrase_contained >= vector.freq_exact
        assert vector.concept_size == len(concept.terms)
        assert vector.number_of_chars == len(concept.phrase)

    def test_named_entity_gets_type(self, env_world, env_extractor):
        named = env_world.named_entities()[0]
        vector = env_extractor.extract(named.phrase)
        assert vector.high_level_type == named.taxonomy_type

    def test_abstract_concept_has_no_type(self, env_world, env_extractor):
        abstract = next(
            c
            for c in env_world.concepts
            if not c.is_named_entity and not c.is_junk
        )
        vector = env_extractor.extract(abstract.phrase)
        assert vector.high_level_type is None

    def test_wiki_count_matches_store(self, env_world, env_extractor):
        concept = next(
            c for c in env_world.concepts if c.phrase in env_world.wikipedia
        )
        vector = env_extractor.extract(concept.phrase)
        assert vector.wiki_word_count == env_world.wikipedia.word_count(
            concept.phrase
        )

    def test_unknown_phrase_all_low(self, env_extractor):
        vector = env_extractor.extract("zzzzz qqqqq")
        assert vector.freq_exact == 0
        assert vector.searchengine_phrase == 0
        assert vector.wiki_word_count == 0
        assert vector.unit_score == 0.0

    def test_interesting_concepts_have_stronger_query_features(
        self, env_world, env_extractor
    ):
        regular = [c for c in env_world.concepts if not c.is_junk]
        hot = [c for c in regular if c.interestingness > 0.6]
        dull = [c for c in regular if c.interestingness < 0.1]
        assert hot and dull
        hot_freq = np.mean(
            [env_extractor.extract(c.phrase).freq_exact for c in hot]
        )
        dull_freq = np.mean(
            [env_extractor.extract(c.phrase).freq_exact for c in dull]
        )
        assert hot_freq > dull_freq

    def test_extract_many(self, env_world, env_extractor):
        phrases = [c.phrase for c in env_world.concepts[:5]]
        vectors = env_extractor.extract_many(phrases)
        assert [v.phrase for v in vectors] == [p.lower() for p in phrases]


class TestNumericEncoding:
    def test_full_width(self, env_world, env_extractor):
        vector = env_extractor.extract(env_world.concepts[0].phrase)
        numeric = vector.numeric()
        # 8 numeric features + one-hot(len(types)+1)
        assert numeric.shape == (8 + len(TAXONOMY_TYPES) + 1,)
        assert numeric.shape[0] == len(numeric_feature_names())

    def test_one_hot_exactly_one(self, env_world, env_extractor):
        vector = env_extractor.extract(env_world.concepts[0].phrase)
        names = numeric_feature_names()
        numeric = vector.numeric()
        one_hot = [
            value
            for name, value in zip(names, numeric)
            if name.startswith("type:")
        ]
        assert sum(one_hot) == pytest.approx(1.0)

    def test_exclude_group_drops_columns(self, env_world, env_extractor):
        vector = env_extractor.extract(env_world.concepts[0].phrase)
        full = vector.numeric()
        without_logs = vector.numeric(exclude_groups=["query_logs"])
        assert without_logs.shape[0] == full.shape[0] - 3
        assert len(numeric_feature_names(["query_logs"])) == without_logs.shape[0]

    def test_exclude_taxonomy_drops_one_hot(self, env_world, env_extractor):
        vector = env_extractor.extract(env_world.concepts[0].phrase)
        without = vector.numeric(exclude_groups=["taxonomy"])
        assert without.shape[0] == 8

    def test_counts_log_compressed(self, env_world, env_extractor, env_log):
        concept = max(
            (c for c in env_world.concepts),
            key=lambda c: env_log.freq_exact(c.terms),
        )
        vector = env_extractor.extract(concept.phrase)
        numeric = vector.numeric()
        names = numeric_feature_names()
        freq_col = names.index("freq_exact")
        assert numeric[freq_col] == pytest.approx(np.log1p(vector.freq_exact))


class TestSubconcepts:
    def test_subconcepts_counted_for_trigrams(self, env_extractor, env_lexicon):
        trigram_units = [
            u for u in env_lexicon.multi_term_units() if len(u.terms) == 3
        ]
        if not trigram_units:
            pytest.skip("no trigram units in this seed")
        # a trigram whose bigram prefix is also a strong unit
        for unit in trigram_units:
            prefix = unit.terms[:2]
            if env_lexicon.score(prefix) > 0.25:
                vector = env_extractor.extract(" ".join(unit.terms))
                assert vector.subconcepts >= 1
                return
        pytest.skip("no strong bigram sub-unit found")

    def test_single_term_has_no_subconcepts(self, env_world, env_extractor):
        single = next(c for c in env_world.concepts if len(c.terms) == 1)
        assert env_extractor.extract(single.phrase).subconcepts == 0
