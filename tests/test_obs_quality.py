"""Model-quality monitors: CTR by position, rank churn, feature drift."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.clicks import OnlineCtrTracker
from repro.obs import MetricsRegistry
from repro.obs.quality import (
    DriftBaseline,
    DriftDetector,
    QualityMonitor,
    baseline_from_manifest,
    load_baseline,
)


def _entity(phrase, baseline_score, views, clicks):
    return SimpleNamespace(
        phrase=phrase, baseline_score=baseline_score, views=views,
        clicks=clicks,
    )


def _report(*entities):
    return SimpleNamespace(entities=list(entities))


class TestQualityMonitor:
    def test_ctr_by_position_orders_by_baseline_score(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(registry=registry, positions=3)
        # entity order in the report is scrambled; position comes from
        # the production score, matching what users saw
        monitor.observe_report(_report(
            _entity("low", 0.1, 100, 1),
            _entity("top", 0.9, 100, 20),
            _entity("mid", 0.5, 100, 5),
        ))
        assert monitor.ctr_at(0) == pytest.approx(0.20)
        assert monitor.ctr_at(1) == pytest.approx(0.05)
        assert monitor.ctr_at(2) == pytest.approx(0.01)

    def test_sliding_window_forgets(self):
        monitor = QualityMonitor(registry=MetricsRegistry(), window=2)
        monitor.observe_report(_report(_entity("a", 1.0, 100, 50)))
        monitor.observe_report(_report(_entity("a", 1.0, 100, 0)))
        monitor.observe_report(_report(_entity("a", 1.0, 100, 0)))
        assert monitor.ctr_at(0) == 0.0  # the hot report slid out

    def test_counters_and_global_ctr(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(registry=registry)
        monitor.observe_report(_report(
            _entity("a", 1.0, 200, 10), _entity("b", 0.5, 200, 0),
        ))
        snap = registry.snapshot()
        assert snap["quality_reports_total"]["series"][0]["value"] == 1
        assert snap["quality_views_total"]["series"][0]["value"] == 400
        assert snap["quality_clicks_total"]["series"][0]["value"] == 10
        assert snap["quality_ctr"]["series"][0]["value"] == pytest.approx(
            10 / 400
        )

    def test_tracker_receives_every_report(self):
        tracker = OnlineCtrTracker()
        monitor = QualityMonitor(registry=MetricsRegistry(), tracker=tracker)
        monitor.observe_report(_report(_entity("cuba", 1.0, 300, 30)))
        assert tracker.views("cuba") == pytest.approx(300, rel=0.01)

    def test_churn_zero_for_identical_rankings(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(registry=registry)
        monitor.observe_ranking(["a", "b", "c"], [3.0, 2.0, 1.0])
        monitor.observe_ranking(["a", "b", "c"], [3.0, 2.0, 1.0])
        snap = registry.snapshot()
        assert snap["rank_churn_last"]["series"][0]["value"] == 0.0
        assert snap["rank_churn"]["series"][0]["count"] == 1  # first has no peer

    def test_churn_one_for_reversal(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(registry=registry)
        monitor.observe_ranking(["a", "b", "c"], [3.0, 2.0, 1.0])
        monitor.observe_ranking(["c", "b", "a"], [3.0, 2.0, 1.0])
        assert (
            registry.snapshot()["rank_churn_last"]["series"][0]["value"] == 1.0
        )

    def test_churn_ignores_disjoint_rankings(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(registry=registry)
        monitor.observe_ranking(["a", "b"], [2.0, 1.0])
        monitor.observe_ranking(["x", "y"], [2.0, 1.0])
        # fewer than two shared phrases: nothing comparable, no sample
        assert registry.snapshot()["rank_churn"]["series"][0]["count"] == 0

    def test_churn_partial_overlap(self):
        assert QualityMonitor._churn(
            {"a": 0, "b": 1, "c": 2}, {"b": 0, "a": 1, "d": 2}
        ) == 1.0  # the one shared pair (a, b) flipped
        assert QualityMonitor._churn({"a": 0}, {"a": 0}) is None

    def test_score_distribution_recorded(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(registry=registry)
        monitor.observe_ranking(["a", "b"], [0.2, -0.7])
        series = registry.snapshot()["rank_score"]["series"][0]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(-0.5)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            QualityMonitor(registry=MetricsRegistry(), positions=0)
        with pytest.raises(ValueError):
            QualityMonitor(registry=MetricsRegistry(), churn_depth=1)


class TestDriftBaseline:
    def test_from_matrix_and_round_trip(self):
        matrix = np.array([[1.0, 10.0], [3.0, 30.0]])
        baseline = DriftBaseline.from_matrix(["a", "b"], matrix)
        assert baseline.count == 2
        np.testing.assert_allclose(baseline.mean, [2.0, 20.0])
        payload = json.loads(json.dumps(baseline.as_dict()))
        restored = DriftBaseline.from_dict(payload)
        assert restored.names == ("a", "b")
        np.testing.assert_allclose(restored.mean, baseline.mean)
        np.testing.assert_allclose(restored.std, baseline.std)

    def test_from_matrix_shape_mismatch(self):
        with pytest.raises(ValueError):
            DriftBaseline.from_matrix(["a"], np.zeros((3, 2)))

    def test_from_dict_none(self):
        assert DriftBaseline.from_dict(None) is None
        assert DriftBaseline.from_dict({}) is None

    def test_manifest_helpers_tolerate_old_packs(self, tmp_path):
        assert baseline_from_manifest(None) is None
        assert baseline_from_manifest({"mode": "fast"}) is None
        assert load_baseline(tmp_path) is None  # no manifest.json at all
        (tmp_path / "manifest.json").write_text(json.dumps({"mode": "fast"}))
        assert load_baseline(tmp_path) is None
        (tmp_path / "manifest.json").write_text(json.dumps({
            "feature_baselines": {
                "names": ["a"], "mean": [0.0], "std": [1.0], "count": 5,
            }
        }))
        baseline = load_baseline(tmp_path)
        assert baseline.names == ("a",)
        assert baseline.count == 5

    def test_from_store_matches_dequantized_values(
        self, env_world, env_extractor
    ):
        from repro.runtime import QuantizedInterestingnessStore

        phrases = [c.phrase for c in env_world.concepts[:40]]
        store = QuantizedInterestingnessStore.build(env_extractor, phrases)
        baseline = DriftBaseline.from_store(store)
        manual = np.vstack(
            [store.extract(p).numeric(()) for p in store.phrases()]
        )
        np.testing.assert_allclose(baseline.mean, manual.mean(axis=0))
        assert baseline.count == len(store.phrases())
        assert len(baseline.names) == manual.shape[1]


def _unit_baseline(names):
    return DriftBaseline(
        names=tuple(names),
        mean=np.zeros(len(names)),
        std=np.ones(len(names)),
        count=100,
    )


class TestDriftDetector:
    def _detector(self, registry=None, **kwargs):
        kwargs.setdefault("min_observations", 8)
        kwargs.setdefault("check_every", 4)
        return DriftDetector(
            _unit_baseline(["f0", "f1"]),
            feature_names=["f0", "f1", "relevance"],
            registry=registry or MetricsRegistry(),
            **kwargs,
        )

    def test_bind_skips_unknown_columns(self):
        detector = self._detector()
        assert detector.unmonitored == ("relevance",)
        assert [
            detector.baseline.names[b] for __, b in detector._columns
        ] == ["f0", "f1"]

    def test_in_distribution_does_not_alert(self):
        registry = MetricsRegistry()
        detector = self._detector(registry)
        rng = np.random.default_rng(0)
        for __ in range(10):
            matrix = np.concatenate(
                [rng.normal(size=(4, 2)), np.zeros((4, 1))], axis=1
            )
            detector.observe(matrix)
        assert detector.drifted_features() == []
        snap = registry.snapshot()
        alerts = sum(
            s["value"]
            for s in snap["feature_drift_alerts_total"]["series"]
        )
        assert alerts == 0

    def test_alert_fires_once_per_excursion(self):
        registry = MetricsRegistry()
        # short half-life so recovery/re-excursion converge in-test
        detector = self._detector(
            registry, z_threshold=3.0, half_life_rows=64.0
        )
        shifted = np.tile([5.0, 0.0, 0.0], (4, 1))  # f0 five sigma off
        for __ in range(6):
            detector.observe(shifted)
        assert detector.drifted_features() == ["f0"]

        def alerts():
            return {
                s["labels"]["feature"]: s["value"]
                for s in registry.snapshot()[
                    "feature_drift_alerts_total"
                ]["series"]
            }

        assert alerts() == {"f0": 1.0, "f1": 0.0}
        # staying in drift must NOT re-alert
        for __ in range(6):
            detector.observe(shifted)
        assert alerts()["f0"] == 1.0
        # recovery clears the state ...
        recovered = np.zeros((4, 3))
        for __ in range(100):
            detector.observe(recovered)
        assert detector.drifted_features() == []
        # ... so the next excursion alerts again
        for __ in range(100):
            detector.observe(shifted)
        assert alerts()["f0"] == 2.0

    def test_min_observations_gates_alerts(self):
        detector = self._detector(min_observations=1000)
        shifted = np.tile([9.0, 0.0, 0.0], (4, 1))
        for __ in range(10):
            detector.observe(shifted)
        # z-score is huge but the evidence mass is below the gate
        assert abs(detector.check()["f0"]) > 3.0
        assert detector.drifted_features() == []

    def test_decay_forgets_old_distribution(self):
        detector = self._detector(half_life_rows=8.0)
        shifted = np.tile([9.0, 0.0, 0.0], (4, 1))
        for __ in range(10):
            detector.observe(shifted)
        assert detector.drifted_features() == ["f0"]
        for __ in range(50):
            detector.observe(np.zeros((4, 3)))
        assert detector.drifted_features() == []

    def test_zscore_gauges_and_status(self):
        registry = MetricsRegistry()
        detector = self._detector(registry)
        detector.observe(np.tile([2.0, -1.0, 0.0], (8, 1)))
        status = detector.status()
        assert status["monitored"] == ["f0", "f1"]
        assert status["unmonitored"] == ["relevance"]
        assert status["zscores"]["f0"] == pytest.approx(2.0)
        assert status["zscores"]["f1"] == pytest.approx(-1.0)
        json.dumps(status)  # /readyz payload must be JSON-ready
        gauges = {
            s["labels"]["feature"]: s["value"]
            for s in registry.snapshot()["feature_drift_zscore"]["series"]
        }
        assert gauges["f0"] == pytest.approx(2.0)

    def test_near_zero_std_column_is_stable(self):
        baseline = DriftBaseline(
            names=("flat",), mean=np.array([1.0]), std=np.array([0.0]),
            count=10,
        )
        detector = DriftDetector(
            baseline, feature_names=["flat"], registry=MetricsRegistry(),
            min_observations=1, check_every=1,
        )
        detector.observe(np.ones((4, 1)))
        assert np.isfinite(detector.check()["flat"])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DriftDetector(_unit_baseline(["a"]), z_threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(_unit_baseline(["a"]), check_every=0)

    def test_empty_matrix_and_unbound_are_noops(self):
        detector = DriftDetector(
            _unit_baseline(["a"]), registry=MetricsRegistry()
        )
        detector.observe(np.zeros((3, 1)))  # not bound yet: ignored
        assert detector.check() == {}
        detector.bind(["a"])
        detector.observe(np.zeros((0, 1)))  # zero rows: ignored
        assert detector.status()["rows_observed"] == 0


class TestServiceQualityWiring:
    @pytest.fixture(scope="class")
    def serving(self, env_world, env_extractor, env_miner, env_pipeline):
        from repro.features import RelevanceModel
        from repro.ranking import RankSVM
        from repro.runtime import (
            PackedRelevanceStore,
            QuantizedInterestingnessStore,
        )

        phrases = [c.phrase for c in env_world.concepts]
        interestingness = QuantizedInterestingnessStore.build(
            env_extractor, phrases
        )
        relevance = PackedRelevanceStore.build(
            RelevanceModel.mine_all(env_miner, phrases[:30])
        )
        svm = RankSVM(epochs=30)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 16))
        svm.fit(X, X[:, 0], np.repeat(np.arange(8), 5))
        return env_pipeline, interestingness, relevance, svm

    def test_service_feeds_quality_and_drift(self, serving, env_stories):
        from repro.obs import Tracer
        from repro.runtime import RankerService

        pipeline, interestingness, relevance, svm = serving
        registry = MetricsRegistry()
        quality = QualityMonitor(registry=registry)
        baseline = DriftBaseline.from_store(interestingness)
        drift = DriftDetector(
            baseline, registry=registry, min_observations=1, check_every=1
        )
        service = RankerService(
            pipeline, interestingness, relevance, svm,
            registry=registry, tracer=Tracer(sample_every=0),
            quality=quality, drift=drift,
        )
        # the serving relevance column has no build-time distribution
        assert drift.unmonitored == ("relevance",)
        results = service.process_batch(
            [s.text for s in env_stories[:4]], top=5
        )
        snap = registry.snapshot()
        assert snap["quality_rankings_total"]["series"][0]["value"] == sum(
            1 for r in results if r
        )
        assert snap["feature_drift_rows_total"]["series"][0]["value"] > 0
        assert drift.status()["rows_observed"] > 0

    def test_results_identical_with_and_without_monitors(
        self, serving, env_stories
    ):
        from repro.obs import Tracer
        from repro.runtime import RankerService

        pipeline, interestingness, relevance, svm = serving
        baseline = DriftBaseline.from_store(interestingness)
        monitored = RankerService(
            pipeline, interestingness, relevance, svm,
            registry=MetricsRegistry(), tracer=Tracer(sample_every=0),
            quality=QualityMonitor(registry=MetricsRegistry()),
            drift=DriftDetector(baseline, registry=MetricsRegistry()),
        )
        plain = RankerService(
            pipeline, interestingness, relevance, svm,
            registry=MetricsRegistry(), tracer=Tracer(sample_every=0),
        )
        texts = [s.text for s in env_stories[:3]]
        monitored_out = monitored.process_batch(texts, top=5)
        plain_out = plain.process_batch(texts, top=5)
        assert [
            [(d.phrase, d.score) for d in ranked] for ranked in monitored_out
        ] == [[(d.phrase, d.score) for d in ranked] for ranked in plain_out]
