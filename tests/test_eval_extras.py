"""Tests for evaluation extras: extra features, bucket ablation hooks,
per-window scorer evaluation, and the temporal experiment driver."""

import numpy as np
import pytest

from repro.corpus import WorldConfig
from repro.detection import ConceptVectorScorer
from repro.eval import (
    Environment,
    EnvironmentConfig,
    RankingExperiment,
    collect_dataset,
    temporal_feature_experiment,
)

SMALL = EnvironmentConfig(
    world=WorldConfig(
        seed=99,
        vocabulary_size=1500,
        topic_count=18,
        words_per_topic=45,
        concept_count=160,
        topic_page_count=100,
    )
)


@pytest.fixture(scope="module")
def small_env():
    return Environment.build(SMALL)


@pytest.fixture(scope="module")
def small_experiment(small_env):
    dataset = collect_dataset(small_env, 120, story_seed=6)
    return RankingExperiment(small_env, dataset)


class TestExtraFeatures:
    def test_extra_features_change_model(self, small_experiment):
        base = small_experiment.run_model("base")
        # an oracle extra feature: the label itself -> near-perfect model
        oracle = small_experiment._labels_arr[:, None]
        boosted = small_experiment.run_model("oracle", extra_features=oracle)
        assert boosted.weighted_error_rate < base.weighted_error_rate

    def test_misaligned_extra_rejected(self, small_experiment):
        with pytest.raises(ValueError):
            small_experiment.run_model(
                "bad", extra_features=np.zeros((3, 1))
            )

    def test_phrases_property_aligned(self, small_experiment):
        phrases = small_experiment.phrases
        assert len(phrases) == small_experiment.entity_count
        assert all(isinstance(p, str) for p in phrases)


class TestBucketAndScorerHooks:
    def test_ndcg_with_buckets_bounds(self, small_experiment):
        scores = small_experiment.baseline_scores()
        for buckets in (10, 100, 1000):
            value = small_experiment.ndcg_with_buckets(scores, buckets, k=2)
            assert 0.0 <= value <= 1.0 + 1e-12

    def test_baseline_scores_shape(self, small_experiment):
        scores = small_experiment.baseline_scores()
        assert scores.shape == (small_experiment.entity_count,)

    def test_evaluate_per_window_scorer(self, small_env, small_experiment):
        result = small_experiment.evaluate_per_window_scorer(
            "recomputed baseline",
            ConceptVectorScorer(
                small_env.world.doc_frequency, small_env.lexicon
            ),
        )
        assert 0.0 <= result.weighted_error_rate <= 1.0
        # recomputed-on-window baseline should stay informative
        assert result.weighted_error_rate < 0.5

    def test_bonus_off_scorer_differs(self, small_env, small_experiment):
        on = small_experiment.evaluate_per_window_scorer(
            "on",
            ConceptVectorScorer(
                small_env.world.doc_frequency,
                small_env.lexicon,
                multi_term_bonus=True,
            ),
        )
        off = small_experiment.evaluate_per_window_scorer(
            "off",
            ConceptVectorScorer(
                small_env.world.doc_frequency,
                small_env.lexicon,
                multi_term_bonus=False,
            ),
        )
        assert on.weighted_error_rate != off.weighted_error_rate


class TestTemporalExperimentDriver:
    def test_small_run_structure(self, small_env):
        result = temporal_feature_experiment(
            small_env,
            weeks=3,
            stories_per_week=15,
            events_per_week=6.0,
            folds=3,
        )
        assert result.entity_count > 0
        assert 0.0 <= result.static_wer <= 1.0
        assert 0.0 <= result.temporal_wer <= 1.0
        assert 0.0 <= result.event_static_wer <= 1.0
        # improvement properties are well-defined
        assert isinstance(result.improvement_percent, float)
        assert isinstance(result.event_improvement_percent, float)

    def test_deterministic(self, small_env):
        a = temporal_feature_experiment(
            small_env, weeks=2, stories_per_week=10, folds=2, seed=5
        )
        b = temporal_feature_experiment(
            small_env, weeks=2, stories_per_week=10, folds=2, seed=5
        )
        assert a.static_wer == b.static_wer
        assert a.temporal_wer == b.temporal_wer
