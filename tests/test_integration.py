"""Cross-module integration tests and failure injection.

These exercise whole-system paths that unit tests cannot: end-to-end
determinism, live-vs-quantized feature agreement, the runtime service
against the offline ranker, and degenerate configurations.
"""

import numpy as np
import pytest

from repro.clicks import ClickDataset
from repro.corpus import SyntheticWorld, WorldConfig
from repro.detection import ConceptVectorScorer
from repro.eval import (
    Environment,
    EnvironmentConfig,
    RankingExperiment,
    collect_dataset,
    train_combined_ranker,
)
from repro.features import RelevanceModel, RelevanceScorer
from repro.ranking import FeatureAssembler, RankSVM
from repro.runtime import (
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
)


class TestEndToEndDeterminism:
    def test_full_stack_reproducible(self):
        config = EnvironmentConfig(
            world=WorldConfig(
                seed=5,
                vocabulary_size=900,
                topic_count=8,
                words_per_topic=40,
                concept_count=80,
                topic_page_count=50,
            )
        )
        first = Environment.build(config)
        second = Environment.build(config)
        story_a = first.stories(1, seed=3)[0]
        story_b = second.stories(1, seed=3)[0]
        assert story_a.text == story_b.text
        ranked_a = first.pipeline.process(story_a.text).by_concept_vector_score()
        ranked_b = second.pipeline.process(story_b.text).by_concept_vector_score()
        assert [d.phrase for d in ranked_a] == [d.phrase for d in ranked_b]
        assert [d.score for d in ranked_a] == [d.score for d in ranked_b]


class TestQuantizedVsLiveFeatures:
    def test_ranking_mostly_agrees(self, env_world, env_extractor, env_stories):
        """Ranking from the 2-byte store must track the live extractor."""
        phrases = [c.phrase for c in env_world.concepts]
        store = QuantizedInterestingnessStore.build(env_extractor, phrases)
        sample = phrases[:40]
        live = np.vstack([env_extractor.extract(p).numeric() for p in sample])
        stored = np.vstack([store.extract(p).numeric() for p in sample])
        # log-scale counts: quantization error must be small
        assert np.abs(live - stored).max() < 0.1


class TestRuntimeVsOfflineRanker:
    def test_service_agrees_with_offline_assembler(
        self, env_world, env_extractor, env_miner, env_pipeline, env_stories
    ):
        phrases = [c.phrase for c in env_world.concepts]
        store = QuantizedInterestingnessStore.build(env_extractor, phrases)
        model = RelevanceModel.mine_all(env_miner, phrases[:60])
        packed = PackedRelevanceStore.build(model)

        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 16))
        svm = RankSVM(epochs=40)
        svm.fit(X, X[:, 0], np.repeat(np.arange(10), 6))

        service = RankerService(env_pipeline, store, packed, svm)
        from repro.ranking import ConceptRanker

        offline = ConceptRanker(
            FeatureAssembler(
                extractor=env_extractor,
                relevance_scorer=RelevanceScorer(model),
            ),
            svm,
        )
        story = env_stories[0]
        runtime_ranked = [d.phrase for d in service.process(story.text)]
        annotated = env_pipeline.process(story.text)
        known = [d for d in annotated.rankable() if d.phrase in store]
        pruned = annotated.__class__(text=annotated.text, detections=known)
        offline_ranked = [d.phrase for d in offline.rank_document(pruned)]
        # quantization may swap near-ties; the top item must agree
        assert runtime_ranked[:1] == offline_ranked[:1]
        assert set(runtime_ranked) == set(offline_ranked)


class TestDegenerateConfigurations:
    def test_tiny_world_builds(self):
        world = SyntheticWorld.build(
            WorldConfig(
                seed=1,
                vocabulary_size=300,
                topic_count=2,
                words_per_topic=20,
                concept_count=10,
                junk_fraction=0.0,
                topic_page_count=10,
            )
        )
        assert len(world.concepts) == 10
        assert world.junk_concepts() == []

    def test_pipeline_on_empty_text(self, env_pipeline):
        annotated = env_pipeline.process("")
        assert annotated.detections == []
        assert annotated.rankable() == []
        assert annotated.annotate() == ""

    def test_pipeline_on_stopword_text(self, env_pipeline):
        annotated = env_pipeline.process("the and with from about")
        assert all(d.kind != "named" for d in annotated.detections)

    def test_concept_vector_on_unknown_text(self, env_world, env_lexicon):
        scorer = ConceptVectorScorer(env_world.doc_frequency, env_lexicon)
        vector = scorer.concept_vector("zzz qqq unknownwords")
        # unknown terms still get idf-backed scores, never crash
        assert len(vector) >= 0

    def test_experiment_single_window(self, env_world):
        from repro.clicks.dataset import Window
        from repro.clicks.tracking import EntityObservation, StoryClickRecord

        entities = [
            EntityObservation(
                phrase=env_world.concepts[i].phrase,
                concept_id=i,
                entity_type=None,
                position=i * 10,
                baseline_score=float(i),
                views=100,
                clicks=10 - i,
            )
            for i in range(3)
        ]
        record = StoryClickRecord(
            story_id=0, text="x" * 200, views=100, entities=entities
        )
        dataset = ClickDataset(
            records=[record],
            windows=[
                Window(
                    window_id=0,
                    story_id=0,
                    text="x" * 200,
                    char_start=0,
                    entities=entities,
                )
            ],
        )
        env = _env_stub(env_world)
        experiment = RankingExperiment(env, dataset, folds=2)
        result = experiment.run_concept_vector()
        assert 0.0 <= result.weighted_error_rate <= 1.0


def _env_stub(world):
    """A minimal object with the attributes RankingExperiment touches."""

    class _Extractor:
        def extract(self, phrase):
            from repro.features.interestingness import InterestingnessVector

            return InterestingnessVector(
                phrase=phrase,
                freq_exact=1,
                freq_phrase_contained=2,
                unit_score=0.5,
                searchengine_phrase=3,
                concept_size=len(phrase.split()),
                number_of_chars=len(phrase),
                subconcepts=0,
                high_level_type=None,
                wiki_word_count=0,
            )

    class _Stub:
        extractor = _Extractor()

        def relevance_model(self, phrases, resource="snippets"):
            return RelevanceModel({p: () for p in phrases})

    return _Stub()


class TestTrainedRankerOnFreshStories:
    def test_generalization_to_unseen_stories(self, env_world):
        """Train on one story stream, verify quality gain on another."""
        config = EnvironmentConfig(world=env_world.config)
        env = Environment.build(config)
        dataset = collect_dataset(env, 120, story_seed=2)
        experiment = RankingExperiment(env, dataset)
        ranker = train_combined_ranker(env, experiment)

        fresh = env.stories(15, seed=4321)
        gains = []
        for story in fresh:
            annotated = env.pipeline.process(story.text)
            known = {c.phrase.lower() for c in env.world.concepts}
            base = [
                d.phrase
                for d in annotated.by_concept_vector_score()
                if d.phrase in known
            ][:3]
            learned = [d.phrase for d in ranker.rank_document(annotated)[:3]]

            def quality(phrases):
                values = []
                for phrase in phrases:
                    concept = env.world.concept_by_phrase(phrase)
                    values.append(
                        concept.interestingness
                        * max(story.relevance_of(concept.concept_id), 0.05)
                    )
                return float(np.mean(values)) if values else 0.0

            gains.append(quality(learned) - quality(base))
        assert float(np.mean(gains)) > 0.0
