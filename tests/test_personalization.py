"""Tests for the personalization extension: users, history, CF."""

import numpy as np
import pytest

from repro.clicks import UserClickModel
from repro.personalization import (
    FactorizationModel,
    InteractionMatrix,
    PersonalizedClickSimulator,
    PersonalizedScorer,
    UserProfile,
    factorize,
    generate_users,
    personal_interest,
)


class TestUserProfiles:
    def test_generate_users_shapes(self):
        rng = np.random.default_rng(0)
        users = generate_users(rng, topic_count=12, count=30)
        assert len(users) == 30
        for user in users:
            assert user.topic_affinity.shape == (12,)
            assert user.topic_affinity.sum() == pytest.approx(1.0)
            assert user.activity > 0

    def test_invalid_sizes(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_users(rng, 0, 5)
        with pytest.raises(ValueError):
            generate_users(rng, 5, 0)

    def test_profiles_are_sparse(self):
        rng = np.random.default_rng(1)
        users = generate_users(rng, topic_count=20, count=50)
        top_shares = [user.topic_affinity.max() for user in users]
        # a sparse Dirichlet puts most mass on a few topics
        assert np.mean(top_shares) > 0.3

    def test_personal_interest_blend(self, env_world):
        topic_count = len(env_world.topics)
        concept = next(
            c for c in env_world.concepts if c.home_topics and not c.is_junk
        )
        fan_affinity = np.zeros(topic_count)
        fan_affinity[concept.home_topics[0]] = 1.0
        fan = UserProfile(0, fan_affinity, 1.0)
        stranger = UserProfile(1, np.full(topic_count, 1.0 / topic_count), 1.0)
        fan_interest = personal_interest(fan, concept, topic_count)
        stranger_interest = personal_interest(stranger, concept, topic_count)
        assert fan_interest > stranger_interest
        # a uniform user reproduces the global interestingness
        assert stranger_interest == pytest.approx(
            concept.interestingness, rel=1e-6
        )


class TestInteractionMatrix:
    def test_add_and_ctr(self):
        matrix = InteractionMatrix(user_count=2, concept_count=3)
        matrix.add(0, 1, views=10, clicks=2)
        assert matrix.ctr()[0, 1] == pytest.approx(0.2)
        assert matrix.ctr()[1, 2] == 0.0
        assert matrix.observed_mask().sum() == 1
        assert matrix.density == pytest.approx(1 / 6)


class TestSimulator:
    @pytest.fixture(scope="class")
    def simulated(self, env_world, env_pipeline):
        rng = np.random.default_rng(7)
        users = generate_users(rng, len(env_world.topics), 25)
        simulator = PersonalizedClickSimulator(
            env_world, env_pipeline, users, UserClickModel(seed=5)
        )
        stories = env_world.story_generator(seed=19).generate_many(30)
        matrix = simulator.simulate(stories, sessions=1500, seed=3)
        return users, matrix, env_world

    def test_matrix_filled(self, simulated):
        __, matrix, __w = simulated
        assert matrix.views.sum() > 0
        assert matrix.clicks.sum() > 0
        assert (matrix.clicks <= matrix.views).all()

    def test_fans_click_their_topics_more(self, simulated):
        users, matrix, world = simulated
        ctr = matrix.ctr()
        fan_rates, stranger_rates = [], []
        for concept in world.concepts:
            if not concept.home_topics or concept.is_junk:
                continue
            home = concept.home_topics[0]
            for user in users:
                if matrix.views[user.user_id, concept.concept_id] < 5:
                    continue
                rate = ctr[user.user_id, concept.concept_id]
                if user.topic_affinity[home] > 0.25:
                    fan_rates.append(rate)
                elif user.topic_affinity[home] < 0.02:
                    stranger_rates.append(rate)
        if not fan_rates or not stranger_rates:
            pytest.skip("not enough overlap in this seed")
        assert np.mean(fan_rates) > np.mean(stranger_rates)


class TestFactorization:
    def synthetic_matrix(self, users=40, concepts=30, rank=3, seed=0):
        """A noiseless low-rank CTR matrix with most cells observed."""
        rng = np.random.default_rng(seed)
        u = rng.normal(scale=0.1, size=(users, rank))
        v = rng.normal(scale=0.1, size=(concepts, rank))
        ctr = np.clip(0.05 + u @ v.T, 0.0, 1.0)
        matrix = InteractionMatrix(user_count=users, concept_count=concepts)
        for i in range(users):
            for j in range(concepts):
                if rng.random() < 0.7:
                    views = 200
                    matrix.add(i, j, views, int(round(ctr[i, j] * views)))
        return matrix, ctr

    def test_reconstructs_low_rank_structure(self):
        matrix, truth = self.synthetic_matrix()
        model = factorize(matrix, rank=4, iterations=15, regularization=0.1)
        observed = matrix.observed_mask()
        predicted = np.vstack(
            [model.predict_user(i) for i in range(matrix.user_count)]
        )
        err = np.abs(predicted - truth)[observed].mean()
        baseline_err = np.abs(truth[observed] - truth[observed].mean()).mean()
        assert err < baseline_err * 0.5

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            factorize(InteractionMatrix(user_count=2, concept_count=2))

    def test_predict_user_shape(self):
        matrix, __ = self.synthetic_matrix(users=10, concepts=8)
        model = factorize(matrix, rank=2, iterations=5)
        assert model.predict_user(0).shape == (8,)

    def test_deterministic(self):
        matrix, __ = self.synthetic_matrix(users=10, concepts=8)
        a = factorize(matrix, rank=2, iterations=5, seed=3)
        b = factorize(matrix, rank=2, iterations=5, seed=3)
        assert np.allclose(a.user_factors, b.user_factors)


class TestPersonalizedScorer:
    def build(self):
        model = FactorizationModel(
            user_factors=np.array([[1.0], [-1.0]]),
            concept_factors=np.array([[0.5], [-0.5]]),
            global_mean=0.02,
        )
        index = {"alpha": 0, "beta": 1}
        return PersonalizedScorer(model, index, strength=1.0)

    def test_opposite_users_get_opposite_adjustments(self):
        scorer = self.build()
        assert scorer.personal_adjustment(0, "alpha") > 0
        assert scorer.personal_adjustment(1, "alpha") < 0
        assert scorer.personal_adjustment(0, "beta") < 0

    def test_unknown_phrase_untouched(self):
        scorer = self.build()
        assert scorer.personal_adjustment(0, "unknown") == 0.0

    def test_adjust_scores_alignment(self):
        scorer = self.build()
        with pytest.raises(ValueError):
            scorer.adjust_scores(0, ["alpha"], [1.0, 2.0])

    def test_reranking_flips_for_fan(self):
        scorer = self.build()
        scores = scorer.adjust_scores(0, ["alpha", "beta"], [0.0, 0.1])
        assert scores[0] > scores[1]  # user 0 prefers alpha despite base gap


class TestPersonalizationEndToEnd:
    def test_cf_improves_per_user_ranking(self, env_world, env_pipeline):
        """Held-out per-user preferences: CF-adjusted beats global."""
        rng = np.random.default_rng(11)
        users = generate_users(rng, len(env_world.topics), 20)
        click_model = UserClickModel(seed=13)
        simulator = PersonalizedClickSimulator(
            env_world, env_pipeline, users, click_model
        )
        stories = env_world.story_generator(seed=23).generate_many(40)
        train = simulator.simulate(stories, sessions=4000, seed=1)
        model = factorize(train, rank=6, iterations=10)

        # ground truth per-user preference = personal_interest
        topic_count = len(env_world.topics)
        from repro.personalization import personal_interest

        global_correct = cf_correct = total = 0
        concepts = [c for c in env_world.concepts if not c.is_junk][:80]
        for user in users[:10]:
            predicted = model.predict_user(user.user_id)
            for a in range(0, len(concepts), 7):
                for b in range(3, len(concepts), 11):
                    ca, cb = concepts[a], concepts[b]
                    if ca.concept_id == cb.concept_id:
                        continue
                    truth_a = personal_interest(user, ca, topic_count)
                    truth_b = personal_interest(user, cb, topic_count)
                    if abs(truth_a - truth_b) < 0.1:
                        continue
                    total += 1
                    global_pick = ca.interestingness > cb.interestingness
                    cf_pick = (
                        predicted[ca.concept_id] > predicted[cb.concept_id]
                    )
                    truth = truth_a > truth_b
                    global_correct += global_pick == truth
                    cf_correct += cf_pick == truth
        assert total > 50
        # CF must add per-user signal beyond the global ordering
        assert cf_correct / total > 0.5
