"""Tests for detection accuracy evaluation."""

import pytest

from repro.eval import DetectionQuality, evaluate_detection


class TestDetectionQualityMath:
    def test_perfect(self):
        quality = DetectionQuality(10, 0, 0, 5, 5)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0
        assert quality.type_accuracy == 1.0

    def test_mixed(self):
        quality = DetectionQuality(8, 2, 2, 3, 4)
        assert quality.precision == pytest.approx(0.8)
        assert quality.recall == pytest.approx(0.8)
        assert quality.f1 == pytest.approx(0.8)
        assert quality.type_accuracy == pytest.approx(0.75)

    def test_empty(self):
        quality = DetectionQuality(0, 0, 0, 0, 0)
        # vacuous-truth conventions: no mentions, nothing wrong
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0
        assert quality.type_accuracy == 1.0


class TestEvaluateDetection:
    @pytest.fixture(scope="class")
    def quality(self, env_world, env_pipeline, env_stories):
        return evaluate_detection(env_world, env_pipeline, env_stories[:25])

    def test_high_recall_on_detectable_mentions(self, quality):
        assert quality.recall > 0.9

    def test_high_precision(self, quality):
        # concept terms are dedicated pseudo-words, so false positives
        # come only from junk stopword phrases and chance dictionary hits
        assert quality.precision > 0.8

    def test_f1_consistent(self, quality):
        p, r = quality.precision, quality.recall
        assert quality.f1 == pytest.approx(2 * p * r / (p + r))

    def test_type_accuracy_high(self, quality):
        # disambiguation only matters for ambiguous phrases (~5%)
        assert quality.type_total > 0
        assert quality.type_accuracy > 0.9

    def test_counts_nonnegative(self, quality):
        assert quality.true_positives >= 0
        assert quality.false_positives >= 0
        assert quality.false_negatives >= 0
