"""Tests for pattern/named/concept detectors, matcher, and pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (
    KIND_CONCEPT,
    KIND_NAMED,
    KIND_PATTERN,
    Detection,
    PatternDetector,
    PhraseMatcher,
    deduplicate,
    resolve_collisions,
)


class TestPatternDetector:
    def setup_method(self):
        self.detector = PatternDetector()

    def test_email(self):
        hits = self.detector.detect("contact uirmak@yahoo-inc.com today")
        assert any(d.entity_type == "email" for d in hits)
        email = next(d for d in hits if d.entity_type == "email")
        assert email.text == "uirmak@yahoo-inc.com"

    def test_url(self):
        hits = self.detector.detect("see http://news.yahoo.com/story for details")
        url = next(d for d in hits if d.entity_type == "url")
        assert url.text.startswith("http://news.yahoo.com")

    def test_www_url(self):
        hits = self.detector.detect("visit www.example.org now")
        assert any(d.entity_type == "url" for d in hits)

    def test_phone(self):
        hits = self.detector.detect("call (408) 555-1234 or 650-555-9876")
        phones = [d for d in hits if d.entity_type == "phone"]
        assert len(phones) == 2

    def test_offsets(self):
        text = "mail me at a@b.co please"
        hits = self.detector.detect(text)
        for detection in hits:
            assert text[detection.start : detection.end] == detection.text

    def test_clean_text_no_hits(self):
        assert self.detector.detect("no patterns here at all") == []


class TestPhraseMatcher:
    def test_single_and_multi(self):
        matcher = PhraseMatcher([("cuba",), ("global", "warming")])
        text = "talks with Cuba about global warming today"
        matches = matcher.find(text)
        phrases = [m[0] for m in matches]
        assert ("cuba",) in phrases
        assert ("global", "warming") in phrases

    def test_longest_match_wins(self):
        matcher = PhraseMatcher([("new", "york"), ("new", "york", "city")])
        matches = matcher.find("in new york city tonight")
        assert matches[0][0] == ("new", "york", "city")

    def test_offsets_match_surface(self):
        matcher = PhraseMatcher([("global", "warming")])
        text = "The Global Warming debate."
        ((__, start, end),) = matcher.find(text)
        assert text[start:end] == "Global Warming"

    def test_case_insensitive(self):
        matcher = PhraseMatcher([("CUBA",)])
        assert matcher.find("cuba and Cuba") != []

    def test_no_match(self):
        matcher = PhraseMatcher([("absent",)])
        assert matcher.find("nothing to see") == []

    def test_empty_inventory(self):
        assert PhraseMatcher([]).find("anything") == []

    def test_matches_do_not_overlap(self):
        matcher = PhraseMatcher([("a", "b"), ("b", "c")])
        matches = matcher.find("a b c")
        assert len(matches) == 1
        assert matches[0][0] == ("a", "b")


class TestCollisionsAndDedup:
    def make(self, start, end, kind, text="x"):
        return Detection(text=text, start=start, end=end, kind=kind)

    def test_longer_span_wins(self):
        short = self.make(0, 3, KIND_NAMED)
        long = self.make(0, 8, KIND_CONCEPT)
        kept = resolve_collisions([short, long])
        assert kept == [long]

    def test_priority_breaks_length_ties(self):
        named = self.make(0, 5, KIND_NAMED)
        concept = self.make(0, 5, KIND_CONCEPT)
        kept = resolve_collisions([concept, named])
        assert kept == [named]

    def test_pattern_highest_priority(self):
        pattern = self.make(0, 5, KIND_PATTERN)
        named = self.make(0, 5, KIND_NAMED)
        assert resolve_collisions([named, pattern]) == [pattern]

    def test_non_overlapping_all_kept_in_order(self):
        a = self.make(10, 15, KIND_CONCEPT)
        b = self.make(0, 5, KIND_NAMED)
        assert resolve_collisions([a, b]) == [b, a]

    def test_dedup_keeps_first_occurrence(self):
        first = Detection("Cuba", 0, 4, KIND_NAMED)
        second = Detection("cuba", 50, 54, KIND_NAMED)
        assert deduplicate([first, second]) == [first]

    def test_dedup_case_insensitive_distinct_phrases_kept(self):
        a = Detection("Cuba", 0, 4, KIND_NAMED)
        b = Detection("Texas", 10, 15, KIND_NAMED)
        assert deduplicate([a, b]) == [a, b]


class TestCollisionProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 50),
                st.integers(1, 10),
                st.sampled_from([KIND_PATTERN, KIND_NAMED, KIND_CONCEPT]),
            ),
            max_size=15,
        )
    )
    @settings(max_examples=50)
    def test_resolution_invariants(self, raw):
        detections = [
            Detection(text="x" * length, start=start, end=start + length, kind=kind)
            for start, length, kind in raw
        ]
        kept = resolve_collisions(detections)
        # 1. output is sorted and non-overlapping
        for left, right in zip(kept, kept[1:]):
            assert left.end <= right.start
        # 2. every dropped detection overlaps something kept with
        #    greater-or-equal priority
        for detection in detections:
            if detection in kept:
                continue
            blockers = [k for k in kept if k.overlaps(detection)]
            assert blockers
            assert any(k.priority() >= detection.priority() for k in blockers)
        # 3. idempotent
        assert resolve_collisions(kept) == kept


class TestConceptDetector:
    def test_detects_world_concepts_in_stories(
        self, env_world, env_concept_detector, env_stories
    ):
        by_id = {c.concept_id: c for c in env_world.concepts}
        detected_total = 0
        embedded_total = 0
        for story in env_stories:
            detected = {
                d.phrase for d in env_concept_detector.detect(story.text)
            }
            embedded = {
                by_id[m.concept_id].phrase.lower() for m in story.mentions
            }
            detectable_embedded = {
                p
                for p in embedded
                if tuple(p.split()) in env_concept_detector._phrases
            }
            embedded_total += len(detectable_embedded)
            detected_total += len(detectable_embedded & detected)
        assert embedded_total > 0
        assert detected_total / embedded_total > 0.95

    def test_inventory_excludes_unsupported_multiterm(
        self, env_world, env_detectable, env_lexicon
    ):
        for phrase in env_detectable:
            if len(phrase) > 1:
                assert phrase in env_lexicon

    def test_offsets_valid(self, env_concept_detector, env_stories):
        story = env_stories[0]
        for detection in env_concept_detector.detect(story.text):
            assert story.text[detection.start : detection.end] == detection.text
            assert detection.kind == KIND_CONCEPT


class TestNamedEntityDetector:
    def test_detects_dictionary_entities(self, env_world, env_pipeline, env_stories):
        from repro.detection import NamedEntityDetector

        detector = NamedEntityDetector(env_world.dictionary)
        found_any = False
        for story in env_stories[:10]:
            for detection in detector.detect(story.text):
                found_any = True
                assert detection.kind == KIND_NAMED
                assert detection.entity_type is not None
                assert (
                    env_world.dictionary.high_level_type(detection.phrase)
                    is not None
                )
        assert found_any

    def test_ambiguous_resolved_to_some_valid_type(self, env_world):
        from repro.detection import NamedEntityDetector

        dictionary = env_world.dictionary
        ambiguous = [p for p in dictionary.phrases() if dictionary.is_ambiguous(p)]
        if not ambiguous:
            pytest.skip("no ambiguous entries in this seed")
        detector = NamedEntityDetector(dictionary)
        phrase = ambiguous[0]
        hits = detector.detect(f"something about {phrase} here")
        assert hits
        valid_types = {e.high_level_type for e in dictionary.lookup(phrase)}
        assert hits[0].entity_type in valid_types


class TestPipeline:
    def test_process_plain_story(self, env_pipeline, env_stories):
        annotated = env_pipeline.process(env_stories[0].text)
        assert annotated.detections
        spans = [(d.start, d.end) for d in annotated.detections]
        # no overlaps after collision resolution
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_phrases_unique(self, env_pipeline, env_stories):
        annotated = env_pipeline.process(env_stories[1].text)
        phrases = [d.phrase for d in annotated.detections]
        assert len(set(phrases)) == len(phrases)

    def test_concepts_scored(self, env_pipeline, env_stories):
        annotated = env_pipeline.process(env_stories[2].text)
        rankable = annotated.rankable()
        assert rankable
        assert any(d.score > 0 for d in rankable)

    def test_ranking_descending(self, env_pipeline, env_stories):
        annotated = env_pipeline.process(env_stories[3].text)
        ranked = annotated.by_concept_vector_score()
        scores = [d.score for d in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_html_input(self, env_pipeline, env_stories):
        html = "<html><body><p>%s</p></body></html>" % env_stories[4].text
        annotated = env_pipeline.process(html, is_html=True)
        assert annotated.detections

    def test_annotate_marks_detections(self, env_pipeline, env_stories):
        annotated = env_pipeline.process(env_stories[5].text)
        marked = annotated.annotate()
        assert marked.count("[[") == len(annotated.detections)

    def test_pattern_entities_not_rankable(self, env_pipeline):
        text = "write to someone@example.com about the news"
        annotated = env_pipeline.process(text)
        patterns = [d for d in annotated.detections if d.kind == KIND_PATTERN]
        assert patterns
        assert all(d not in annotated.rankable() for d in patterns)
