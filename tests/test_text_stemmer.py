"""Tests for the Porter stemmer against the published algorithm's examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import PorterStemmer, stem

STEMMER = PorterStemmer()

# (input, expected) pairs taken from Porter's 1980 paper examples.
PORTER_PAPER_CASES = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", PORTER_PAPER_CASES)
def test_porter_paper_examples(word, expected):
    assert STEMMER.stem(word) == expected


class TestStemBasics:
    def test_short_words_unchanged(self):
        assert STEMMER.stem("at") == "at"
        assert STEMMER.stem("i") == "i"

    def test_idempotent_on_common_words(self):
        for word in ["running", "relational", "caresses", "plastered"]:
            once = STEMMER.stem(word)
            assert STEMMER.stem(once) == STEMMER.stem(once)

    def test_module_level_stem_lowercases(self):
        assert stem("Running") == STEMMER.stem("running")

    def test_plural_families_collapse(self):
        assert STEMMER.stem("connections") == STEMMER.stem("connection")
        assert STEMMER.stem("connected") == STEMMER.stem("connecting")


class TestStemProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=1, max_size=20))
    def test_never_raises_never_grows_much(self, word):
        result = STEMMER.stem(word)
        assert isinstance(result, str)
        # stems may grow by at most one char (e.g. "at" -> "ate" rules add 'e')
        assert len(result) <= len(word) + 1

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=1, max_size=20))
    def test_deterministic(self, word):
        assert STEMMER.stem(word) == STEMMER.stem(word)

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=3, max_size=15))
    def test_stem_is_nonempty_for_nonempty_input(self, word):
        assert STEMMER.stem(word)
