"""Single-pass hot path: golden equivalence against the seed algorithms.

The PR that introduced ``TokenizedDocument`` replaced three seed
algorithms (first-term-list phrase matching, the O(n^2) collision scan,
and the tokenize-per-stage service path) with single-pass equivalents.
These tests pin the new implementations to reference implementations of
the seed behaviour: the outputs must be *identical* — spans, scores,
and order — on a fixed corpus sample and on adversarial inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (
    KIND_CONCEPT,
    KIND_NAMED,
    KIND_PATTERN,
    AnnotatedDocument,
    Detection,
    PhraseMatcher,
    deduplicate,
    resolve_collisions,
)
from repro.features import RelevanceModel
from repro.ranking import RankSVM
from repro.runtime import (
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
    TimingStats,
)
from repro.text import (
    TokenizedDocument,
    TermVector,
    reset_tokenize_call_count,
    tokenize,
    tokenize_call_count,
)


# -- reference (seed) implementations ------------------------------------


def seed_matcher_find(phrases, text):
    """The seed PhraseMatcher.find: first-term lists, longest-first."""
    by_first = {}
    for phrase in phrases:
        phrase = tuple(term.lower() for term in phrase)
        if phrase:
            by_first.setdefault(phrase[0], []).append(phrase)
    for candidates in by_first.values():
        candidates.sort(key=len, reverse=True)
    word_tokens = [token for token in tokenize(text) if token.is_word()]
    words = [token.lower for token in word_tokens]
    matches = []
    index = 0
    count = len(words)
    while index < count:
        matched = None
        for phrase in by_first.get(words[index], ()):
            size = len(phrase)
            if index + size <= count and tuple(words[index : index + size]) == phrase:
                matched = phrase
                break
        if matched is None:
            index += 1
            continue
        start = word_tokens[index].start
        end = word_tokens[index + len(matched) - 1].end
        matches.append((matched, start, end))
        index += len(matched)
    return matches


def seed_resolve_collisions(detections):
    """The seed resolver: greedy keep with an all-pairs overlap scan."""
    ordered = sorted(
        detections, key=lambda d: (-d.priority()[0], -d.priority()[1], d.start)
    )
    kept = []
    for candidate in ordered:
        if any(candidate.overlaps(existing) for existing in kept):
            continue
        kept.append(candidate)
    kept.sort(key=lambda d: d.start)
    return kept


def seed_process(service, text, top=None):
    """The seed RankerService.process shape: one tokenization per stage.

    Every component is called through its string entry point, exactly as
    the seed service did, so the ranker's relevance context is re-stemmed
    from the raw text rather than read off the shared token stream.
    """
    from repro.features import stemmed_terms

    stemmed_terms(text)  # the seed's discarded Stemmer timing pass
    pipeline = service._pipeline
    candidates = list(pipeline._patterns.detect(text))
    if pipeline._named is not None:
        candidates.extend(pipeline._named.detect(text))
    candidates.extend(pipeline._concepts.detect(text))
    resolved = deduplicate(seed_resolve_collisions(candidates))
    vector = pipeline._scorer.concept_vector(text)
    scored = [
        d
        if d.kind == KIND_PATTERN
        else d.with_score(pipeline._scorer.score_phrase(vector, d.phrase))
        for d in resolved
    ]
    known = [d for d in scored if d.kind != KIND_PATTERN and d.phrase in service._store]
    pruned = AnnotatedDocument(text=text, detections=known)
    ranked = service._ranker.rank_document(pruned)
    if top is not None:
        ranked = ranked[:top]
    return ranked


# -- fixtures -------------------------------------------------------------


@pytest.fixture(scope="module")
def service(env_world, env_extractor, env_miner, env_pipeline):
    phrases = [c.phrase for c in env_world.concepts]
    interestingness = QuantizedInterestingnessStore.build(env_extractor, phrases)
    model = RelevanceModel.mine_all(
        env_miner, [c.phrase for c in env_world.concepts[:40]]
    )
    relevance = PackedRelevanceStore.build(model)
    svm = RankSVM(epochs=30)
    rng = np.random.default_rng(0)
    X = rng.normal(size=(40, 16))
    y = X[:, 0]
    g = np.repeat(np.arange(8), 5)
    svm.fit(X, y, g)
    return RankerService(env_pipeline, interestingness, relevance, svm)


# -- golden equivalence ----------------------------------------------------


class TestGoldenEquivalence:
    def test_service_matches_seed_path_on_corpus_sample(self, service, env_stories):
        """Byte-identical detections (spans, scores, order) vs the seed."""
        for story in env_stories[:25]:
            expected = seed_process(service, story.text, top=None)
            actual = service.process(story.text, top=None)
            assert actual == expected

    def test_pipeline_output_identical_including_patterns(
        self, env_pipeline, env_stories
    ):
        for story in env_stories[:25]:
            text = story.text + " mail a@b.co or call (408) 555-1234"
            fresh = env_pipeline.process(text)
            shared = env_pipeline.process_document(TokenizedDocument(text))
            assert fresh == shared
            assert shared.tokens is not None

    def test_matcher_matches_seed_on_corpus(self, env_concept_detector, env_stories):
        inventory = list(env_concept_detector._phrases)
        matcher = PhraseMatcher(inventory)
        for story in env_stories[:25]:
            assert matcher.find(story.text) == seed_matcher_find(
                inventory, story.text
            )

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 50),
                st.integers(1, 10),
                st.sampled_from([KIND_PATTERN, KIND_NAMED, KIND_CONCEPT]),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_collision_sweep_matches_seed_scan(self, raw):
        detections = [
            Detection(text="x" * length, start=start, end=start + length, kind=kind)
            for start, length, kind in raw
        ]
        assert resolve_collisions(detections) == seed_resolve_collisions(detections)


# -- trie matcher edge cases ----------------------------------------------


class TestTrieMatcher:
    def test_shared_prefixes_take_longest(self):
        matcher = PhraseMatcher(
            [("new",), ("new", "york"), ("new", "york", "city")]
        )
        [(phrase, start, end)] = matcher.find("welcome to New York City limits")
        assert phrase == ("new", "york", "city")
        assert (start, end) == (11, 24)

    def test_phrase_is_prefix_of_longer_unfinished_phrase(self):
        # "san francisco giants" dead-ends after "san francisco": the
        # walk must fall back to the deepest terminal seen, not fail.
        matcher = PhraseMatcher([("san", "francisco"), ("san", "francisco", "giants")])
        matches = matcher.find("san francisco weather")
        assert [m[0] for m in matches] == [("san", "francisco")]

    def test_dead_end_resumes_at_next_position(self):
        matcher = PhraseMatcher([("global", "warming"), ("warming",)])
        matches = matcher.find("global warning about warming")
        assert [m[0] for m in matches] == [("warming",)]

    def test_inventory_term_casing_normalized(self):
        matcher = PhraseMatcher([("Global", "WARMING")])
        matches = matcher.find("talks on gLoBaL wArMiNg stalled")
        assert [m[0] for m in matches] == [("global", "warming")]

    def test_len_deduplicates_inventory(self):
        # seed regression: duplicates inflated len(matcher)
        matcher = PhraseMatcher(
            [("cuba",), ("Cuba",), ("global", "warming"), ("global", "warming")]
        )
        assert len(matcher) == 2
        assert matcher.max_length == 2

    def test_empty_phrases_ignored(self):
        assert len(PhraseMatcher([(), ("cuba",)])) == 1


# -- single-pass bookkeeping ----------------------------------------------


class TestSinglePass:
    def test_service_tokenizes_exactly_once_per_document(
        self, service, env_stories
    ):
        text = env_stories[0].text
        service.process(text)  # warm any lazy state
        reset_tokenize_call_count()
        service.process(text)
        assert tokenize_call_count() == 1

    def test_seed_path_tokenized_five_times(self, service, env_stories):
        text = env_stories[0].text
        reset_tokenize_call_count()
        seed_process(service, text)
        assert tokenize_call_count() == 5

    def test_tokenize_counter_thread_safe(self):
        import threading

        from repro.text import tokenize

        reset_tokenize_call_count()
        per_thread = 400

        def worker():
            for __ in range(per_thread):
                tokenize("fidel castro visits havana")

        threads = [threading.Thread(target=worker) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tokenize_call_count() == 8 * per_thread
        # reading the counter must not perturb it
        assert tokenize_call_count() == 8 * per_thread
        reset_tokenize_call_count()
        assert tokenize_call_count() == 0

    def test_tokenized_document_views_match_string_helpers(self, env_stories):
        from repro.features import stemmed_terms
        from repro.text import tokenize_lower

        text = env_stories[0].text
        document = TokenizedDocument(text)
        assert document.words == tokenize_lower(text)
        assert document.stemmed_terms == stemmed_terms(text)
        assert document.stem_set == set(stemmed_terms(text))


# -- parallel batch mode ---------------------------------------------------


class TestProcessBatchWorkers:
    def test_parallel_results_identical_to_sequential(self, service, env_stories):
        documents = [s.text for s in env_stories[:12]]
        sequential = service.process_batch(documents, top=5)
        parallel = service.process_batch(documents, top=5, workers=4)
        assert parallel == sequential

    def test_parallel_stats_counters_match_sequential(self, service, env_stories):
        documents = [s.text for s in env_stories[:8]]
        service.reset_stats()
        service.process_batch(documents, top=5)
        sequential = service.stats
        service.reset_stats()
        service.process_batch(documents, top=5, workers=3)
        parallel = service.stats
        assert parallel.documents == sequential.documents == len(documents)
        assert parallel.bytes_processed == sequential.bytes_processed
        assert parallel.detections == sequential.detections
        assert parallel.stemmer_seconds > 0
        assert parallel.detection_seconds > 0
        assert parallel.feature_seconds > 0
        assert parallel.ranker_seconds >= parallel.detection_seconds

    def test_more_workers_than_documents(self, service, env_stories):
        documents = [s.text for s in env_stories[:3]]
        assert service.process_batch(documents, workers=16) == service.process_batch(
            documents
        )

    def test_empty_batch(self, service):
        assert service.process_batch([], workers=4) == []

    def test_timing_stats_merge(self):
        left = TimingStats(stemmer_seconds=1.0, documents=2, detections=3)
        right = TimingStats(stemmer_seconds=0.5, documents=1, detections=4)
        merged = left.merge(right)
        assert merged is left
        assert left.stemmer_seconds == 1.5
        assert left.documents == 3
        assert left.detections == 7


# -- TermVector satellites -------------------------------------------------


class TestTermVectorFastPaths:
    def test_norm_cached(self):
        vector = TermVector({"a": 3.0, "b": 4.0})
        assert vector.norm() == pytest.approx(5.0)
        vector.weights["c"] = 100.0  # cache deliberately not invalidated
        assert vector.norm() == pytest.approx(5.0)

    def test_cosine_similarity_unchanged(self):
        a = TermVector({"x": 1.0, "y": 2.0})
        b = TermVector({"y": 2.0, "z": 3.0})
        expected = 4.0 / (np.sqrt(5.0) * np.sqrt(13.0))
        assert a.cosine_similarity(b) == pytest.approx(expected)

    def test_punished_below_returns_self_when_untouched(self):
        vector = TermVector({"a": 0.9, "b": 0.8})
        assert vector.punished_below(0.5) is vector

    def test_punished_below_still_punishes(self):
        vector = TermVector({"a": 0.9, "b": 0.2})
        punished = vector.punished_below(0.5, factor=0.5)
        assert punished is not vector
        assert punished.get("b") == pytest.approx(0.1)
        assert punished.get("a") == pytest.approx(0.9)

    def test_pruned_below_returns_self_when_untouched(self):
        vector = TermVector({"a": 0.9})
        assert vector.pruned_below(0.5) is vector
        empty = TermVector()
        assert empty.pruned_below(0.5) is empty

    def test_pruned_below_still_prunes(self):
        vector = TermVector({"a": 0.9, "b": 0.2})
        pruned = vector.pruned_below(0.5)
        assert pruned is not vector
        assert "b" not in pruned
