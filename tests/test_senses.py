"""Tests for LSA sense clustering of ambiguous concepts."""

import numpy as np
import pytest

from repro.features import (
    LsaSenseMiner,
    RelevanceScorer,
    RelevanceModel,
    SenseAwareRelevanceScorer,
    SenseModel,
    kmeans,
)


class TestKMeans:
    def test_two_obvious_clusters(self):
        rng = np.random.default_rng(0)
        left = rng.normal(loc=-5.0, size=(20, 2))
        right = rng.normal(loc=5.0, size=(20, 2))
        points = np.vstack([left, right])
        labels, inertia = kmeans(points, 2, seed=1)
        # all left points share a label, all right points the other
        assert len(set(labels[:20].tolist())) == 1
        assert len(set(labels[20:].tolist())) == 1
        assert labels[0] != labels[-1]
        assert inertia < kmeans(points, 1, seed=1)[1]

    def test_k_one(self):
        points = np.random.default_rng(1).normal(size=(10, 3))
        labels, __ = kmeans(points, 1)
        assert (labels == 0).all()

    def test_invalid_k(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 4)

    def test_deterministic(self):
        points = np.random.default_rng(2).normal(size=(30, 4))
        a, __ = kmeans(points, 3, seed=7)
        b, __ = kmeans(points, 3, seed=7)
        assert (a == b).all()


class TestSenseModel:
    def test_score_takes_best_sense(self):
        model = SenseModel(
            phrase="jaguar",
            senses=[
                (("engin", 10.0), ("speed", 8.0)),
                (("jungl", 9.0), ("prei", 7.0)),
            ],
        )
        car_context = {"engin", "speed", "road"}
        animal_context = {"jungl", "prei"}
        mixed = {"engin", "jungl"}
        assert model.score(car_context) == pytest.approx(18.0)
        assert model.score(animal_context) == pytest.approx(16.0)
        # best single sense, not the cross-sense sum
        assert model.score(mixed) == pytest.approx(10.0)

    def test_empty_model(self):
        assert SenseModel("x", []).score({"anything"}) == 0.0


class TestLsaSenseMiner:
    @pytest.fixture(scope="class")
    def ambiguous_concept(self, env_world):
        two_topic = [
            c
            for c in env_world.concepts
            if len(c.home_topics) == 2 and not c.is_junk
        ]
        if not two_topic:
            pytest.skip("no two-topic concepts in this seed")
        return max(two_topic, key=lambda c: c.interestingness)

    @pytest.fixture(scope="class")
    def miner(self, env_snippets, env_stemmed_df):
        return LsaSenseMiner(env_snippets, env_stemmed_df)

    def test_mine_returns_senses(self, miner, ambiguous_concept):
        model = miner.mine(ambiguous_concept.phrase)
        assert model.sense_count >= 1
        for sense in model.senses:
            assert len(sense) > 0
            scores = [s for __, s in sense]
            assert scores == sorted(scores, reverse=True)

    def test_unknown_phrase_empty_model(self, miner):
        model = miner.mine("zzz qqq never")
        assert model.sense_count == 0
        assert model.score({"anything"}) == 0.0

    def test_single_topic_concept_one_sense(self, miner, env_world):
        focused = max(
            (
                c
                for c in env_world.concepts
                if len(c.home_topics) == 1 and not c.is_junk
                and c.specificity > 0.8
            ),
            key=lambda c: c.interestingness,
        )
        model = miner.mine(focused.phrase)
        assert model.sense_count == 1

    def test_sense_aware_beats_plain_for_ambiguous(
        self, miner, env_world, env_miner, ambiguous_concept
    ):
        """In a single-sense context, the best-sense score should be at
        least as concentrated as the global keyword score."""
        phrase = ambiguous_concept.phrase
        sense_model = miner.mine(phrase)
        plain_model = RelevanceModel({phrase: env_miner.mine_from_snippets(phrase)})
        plain = RelevanceScorer(plain_model)
        aware = SenseAwareRelevanceScorer({phrase: sense_model})

        topic_id = ambiguous_concept.home_topics[0]
        topic_text = " ".join(env_world.topics[topic_id].words)
        context = aware.context_stems(topic_text)
        assert aware.score(phrase, context) > 0
        # both scorers see the context; sense-aware should not be weaker
        # by more than the split of keyword mass across senses
        assert aware.score(phrase, context) > 0.3 * plain.score(phrase, context)


class TestSenseAwareScorer:
    def test_unknown_phrase(self):
        scorer = SenseAwareRelevanceScorer({})
        assert scorer.score_text("nope", "text") == 0.0
        assert scorer.sense_count("nope") == 0

    def test_case_insensitive(self):
        model = SenseModel("Jaguar", senses=[(("jungl", 5.0),)])
        scorer = SenseAwareRelevanceScorer({"Jaguar": model})
        assert scorer.score("JAGUAR", {"jungl"}) == pytest.approx(5.0)
        assert scorer.sense_count("jaguar") == 1
