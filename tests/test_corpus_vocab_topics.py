"""Tests for pseudo-words, vocabulary, and topics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.names import make_unique_words, make_word
from repro.corpus.topics import generate_topics, sample_topic_mixture
from repro.corpus.vocabulary import Vocabulary
from repro.text.stopwords import STOPWORDS


class TestNames:
    def test_word_is_lowercase_alpha(self):
        rng = np.random.default_rng(0)
        for __ in range(50):
            word = make_word(rng)
            assert word.isalpha()
            assert word == word.lower()

    def test_unique_words_distinct(self):
        rng = np.random.default_rng(0)
        words = make_unique_words(rng, 500)
        assert len(set(words)) == 500

    def test_unique_words_avoid_stopwords(self):
        rng = np.random.default_rng(0)
        words = make_unique_words(rng, 1000)
        assert not set(words) & STOPWORDS

    def test_unique_words_avoid_forbidden(self):
        rng = np.random.default_rng(1)
        probe = make_unique_words(np.random.default_rng(1), 5)
        words = make_unique_words(rng, 100, forbidden=set(probe))
        # the same rng stream would normally reproduce probe words
        assert not set(words) & set(probe) or True  # forbidden respected
        assert all(w not in probe for w in words)

    def test_deterministic(self):
        a = make_unique_words(np.random.default_rng(42), 20)
        b = make_unique_words(np.random.default_rng(42), 20)
        assert a == b


class TestVocabulary:
    def build(self, size=200, seed=0):
        return Vocabulary.generate(np.random.default_rng(seed), size)

    def test_generate_size(self):
        assert len(self.build(150)) == 150

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary([])

    def test_zipf_head_heavier_than_tail(self):
        vocab = self.build(500)
        head = vocab.words[0]
        tail = vocab.words[-1]
        assert vocab.probability(head) > vocab.probability(tail) * 10

    def test_probabilities_sum_to_one(self):
        vocab = self.build(100)
        total = sum(vocab.probability(w) for w in vocab.words)
        assert total == pytest.approx(1.0)

    def test_sample_draws_from_vocab(self):
        vocab = self.build(50)
        rng = np.random.default_rng(1)
        for word in vocab.sample(rng, 200):
            assert word in vocab

    def test_sample_distinct(self):
        vocab = self.build(50)
        rng = np.random.default_rng(1)
        words = vocab.sample_distinct(rng, 30)
        assert len(set(words)) == 30

    def test_sample_distinct_too_many(self):
        vocab = self.build(10)
        with pytest.raises(ValueError):
            vocab.sample_distinct(np.random.default_rng(0), 11)

    def test_empirical_zipf_shape(self):
        vocab = self.build(300)
        rng = np.random.default_rng(2)
        draws = vocab.sample(rng, 20000)
        head_count = sum(1 for w in draws if vocab.rank(w) < 30)
        tail_count = sum(1 for w in draws if vocab.rank(w) >= 270)
        assert head_count > tail_count * 5


class TestTopics:
    def build(self, topic_count=10, seed=0):
        rng = np.random.default_rng(seed)
        vocab = Vocabulary.generate(rng, 1000)
        return vocab, generate_topics(rng, vocab, topic_count, words_per_topic=40)

    def test_topic_count_and_size(self):
        __, topics = self.build(8)
        assert len(topics) == 8
        assert all(len(t.words) == 40 for t in topics)

    def test_topic_words_from_vocabulary(self):
        vocab, topics = self.build(5)
        for topic in topics:
            assert all(word in vocab for word in topic.words)

    def test_topics_avoid_vocabulary_head(self):
        vocab, topics = self.build(5)
        head = set(vocab.words[: max(10, len(vocab) // 50)])
        for topic in topics:
            assert not set(topic.words) & head

    def test_weights_are_distribution(self):
        __, topics = self.build(3)
        for topic in topics:
            assert topic.weights.sum() == pytest.approx(1.0)
            assert (topic.weights >= 0).all()

    def test_sample_words_in_topic(self):
        __, topics = self.build(3)
        rng = np.random.default_rng(3)
        for word in topics[0].sample_words(rng, 100):
            assert word in topics[0].words

    def test_vocabulary_too_small_rejected(self):
        rng = np.random.default_rng(0)
        vocab = Vocabulary.generate(rng, 30)
        with pytest.raises(ValueError):
            generate_topics(rng, vocab, 2, words_per_topic=500)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_mixture_valid(self, seed):
        __, topics = self.build(6)
        rng = np.random.default_rng(seed)
        mixture = sample_topic_mixture(rng, topics)
        assert 1 <= len(mixture) <= 2
        assert len(set(mixture)) == len(mixture)
        assert all(0 <= t < 6 for t in mixture)
