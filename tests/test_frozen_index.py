"""CSR frozen index: construction equivalence, phrase edges, immutability."""

import random

import numpy as np
import pytest

from repro.search.engine import SearchEngine
from repro.search.frozen import FrozenInvertedIndex
from repro.search.index import InvertedIndex

VOCAB = [
    "cuba", "fidel", "castro", "talks", "election", "embargo",
    "weather", "storm", "go", "havana", "summit", "policy",
]


def random_docs(seed=11, count=40, low=5, high=60):
    rng = random.Random(seed)
    docs = []
    for doc_id in range(1, count + 1):
        tokens = [rng.choice(VOCAB) for __ in range(rng.randint(low, high))]
        docs.append((doc_id, tokens))
    return docs


def build_pair(docs):
    index = InvertedIndex()
    for doc_id, tokens in docs:
        index.add_document(doc_id, tokens)
    return index, FrozenInvertedIndex.from_index(index)


class TestConstruction:
    def test_from_token_streams_matches_from_index(self):
        docs = random_docs()
        index, frozen = build_pair(docs)
        vocabulary = {}
        terms = []
        id_arrays = []
        for __, tokens in docs:
            for token in tokens:
                if token not in vocabulary:
                    vocabulary[token] = len(terms)
                    terms.append(token)
            id_arrays.append(
                np.asarray([vocabulary[token] for token in tokens], dtype=np.int32)
            )
        streamed = FrozenInvertedIndex.from_token_streams(
            [doc_id for doc_id, __ in docs], id_arrays, terms
        )
        assert streamed.terms == frozen.terms
        for name in (
            "term_offsets",
            "posting_docs",
            "position_offsets",
            "positions",
            "doc_ids",
            "doc_lengths",
        ):
            assert np.array_equal(getattr(streamed, name), getattr(frozen, name)), name

    def test_empty_corpus(self):
        streamed = FrozenInvertedIndex.from_token_streams([], [], [])
        assert streamed.document_count == 0
        assert streamed.phrase_postings(["cuba"]) == {}


class TestDictEquivalence:
    def test_statistics_match(self):
        index, frozen = build_pair(random_docs())
        assert frozen.document_count == index.document_count
        assert frozen.average_document_length == index.average_document_length
        assert frozen.doc_items() == index.doc_items()
        for term in VOCAB + ["unseen"]:
            assert (term in frozen) == (term in index)
            assert frozen.document_frequency(term) == index.document_frequency(term)
            assert frozen.postings(term) == {
                doc: list(positions) for doc, positions in index.postings(term).items()
            }
            for doc_id, __ in index.doc_items():
                assert frozen.term_frequency(term, doc_id) == index.term_frequency(
                    term, doc_id
                )

    def test_phrase_postings_match(self):
        rng = random.Random(3)
        index, frozen = build_pair(random_docs())
        for __ in range(60):
            phrase = [rng.choice(VOCAB) for __ in range(rng.randint(1, 3))]
            assert frozen.phrase_postings(phrase) == index.phrase_postings(phrase)
            assert frozen.phrase_document_count(phrase) == index.phrase_document_count(
                phrase
            )

    def test_engine_results_match(self):
        docs = random_docs(seed=5)
        staged = SearchEngine()
        frozen = SearchEngine()
        for doc_id, tokens in docs:
            text = " ".join(tokens)
            staged.add_document(doc_id, text)
            frozen.add_document(doc_id, text)
        frozen.freeze()
        rng = random.Random(7)
        for __ in range(40):
            query = " ".join(rng.choice(VOCAB) for __ in range(rng.randint(1, 3)))
            assert staged.search(query, limit=10) == frozen.search(query, limit=10)
            assert staged.phrase_search(query, limit=10) == frozen.phrase_search(
                query, limit=10
            )
            assert staged.result_count(query) == frozen.result_count(query)
            assert staged.phrase_result_count(query) == frozen.phrase_result_count(
                query
            )


class TestPhraseEdgeCases:
    """Satellite: the tricky phrase_postings inputs, on both impls."""

    def docs(self):
        return [
            (1, ["go", "go", "go", "talks"]),
            (2, ["cuba", "talks", "cuba", "talks"]),
            (3, ["talks", "cuba"]),
        ]

    def both(self):
        index, frozen = build_pair(self.docs())
        return index, frozen

    def test_empty_phrase(self):
        for impl in self.both():
            assert impl.phrase_postings([]) == {}
            assert impl.phrase_document_count([]) == 0

    def test_unseen_term_short_circuits(self):
        for impl in self.both():
            assert impl.phrase_postings(["cuba", "unseen"]) == {}

    def test_adjacent_duplicate_terms(self):
        # "go go" occurs at positions 0 and 1 of doc 1 (overlapping)
        for impl in self.both():
            assert impl.phrase_postings(["go", "go"]) == {1: 2}
            assert impl.phrase_postings(["go", "go", "go"]) == {1: 1}

    def test_order_matters(self):
        for impl in self.both():
            assert impl.phrase_postings(["cuba", "talks"]) == {2: 2}
            assert impl.phrase_postings(["talks", "cuba"]) == {2: 1, 3: 1}

    def test_rarest_term_first_intersection(self):
        # "cuba" is rarer than "talks": the intersection starts from it
        # regardless of phrase order, and results stay position-exact.
        index, frozen = build_pair(self.docs())
        assert index.document_frequency("cuba") < index.document_frequency("talks")
        assert frozen.phrase_postings(["talks", "cuba"]) == index.phrase_postings(
            ["talks", "cuba"]
        )


class TestImmutability:
    def test_postings_view_rejects_writes(self):
        """Satellite: postings() can no longer corrupt the index."""
        index, frozen = build_pair(random_docs())
        view = index.postings("cuba")
        with pytest.raises(TypeError):
            view[999] = [0]
        missing = index.postings("unseen")
        with pytest.raises(TypeError):
            missing[999] = [0]
        assert 999 not in index.postings("cuba")
        assert index.postings("unseen") == {}

    def test_frozen_engine_rejects_adds(self):
        engine = SearchEngine()
        engine.add_document(1, "cuba talks")
        engine.freeze()
        with pytest.raises(RuntimeError):
            engine.add_document(2, "more text")

    def test_freeze_is_idempotent(self):
        engine = SearchEngine()
        engine.add_document(1, "cuba talks")
        first = engine.freeze()
        assert engine.freeze() is first
