"""Tests for the inverted index, engine, snippets, Prisma and suggestions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import SyntheticWorld, WorldConfig
from repro.querylog import QueryLog, query_log_for_world
from repro.search import (
    InvertedIndex,
    PrismaTool,
    SearchEngine,
    SnippetService,
    SuggestionService,
    make_snippet,
)

TINY_WORLD = WorldConfig(
    seed=9,
    vocabulary_size=1000,
    topic_count=6,
    words_per_topic=40,
    concept_count=100,
    topic_page_count=60,
)


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.build(TINY_WORLD)


@pytest.fixture(scope="module")
def engine(world):
    return SearchEngine.from_corpus(world.web_corpus)


class TestInvertedIndex:
    def build(self):
        index = InvertedIndex()
        index.add_document(0, ["the", "global", "warming", "debate"])
        index.add_document(1, ["global", "markets", "and", "global", "warming"])
        index.add_document(2, ["weather", "report"])
        return index

    def test_document_stats(self):
        index = self.build()
        assert index.document_count == 3
        assert index.doc_length(0) == 4
        assert index.average_document_length == pytest.approx((4 + 5 + 2) / 3)

    def test_duplicate_doc_id_rejected(self):
        index = self.build()
        with pytest.raises(ValueError):
            index.add_document(0, ["x"])

    def test_document_frequency(self):
        index = self.build()
        assert index.document_frequency("global") == 2
        assert index.document_frequency("weather") == 1
        assert index.document_frequency("nope") == 0

    def test_term_frequency(self):
        index = self.build()
        assert index.term_frequency("global", 1) == 2
        assert index.term_frequency("global", 2) == 0

    def test_phrase_postings(self):
        index = self.build()
        matches = index.phrase_postings(["global", "warming"])
        assert matches == {0: 1, 1: 1}

    def test_phrase_postings_respects_order(self):
        index = self.build()
        assert index.phrase_postings(["warming", "global"]) == {}

    def test_phrase_postings_counts_multiple(self):
        index = InvertedIndex()
        index.add_document(0, ["a", "b", "a", "b"])
        assert index.phrase_postings(["a", "b"]) == {0: 2}

    def test_phrase_single_term(self):
        index = self.build()
        assert index.phrase_postings(["global"]) == {0: 1, 1: 2}

    def test_phrase_empty(self):
        assert self.build().phrase_postings([]) == {}

    def test_phrase_unseen_term(self):
        assert self.build().phrase_postings(["global", "zzz"]) == {}

    def test_phrase_document_count(self):
        assert self.build().phrase_document_count(["global", "warming"]) == 2


class TestSearchEngine:
    def test_search_ranks_matching_docs_first(self, world, engine):
        concept = max(
            (c for c in world.concepts if not c.is_junk),
            key=lambda c: c.interestingness,
        )
        results = engine.search(concept.phrase, limit=10)
        assert results
        top_tokens = engine.tokens(results[0].doc_id)
        assert any(term in top_tokens for term in concept.terms)

    def test_scores_descending(self, engine, world):
        results = engine.search(world.concepts[0].phrase, limit=20)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_phrase_search_contains_phrase(self, world, engine):
        concept = next(
            c for c in world.concepts if len(c.terms) >= 2 and not c.is_junk
        )
        results = engine.phrase_search(concept.phrase, limit=5)
        for result in results:
            tokens = engine.tokens(result.doc_id)
            text = " ".join(tokens)
            assert concept.phrase in text

    def test_phrase_result_count_matches_phrase_search(self, world, engine):
        concept = world.concepts[1]
        count = engine.phrase_result_count(concept.phrase)
        results = engine.phrase_search(concept.phrase, limit=10**6)
        assert count == len(results)

    def test_empty_query(self, engine):
        assert engine.search("") == []
        assert engine.phrase_search("") == []
        assert engine.phrase_result_count("") == 0

    def test_result_count_free_query(self, engine, world):
        concept = world.concepts[2]
        assert engine.result_count(concept.phrase) >= engine.phrase_result_count(
            concept.phrase
        )

    def test_general_concepts_more_results(self, world, engine):
        regular = [c for c in world.concepts if not c.is_junk]
        specific = [c for c in regular if c.specificity > 0.85]
        general = [c for c in regular if c.specificity < 0.4]
        assert specific and general
        mean_specific = np.mean(
            [engine.phrase_result_count(c.phrase) for c in specific]
        )
        mean_general = np.mean(
            [engine.phrase_result_count(c.phrase) for c in general]
        )
        assert mean_general > mean_specific


class TestSnippets:
    def test_window_centred_on_phrase(self):
        tokens = ["w%d" % i for i in range(100)]
        tokens[50:52] = ["target", "phrase"]
        snippet = make_snippet(tokens, ["target", "phrase"], window=10)
        assert "target phrase" in snippet
        assert len(snippet.split()) == 10

    def test_fallback_to_any_term(self):
        tokens = ["a", "b", "target", "c"]
        snippet = make_snippet(tokens, ["target", "missing"], window=4)
        assert "target" in snippet

    def test_no_match_starts_at_beginning(self):
        tokens = ["a", "b", "c", "d"]
        snippet = make_snippet(tokens, ["zzz"], window=2)
        assert snippet == "a b"

    def test_short_document(self):
        assert make_snippet(["only"], ["only"], window=10) == "only"

    def test_service_returns_snippets_containing_topic_words(self, world, engine):
        service = SnippetService(engine)
        concept = max(
            (c for c in world.concepts if not c.is_junk and len(c.terms) >= 2),
            key=lambda c: c.interestingness,
        )
        snippets = service.snippets_for_phrase(concept.phrase, limit=20)
        assert snippets
        assert any(concept.terms[0] in s.split() for s in snippets)

    @given(st.integers(2, 40))
    @settings(max_examples=10, deadline=None)
    def test_window_size_respected(self, window):
        tokens = ["w%d" % i for i in range(80)]
        snippet = make_snippet(tokens, ["w40"], window=window)
        assert len(snippet.split()) == window


class TestPrisma:
    def test_returns_capped_feedback(self, world, engine):
        prisma = PrismaTool(engine)
        concept = max(
            (c for c in world.concepts if not c.is_junk),
            key=lambda c: c.interestingness,
        )
        feedback = prisma.feedback(concept.phrase)
        assert 0 < len(feedback) <= 20
        terms = [t for t, __ in feedback]
        # query terms excluded
        assert not set(terms) & set(concept.terms)

    def test_scores_descending(self, world, engine):
        prisma = PrismaTool(engine)
        feedback = prisma.feedback(world.concepts[0].phrase)
        scores = [s for __, s in feedback]
        assert scores == sorted(scores, reverse=True)

    def test_feedback_contains_topic_words(self, world, engine):
        prisma = PrismaTool(engine, feedback_terms=20)
        concept = max(
            (c for c in world.concepts if not c.is_junk and c.home_topics),
            key=lambda c: c.interestingness,
        )
        feedback = {t for t, __ in prisma.feedback(concept.phrase)}
        topic_words = set()
        for topic_id in concept.home_topics:
            topic_words.update(world.topics[topic_id].words)
        assert feedback & topic_words


class TestSuggestions:
    def test_suggestions_contain_phrase(self, world):
        log = query_log_for_world(world)
        service = SuggestionService(log)
        concept = max(
            (c for c in world.concepts if not c.is_junk),
            key=lambda c: log.freq_exact(c.terms),
        )
        suggestions = service.suggest(concept.phrase)
        assert suggestions
        for text, frequency in suggestions:
            assert concept.phrase in text
            assert frequency > 0

    def test_exact_query_excluded(self):
        log = QueryLog.from_strings({"global warming": 10, "global warming facts": 3})
        suggestions = SuggestionService(log).suggest("global warming")
        assert ("global warming", 10) not in suggestions
        assert ("global warming facts", 3) in suggestions

    def test_cap_respected(self):
        queries = {f"base q{i}": i + 1 for i in range(50)}
        log = QueryLog.from_strings(queries)
        service = SuggestionService(log, max_suggestions=10)
        assert len(service.suggest("base")) == 10

    def test_sorted_by_frequency(self):
        log = QueryLog.from_strings({"x a": 1, "x b": 9, "x c": 5})
        suggestions = SuggestionService(log).suggest("x")
        assert [f for __, f in suggestions] == [9, 5, 1]

    def test_empty_phrase(self):
        log = QueryLog.from_strings({"a": 1})
        assert SuggestionService(log).suggest("") == []
