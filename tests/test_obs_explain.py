"""Score explanations: exactness, order-invariance, serialization.

The explanation contract is strict: the explain path reproduces the
non-explaining ranking bit for bit (same floats, same order), and every
contribution list sums back to the RankSVM decision score within 1e-9.
"""

import json

import numpy as np
import pytest

from repro.features import RelevanceModel
from repro.obs import MetricsRegistry, Tracer
from repro.obs.explain import (
    ExplainableRanker,
    FeatureContribution,
    RankExplanation,
    feature_group_of,
)
from repro.ranking import RankSVM
from repro.ranking.model import FeatureAssembler
from repro.runtime import (
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
)


class TestFeatureContributions:
    def _fitted(self, kernel="linear"):
        svm = RankSVM(epochs=40, kernel=kernel)
        rng = np.random.default_rng(7)
        X = rng.normal(size=(40, 6))
        svm.fit(X, X[:, 0], np.repeat(np.arange(8), 5))
        return svm, rng.normal(size=(25, 6))

    def test_rows_sum_to_decision_function(self):
        svm, X = self._fitted()
        contributions = svm.feature_contributions(X)
        assert contributions.shape == X.shape
        np.testing.assert_allclose(
            contributions.sum(axis=1),
            svm.decision_function(X),
            atol=1e-9,
            rtol=0,
        )

    def test_zero_weight_column_contributes_zero(self):
        svm, X = self._fitted()
        svm.weights_ = svm.weights_.copy()
        svm.weights_[2] = 0.0
        contributions = svm.feature_contributions(X)
        assert np.all(contributions[:, 2] == 0.0)
        # standardized values stay meaningful even with a zero weight
        standardized = svm.standardize(X)
        assert np.any(standardized[:, 2] != 0.0)

    def test_rbf_kernel_refuses(self):
        svm, X = self._fitted(kernel="rbf")
        assert not svm.is_linear
        with pytest.raises(ValueError):
            svm.feature_contributions(X)

    def test_unfitted_refuses(self):
        with pytest.raises(RuntimeError):
            RankSVM().feature_contributions(np.zeros((1, 3)))


class TestFeatureGroups:
    def test_taxonomy_and_relevance_groups(self):
        assert feature_group_of("type:person") == "taxonomy"
        assert feature_group_of("type:none") == "taxonomy"
        assert feature_group_of("relevance") == "relevance"
        assert feature_group_of("no_such_feature") == "other"

    def test_known_features_map_to_table1_groups(self):
        from repro.features.interestingness import FEATURE_GROUPS

        for group, names in FEATURE_GROUPS.items():
            for name in names:
                if name == "high_level_type":
                    continue  # expands to type:* columns
                assert feature_group_of(name) == group


@pytest.fixture(scope="module")
def serving(env_world, env_extractor, env_miner, env_pipeline):
    phrases = [c.phrase for c in env_world.concepts]
    interestingness = QuantizedInterestingnessStore.build(env_extractor, phrases)
    model = RelevanceModel.mine_all(env_miner, phrases[:30])
    relevance = PackedRelevanceStore.build(model)
    svm = RankSVM(epochs=30)
    rng = np.random.default_rng(0)
    X = rng.normal(size=(40, 16))
    svm.fit(X, X[:, 0], np.repeat(np.arange(8), 5))
    return env_pipeline, interestingness, relevance, svm


def _service(serving, **kwargs):
    pipeline, interestingness, relevance, svm = serving
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("tracer", Tracer(sample_every=0))
    return RankerService(pipeline, interestingness, relevance, svm, **kwargs)


class TestExplainableRanker:
    def test_order_and_scores_identical_to_plain_path(
        self, serving, env_stories
    ):
        service = _service(serving)
        for story in env_stories[:4]:
            plain = service.process(story.text, top=10)
            ranked, explanations = service.process(
                story.text, top=10, explain=True
            )
            assert [(d.phrase, d.score) for d in plain] == [
                (d.phrase, d.score) for d in ranked
            ]
            assert len(explanations) == len(ranked)

    def test_explanations_align_and_sum_exactly(self, serving, env_stories):
        service = _service(serving)
        ranked, explanations = service.process(
            env_stories[0].text, explain=True
        )
        assert ranked, "story must produce rankable detections"
        for index, (detection, explanation) in enumerate(
            zip(ranked, explanations)
        ):
            assert explanation.phrase == detection.phrase
            assert explanation.rank == index
            assert explanation.score == detection.score
            assert abs(
                explanation.contribution_sum() - explanation.decision_score
            ) < 1e-9
            assert (
                explanation.decision_score + explanation.tie_break
                == pytest.approx(explanation.score, abs=1e-12)
            )

    def test_group_totals_fold_the_contributions(self, serving, env_stories):
        service = _service(serving)
        __, explanations = service.process(env_stories[0].text, explain=True)
        explanation = explanations[0]
        groups = explanation.group_contributions()
        assert sum(groups.values()) == pytest.approx(
            explanation.contribution_sum(), abs=1e-9
        )
        assert "relevance" in groups  # the appended relevance column

    def test_to_dict_json_round_trip(self, serving, env_stories):
        service = _service(serving)
        __, explanations = service.process(
            env_stories[0].text, top=3, explain=True
        )
        payload = json.loads(json.dumps([e.to_dict() for e in explanations]))
        assert payload[0]["rank"] == 0
        first = payload[0]["contributions"][0]
        assert set(first) == {
            "name", "group", "value", "standardized", "weight", "contribution"
        }
        assert payload[0]["groups"]

    def test_empty_document_explains_to_nothing(self, serving):
        service = _service(serving)
        ranked, explanations = service.process("", explain=True)
        assert ranked == []
        assert explanations == []

    def test_sampled_trace_carries_explanations(self, serving, env_stories):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, sample_every=1)
        service = _service(serving, registry=registry, tracer=tracer)
        service.process(env_stories[0].text, top=2, explain=True)
        assert len(tracer.recent) == 1
        meta = tracer.recent[0]["meta"]
        assert len(meta["explanations"]) <= 2
        assert meta["explanations"][0]["contributions"]

    def test_plain_process_keeps_legacy_return_shape(
        self, serving, env_stories
    ):
        service = _service(serving)
        result = service.process(env_stories[0].text, top=5)
        assert isinstance(result, list)  # not a tuple

    def test_direct_ranker_matches_concept_ranker(
        self, serving, env_stories, env_pipeline
    ):
        """ExplainableRanker standalone reproduces ConceptRanker exactly."""
        from repro.ranking.model import ConceptRanker

        __, interestingness, relevance, svm = serving
        assembler = FeatureAssembler(
            extractor=interestingness, relevance_scorer=relevance
        )
        plain = ConceptRanker(assembler, svm)
        explaining = ExplainableRanker(assembler, svm)
        annotated = env_pipeline.process(env_stories[1].text)
        known = [
            d for d in annotated.rankable() if d.phrase in interestingness
        ]
        from repro.detection.pipeline import AnnotatedDocument

        pruned = AnnotatedDocument(text=annotated.text, detections=known)
        expected = plain.rank_document(pruned)
        ranked, explanations = explaining.explain_document(pruned)
        assert [(d.phrase, d.score) for d in expected] == [
            (d.phrase, d.score) for d in ranked
        ]

    def test_rbf_service_raises_on_explain(self, serving, env_stories):
        pipeline, interestingness, relevance, __ = serving
        svm = RankSVM(epochs=20, kernel="rbf", n_components=32)
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 16))
        svm.fit(X, X[:, 0], np.repeat(np.arange(8), 5))
        service = RankerService(
            pipeline, interestingness, relevance, svm,
            registry=MetricsRegistry(), tracer=Tracer(sample_every=0),
        )
        story = next(s for s in env_stories if service.process(s.text))
        with pytest.raises(ValueError):
            service.process(story.text, explain=True)


class TestExplanationDataclasses:
    def test_contribution_sum_and_dict(self):
        contributions = [
            FeatureContribution("a", "other", 1.0, 0.5, 2.0, 1.0),
            FeatureContribution("b", "other", 2.0, -0.5, 1.0, -0.5),
        ]
        explanation = RankExplanation(
            phrase="x", rank=0, score=0.5, decision_score=0.5,
            tie_break=0.0, relevance=3.0, contributions=contributions,
        )
        assert explanation.contribution_sum() == 0.5
        assert explanation.group_contributions() == {"other": 0.5}
        assert explanation.to_dict()["phrase"] == "x"
