"""Tests for temporal query logs, world events, and trend features."""

import numpy as np
import pytest

from repro.querylog import (
    QueryLog,
    TemporalQueryLog,
    WorldEvent,
    event_boosts,
    generate_temporal_query_log,
    generate_world_events,
)
from repro.querylog.temporal import boosted_concepts


class TestWorldEvents:
    def test_generation_within_bounds(self, env_world):
        rng = np.random.default_rng(0)
        events = generate_world_events(rng, env_world.concepts, weeks=6)
        assert events
        for event in events:
            assert 0 <= event.week < 6
            assert event.intensity >= 2.0
            assert not env_world.concepts[event.concept_id].is_junk

    def test_event_boosts_by_week(self):
        events = [
            WorldEvent(week=1, concept_id=5, intensity=3.0),
            WorldEvent(week=1, concept_id=5, intensity=4.0),
            WorldEvent(week=2, concept_id=7, intensity=2.0),
        ]
        boosts = event_boosts(events, 1)
        assert boosts == {5: 4.0}  # max intensity wins
        assert event_boosts(events, 0) == {}

    def test_boosted_concepts(self, env_world):
        concept = next(c for c in env_world.concepts if not c.is_junk)
        boosted = boosted_concepts(env_world.concepts, {concept.concept_id: 3.0})
        replacement = boosted[concept.concept_id]
        assert replacement.interestingness == pytest.approx(
            min(1.0, concept.interestingness * 3.0)
        )
        # untouched concepts are the same objects
        other = (concept.concept_id + 1) % len(env_world.concepts)
        assert boosted[other] is env_world.concepts[other]


class TestTemporalQueryLog:
    def make(self, volumes):
        logs = [QueryLog.from_strings({"spiky concept": v, "base": 50}) for v in volumes]
        return TemporalQueryLog(logs)

    def test_requires_weeks(self):
        with pytest.raises(ValueError):
            TemporalQueryLog([])

    def test_weekly_frequencies(self):
        temporal = self.make([10, 20, 30])
        assert temporal.weekly_frequencies(("spiky", "concept")) == [10, 20, 30]

    def test_spike_ratio_flat_is_one(self):
        temporal = self.make([50, 50, 50, 50, 50])
        assert temporal.spike_ratio(("spiky", "concept")) == pytest.approx(1.0)

    def test_spike_ratio_detects_burst(self):
        temporal = self.make([10, 10, 10, 10, 200])
        assert temporal.spike_ratio(("spiky", "concept")) > 10.0

    def test_spike_ratio_cold_concept_near_one(self):
        temporal = self.make([10, 10, 10])
        assert temporal.spike_ratio(("never", "seen")) == pytest.approx(1.0)

    def test_momentum_signs(self):
        temporal = self.make([10, 100, 5])
        assert temporal.momentum(("spiky", "concept"), week=1) > 0
        assert temporal.momentum(("spiky", "concept"), week=2) < 0

    def test_momentum_first_week(self):
        temporal = self.make([10])
        assert temporal.momentum(("spiky", "concept"), week=0) > 0

    def test_latest(self):
        temporal = self.make([1, 2, 3])
        assert temporal.latest.freq_phrase_contained(("spiky", "concept")) == 3


class TestGenerateTemporalLog:
    def test_event_week_spikes_volume(self, env_world):
        rng = np.random.default_rng(3)
        concept = max(
            (c for c in env_world.concepts if not c.is_junk),
            key=lambda c: c.interestingness * (c.interestingness < 0.4),
        )
        events = [WorldEvent(week=2, concept_id=concept.concept_id, intensity=6.0)]
        temporal = generate_temporal_query_log(
            rng,
            env_world.concepts,
            env_world.topics,
            env_world.vocabulary,
            weeks=4,
            events=events,
            noise_query_count=500,
        )
        volumes = temporal.weekly_frequencies(tuple(concept.terms))
        quiet = [v for week, v in enumerate(volumes) if week != 2]
        assert volumes[2] > max(quiet)
        assert temporal.spike_ratio(tuple(concept.terms), week=2) > 1.5

    def test_weeks_are_independent_draws(self, env_world):
        rng = np.random.default_rng(4)
        temporal = generate_temporal_query_log(
            rng,
            env_world.concepts[:50],
            env_world.topics,
            env_world.vocabulary,
            weeks=2,
            noise_query_count=200,
        )
        assert len(temporal) == 2
        assert dict(temporal.week(0).items()) != dict(temporal.week(1).items())
