"""Tests for query-intent classification (Broder taxonomy extension)."""

import pytest

from repro.querylog import (
    INTENT_INFORMATIONAL,
    INTENT_NAVIGATIONAL,
    INTENT_TRANSACTIONAL,
    INTENTS,
    IntentClassifier,
    IntentProfile,
    QueryLog,
    classify_query,
)


class TestClassifyQuery:
    def test_transactional(self):
        assert classify_query(["buy", "jaguar"]) == INTENT_TRANSACTIONAL
        assert classify_query(["jaguar", "price"]) == INTENT_TRANSACTIONAL

    def test_navigational(self):
        assert classify_query(["jaguar", "official", "site"]) == INTENT_NAVIGATIONAL
        assert classify_query(["www", "jaguar"]) == INTENT_NAVIGATIONAL

    def test_informational_marked(self):
        assert classify_query(["what", "is", "jaguar"]) == INTENT_INFORMATIONAL
        assert classify_query(["jaguar", "history"]) == INTENT_INFORMATIONAL

    def test_unmarked_defaults_informational(self):
        assert classify_query(["jaguar", "speed"]) == INTENT_INFORMATIONAL

    def test_transactional_beats_navigational(self):
        assert classify_query(["buy", "www", "jaguar"]) == INTENT_TRANSACTIONAL

    def test_case_insensitive(self):
        assert classify_query(["BUY", "Jaguar"]) == INTENT_TRANSACTIONAL


class TestIntentProfile:
    def make(self):
        return IntentProfile(
            phrase="jaguar",
            volume={
                INTENT_NAVIGATIONAL: 10,
                INTENT_TRANSACTIONAL: 30,
                INTENT_INFORMATIONAL: 60,
            },
        )

    def test_fractions(self):
        profile = self.make()
        assert profile.fraction(INTENT_TRANSACTIONAL) == pytest.approx(0.3)
        assert sum(profile.fraction(i) for i in INTENTS) == pytest.approx(1.0)

    def test_dominant(self):
        assert self.make().dominant() == INTENT_INFORMATIONAL

    def test_empty_profile(self):
        profile = IntentProfile("x", {i: 0 for i in INTENTS})
        assert profile.fraction(INTENT_NAVIGATIONAL) == 0.0
        assert profile.dominant() == INTENT_INFORMATIONAL

    def test_unknown_intent_rejected(self):
        with pytest.raises(KeyError):
            self.make().fraction("curious")


class TestIntentClassifier:
    def test_profile_from_log(self):
        log = QueryLog.from_strings(
            {
                "buy jaguar": 20,
                "jaguar price": 10,
                "jaguar official site": 5,
                "jaguar habitat": 65,
            }
        )
        classifier = IntentClassifier(log)
        profile = classifier.profile(("jaguar",))
        assert profile.volume[INTENT_TRANSACTIONAL] == 30
        assert profile.volume[INTENT_NAVIGATIONAL] == 5
        assert profile.volume[INTENT_INFORMATIONAL] == 65

    def test_intent_features_sum_to_one(self):
        log = QueryLog.from_strings({"buy x": 1, "x facts": 3})
        nav, trans, info = IntentClassifier(log).intent_features(("x",))
        assert nav + trans + info == pytest.approx(1.0)
        assert trans == pytest.approx(0.25)

    def test_unseen_phrase_zero_profile(self):
        classifier = IntentClassifier(QueryLog.from_strings({"a": 1}))
        assert classifier.profile(("unseen",)).total == 0

    def test_products_skew_transactional_in_world(self, env_world, env_log):
        """The generator's type-conditioned markers must be recoverable."""
        classifier = IntentClassifier(env_log)
        products = [
            c for c in env_world.concepts if c.taxonomy_type == "product"
        ]
        animals = [
            c for c in env_world.concepts if c.taxonomy_type == "animal"
        ]
        if not products or not animals:
            pytest.skip("seed lacks products or animals")

        def mean_fraction(concepts, intent):
            values = []
            for concept in concepts:
                profile = classifier.profile(tuple(concept.terms))
                if profile.total > 0:
                    values.append(profile.fraction(intent))
            return sum(values) / len(values) if values else 0.0

        assert mean_fraction(products, INTENT_TRANSACTIONAL) > mean_fraction(
            animals, INTENT_TRANSACTIONAL
        )
