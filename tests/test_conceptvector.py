"""Tests for the concept-vector baseline scorer (paper Section II-B)."""

import pytest

from repro.detection import ConceptVectorScorer
from repro.querylog import QueryLog, UnitMiner
from repro.text.vectorize import DocumentFrequencyTable


def make_scorer(**kwargs):
    """A small handmade scorer: corpus + query log with known structure."""
    table = DocumentFrequencyTable()
    corpus = [
        ["cuba", "talks", "havana", "embargo"],
        ["cuba", "election", "politics"],
        ["weather", "report", "sunny"],
        ["global", "warming", "climate", "science"],
        ["global", "markets", "economy"],
        ["sports", "game", "score"],
        ["music", "album", "band"],
        ["movie", "review", "cinema"],
    ]
    for doc in corpus:
        table.add_document(doc)
    log = QueryLog.from_strings(
        {
            "global warming": 60,
            "global warming facts": 10,
            "cuba": 40,
            "havana": 5,
            "weather": 80,
            "sports": 70,
            "music": 75,
            "movie": 65,
            "economy": 30,
        }
    )
    lexicon = UnitMiner(min_pair_count=3, mi_threshold=0.3).mine(log)
    return ConceptVectorScorer(table, lexicon, **kwargs), lexicon


class TestComponentVectors:
    def test_term_vector_normalized_and_stopword_free(self):
        scorer, __ = make_scorer()
        vector = scorer.term_vector(
            ["the", "cuba", "cuba", "talks", "with", "havana"]
        )
        assert "the" not in vector
        assert "with" not in vector
        assert max(w for __, w in vector.items()) == pytest.approx(1.0)

    def test_unit_vector_contains_mined_unit(self):
        scorer, lexicon = make_scorer()
        assert ("global", "warming") in lexicon
        vector = scorer.unit_vector(["global", "warming", "is", "real"])
        assert "global warming" in vector

    def test_unit_vector_empty_when_no_units(self):
        scorer, __ = make_scorer()
        vector = scorer.unit_vector(["zzz", "qqq"])
        assert len(vector) == 0


class TestMerge:
    def test_term_only_entries_punished(self):
        scorer, __ = make_scorer()
        # 'havana' is in corpus docs but a cold query (low unit score)
        text = "cuba talks havana embargo"
        merged = scorer.concept_vector(text)
        terms = scorer.term_vector(["cuba", "talks", "havana", "embargo"])
        # havana should appear with punished weight if it is term-only
        if "havana" in merged and "havana" not in scorer.unit_vector(
            ["cuba", "talks", "havana", "embargo"]
        ):
            assert merged["havana"] == pytest.approx(
                terms["havana"] * scorer.punish_factor
            )

    def test_both_vectors_sum(self):
        scorer, __ = make_scorer()
        tokens = ["cuba", "talks", "embargo"]
        terms = scorer.term_vector(tokens)
        units = scorer.unit_vector(tokens)
        merged = scorer.concept_vector("cuba talks embargo")
        if "cuba" in terms and "cuba" in units:
            assert merged["cuba"] == pytest.approx(terms["cuba"] + units["cuba"])

    def test_multi_term_bubbles_up(self):
        scorer, __ = make_scorer()
        text = "global warming is changing climate science says report"
        merged = scorer.concept_vector(text)
        assert "global warming" in merged
        # the multi-term concept must outrank each of its parts
        assert merged["global warming"] > merged.get("global", 0.0)
        assert merged["global warming"] > merged.get("warming", 0.0)

    def test_multi_term_bonus_can_be_disabled(self):
        scorer_on, __ = make_scorer(multi_term_bonus=True)
        scorer_off, __ = make_scorer(multi_term_bonus=False)
        text = "global warming is changing climate science says report"
        with_bonus = scorer_on.concept_vector(text)["global warming"]
        without = scorer_off.concept_vector(text)["global warming"]
        assert with_bonus > without

    def test_max_weight_bound(self):
        """Paper: max final weight <= 2 x number of terms in the concept."""
        scorer, __ = make_scorer()
        text = "global warming climate science global warming"
        merged = scorer.concept_vector(text)
        for phrase, weight in merged.items():
            assert weight <= 2.0 * max(1, len(phrase.split())) + 1e-9

    def test_top_concepts_ordering(self):
        scorer, __ = make_scorer()
        text = "global warming is changing climate science says the report"
        top = scorer.top_concepts(text, count=3)
        assert top[0][0] == "global warming"
        scores = [s for __, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_score_phrase_absent(self):
        scorer, __ = make_scorer()
        vector = scorer.concept_vector("cuba talks")
        assert scorer.score_phrase(vector, "never seen") == 0.0


class TestOnWorld:
    def test_relevant_concepts_outrank_offtopic(
        self, env_world, env_scorer, env_stories
    ):
        """On-topic embedded concepts should usually beat off-topic ones."""
        by_id = {c.concept_id: c for c in env_world.concepts}
        wins = losses = 0
        for story in env_stories:
            vector = env_scorer.concept_vector(story.text)
            relevant, offtopic = [], []
            for mention in story.mentions:
                concept = by_id[mention.concept_id]
                score = vector.get(concept.phrase.lower(), 0.0)
                if mention.relevance >= 0.75:
                    relevant.append(score)
                elif not concept.is_junk:
                    offtopic.append(score)
            for r in relevant:
                for o in offtopic:
                    if r > o:
                        wins += 1
                    elif o > r:
                        losses += 1
        assert wins + losses > 0
        assert wins / (wins + losses) > 0.5
