"""Tests for the query log container, generator, and unit mining."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import SyntheticWorld, WorldConfig
from repro.querylog import QueryLog, UnitMiner, query_log_for_world

TINY_WORLD = WorldConfig(
    seed=5,
    vocabulary_size=1000,
    topic_count=6,
    words_per_topic=40,
    concept_count=120,
    topic_page_count=40,
)


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.build(TINY_WORLD)


@pytest.fixture(scope="module")
def log(world):
    return query_log_for_world(world)


class TestQueryLog:
    def test_from_strings(self):
        log = QueryLog.from_strings({"global warming": 10, "warming": 3})
        assert log.freq_exact(("global", "warming")) == 10
        assert log.freq_exact(("warming",)) == 3

    def test_freq_phrase_contained_counts_supersets(self):
        log = QueryLog.from_strings(
            {"global warming": 10, "global warming effects": 4, "warming": 3}
        )
        assert log.freq_phrase_contained(("global", "warming")) == 14
        assert log.freq_phrase_contained(("warming",)) == 17

    def test_contained_requires_contiguous_order(self):
        log = QueryLog.from_strings({"warming global": 5})
        assert log.freq_phrase_contained(("global", "warming")) == 0

    def test_queries_containing(self):
        log = QueryLog.from_strings({"a b": 2, "a b c": 1, "c": 9})
        hits = dict(log.queries_containing(("a", "b")))
        assert hits == {("a", "b"): 2, ("a", "b", "c"): 1}

    def test_zero_counts_dropped(self):
        log = QueryLog({("a",): 0, ("b",): 1})
        assert ("a",) not in log
        assert len(log) == 1

    def test_total_submissions(self):
        log = QueryLog.from_strings({"a": 2, "b": 3})
        assert log.total_submissions == 5

    def test_top_queries(self):
        log = QueryLog.from_strings({"a": 1, "b": 5, "c": 3})
        assert log.top_queries(2) == [(("b",), 5), (("c",), 3)]

    @given(
        st.dictionaries(
            st.tuples(st.sampled_from("abcd"), st.sampled_from("abcd")),
            st.integers(1, 50),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=30)
    def test_exact_never_exceeds_contained(self, counts):
        log = QueryLog(counts)
        for terms, __ in counts.items():
            assert log.freq_exact(terms) <= log.freq_phrase_contained(terms)


class TestGenerator:
    def test_deterministic(self, world):
        a = query_log_for_world(world)
        b = query_log_for_world(world)
        assert dict(a.items()) == dict(b.items())

    def test_interesting_concepts_searched_more(self, world, log):
        hot = [c for c in world.concepts if c.interestingness > 0.6 and not c.is_junk]
        dull = [c for c in world.concepts if c.interestingness < 0.1 and not c.is_junk]
        assert hot and dull
        hot_mean = np.mean([log.freq_exact(c.terms) for c in hot])
        dull_mean = np.mean([log.freq_exact(c.terms) for c in dull])
        assert hot_mean > dull_mean

    def test_junk_has_high_containment_low_exact_ratio(self, world, log):
        junk = world.junk_concepts()
        assert junk
        for concept in junk:
            contained = log.freq_phrase_contained(concept.terms)
            assert contained > 0
            # junk rides inside longer queries far more than it is typed alone
            assert contained > 2 * log.freq_exact(concept.terms)

    def test_refinements_present_for_popular_concepts(self, world, log):
        popular = max(
            (c for c in world.concepts if not c.is_junk),
            key=lambda c: log.freq_exact(c.terms),
        )
        hits = log.queries_containing(popular.terms)
        longer = [q for q, __ in hits if len(q) > len(popular.terms)]
        assert longer


class TestUnitMiner:
    def test_mines_known_bigram(self):
        log = QueryLog.from_strings(
            {
                "global warming": 50,
                "global warming effects": 10,
                "global": 5,
                "warming": 4,
                "stock market": 30,
                "market": 8,
                "weather": 20,
            }
        )
        lexicon = UnitMiner(min_pair_count=3, mi_threshold=0.5).mine(log)
        assert ("global", "warming") in lexicon
        assert ("stock", "market") in lexicon
        assert lexicon.score(("global", "warming")) > 0

    def test_rare_pair_rejected(self):
        log = QueryLog.from_strings({"rare pair": 1, "rare": 50, "pair": 50})
        lexicon = UnitMiner(min_pair_count=5, mi_threshold=0.5).mine(log)
        assert ("rare", "pair") not in lexicon

    def test_independent_pair_rejected(self):
        # "a" and "b" both frequent alone; "a b" no more than chance
        queries = {"a x": 100, "b y": 100, "a b": 2, "x": 30, "y": 30}
        lexicon = UnitMiner(min_pair_count=1, mi_threshold=2.0).mine(log := QueryLog.from_strings(queries))
        assert ("a", "b") not in lexicon or lexicon.get(("a", "b")).mutual_information < 2.5

    @staticmethod
    def _nyc_log():
        return QueryLog.from_strings(
            {
                "new york city": 40,
                "new york": 25,
                "city": 5,
                "tour": 10,
                # background volume so containment probabilities are small
                "weather": 150,
                "sports": 150,
                "music": 150,
            }
        )

    def test_trigram_units(self):
        lexicon = UnitMiner(min_pair_count=3, mi_threshold=0.5).mine(self._nyc_log())
        assert ("new", "york") in lexicon
        assert ("new", "york", "city") in lexicon

    def test_scores_normalized(self, log):
        lexicon = UnitMiner().mine(log)
        for unit in lexicon.units():
            assert 0.0 <= unit.score <= 1.0

    def test_world_concepts_recovered_as_units(self, world, log):
        lexicon = UnitMiner().mine(log)
        multi = [
            c
            for c in world.concepts
            if len(c.terms) > 1 and not c.is_junk and log.freq_exact(c.terms) >= 20
        ]
        assert multi
        recovered = sum(1 for c in multi if tuple(c.terms) in lexicon)
        assert recovered / len(multi) > 0.8

    def test_segment_greedy_longest(self):
        lexicon = UnitMiner(min_pair_count=3, mi_threshold=0.5).mine(self._nyc_log())
        segments = lexicon.segment(["new", "york", "city", "tour"])
        assert segments[0] == ("new", "york", "city")
        assert segments[1] == ("tour",)

    def test_segment_unknown_words_are_singletons(self, log):
        lexicon = UnitMiner().mine(log)
        segments = lexicon.segment(["zzzunknown", "wordszzz"])
        assert segments == [("zzzunknown",), ("wordszzz",)]

    def test_segment_covers_input(self, log):
        lexicon = UnitMiner().mine(log)
        words = ["a", "b", "c", "d", "e"]
        segments = lexicon.segment(words)
        flattened = [w for seg in segments for w in seg]
        assert flattened == words
