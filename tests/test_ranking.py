"""Tests for pair construction, RankSVM, and baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking import (
    KERNEL_RBF,
    RandomFourierFeatures,
    RankSVM,
    StandardScaler,
    build_pairs,
    jitter_ties,
    random_scores,
    tie_break_by_relevance,
)


def make_synthetic_ranking(
    n_groups=40, per_group=6, n_features=5, noise=0.05, seed=0
):
    """Instances whose labels are a noisy linear function of features."""
    rng = np.random.default_rng(seed)
    true_w = rng.normal(size=n_features)
    X, y, g = [], [], []
    for group in range(n_groups):
        feats = rng.normal(size=(per_group, n_features))
        labels = feats @ true_w + rng.normal(scale=noise, size=per_group)
        X.append(feats)
        y.extend(labels)
        g.extend([group] * per_group)
    return np.vstack(X), np.asarray(y), np.asarray(g), true_w


class TestBuildPairs:
    def test_basic_pairs(self):
        X = np.array([[1.0], [0.0], [2.0]])
        pairs = build_pairs(X, [0.3, 0.1, 0.2], [0, 0, 0])
        assert pairs.count == 3
        # every difference must point from preferred to other
        assert (pairs.weights > 0).all()

    def test_cross_group_pairs_excluded(self):
        X = np.zeros((4, 1))
        pairs = build_pairs(X, [1.0, 0.0, 1.0, 0.0], [0, 0, 1, 1])
        assert pairs.count == 2

    def test_min_label_gap(self):
        X = np.zeros((2, 1))
        assert build_pairs(X, [0.10, 0.09], [0, 0], min_label_gap=0.05).count == 0
        assert build_pairs(X, [0.20, 0.09], [0, 0], min_label_gap=0.05).count == 1

    def test_equal_labels_no_pair(self):
        X = np.zeros((2, 1))
        assert build_pairs(X, [0.5, 0.5], [0, 0]).count == 0

    def test_max_pairs_per_group(self):
        X = np.zeros((30, 1))
        labels = np.arange(30, dtype=float)
        pairs = build_pairs(X, labels, np.zeros(30), max_pairs_per_group=50)
        assert pairs.count == 50

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_pairs(np.zeros((2, 1)), [1.0], [0, 0])

    def test_empty(self):
        pairs = build_pairs(np.zeros((0, 3)), [], [])
        assert pairs.count == 0
        assert pairs.differences.shape == (0, 3)

    @given(st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_difference_sign_property(self, per_group, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(per_group, 3))
        labels = rng.random(per_group)
        pairs = build_pairs(X, labels, np.zeros(per_group))
        # reconstruct: each difference must equal x_hi - x_lo for labels hi>lo
        for diff, weight in zip(pairs.differences, pairs.weights):
            assert weight > 0


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        scaled = StandardScaler().fit(X).transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0]])
        scaled = StandardScaler().fit(X).transform(X)
        assert np.isfinite(scaled).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_transform_does_not_mutate_input(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        original = X.copy()
        scaler = StandardScaler().fit(X)
        scaled = scaler.transform(X)
        assert np.array_equal(X, original)
        assert scaled is not X
        assert np.array_equal(scaled, (original - scaler.mean_) / scaler.scale_)


class TestRandomFourierFeatures:
    def test_shape(self):
        X = np.random.default_rng(0).normal(size=(10, 4))
        mapped = RandomFourierFeatures(n_components=64).fit(X).transform(X)
        assert mapped.shape == (10, 64)

    def test_kernel_approximation(self):
        """z(x).z(y) should approximate exp(-gamma ||x-y||^2)."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 3))
        gamma = 0.5
        mapped = (
            RandomFourierFeatures(gamma=gamma, n_components=4000, seed=5)
            .fit(X)
            .transform(X)
        )
        approx = mapped @ mapped.T
        sq_dists = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
        exact = np.exp(-gamma * sq_dists)
        assert np.abs(approx - exact).max() < 0.12

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomFourierFeatures().transform(np.zeros((2, 2)))


class TestRankSVMLinear:
    def test_learns_linear_ranking(self):
        X, y, g, __ = make_synthetic_ranking(seed=3)
        model = RankSVM(epochs=200).fit(X, y, g)
        accuracy = model.pairwise_accuracy(X, y, g)
        assert accuracy > 0.9

    def test_generalizes_to_unseen_groups(self):
        X, y, g, w = make_synthetic_ranking(n_groups=60, seed=4)
        train = g < 40
        test = ~train
        model = RankSVM(epochs=200).fit(X[train], y[train], g[train])
        accuracy = model.pairwise_accuracy(X[test], y[test], g[test])
        assert accuracy > 0.85

    def test_rank_returns_permutation(self):
        X, y, g, __ = make_synthetic_ranking(n_groups=5, seed=5)
        model = RankSVM(epochs=50).fit(X, y, g)
        order = model.rank(X[:6])
        assert sorted(order.tolist()) == list(range(6))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RankSVM().decision_function(np.zeros((2, 3)))

    def test_deterministic(self):
        X, y, g, __ = make_synthetic_ranking(seed=6)
        a = RankSVM(epochs=100).fit(X, y, g).decision_function(X[:10])
        b = RankSVM(epochs=100).fit(X, y, g).decision_function(X[:10])
        assert np.allclose(a, b)

    def test_weighted_pairs_option_runs(self):
        X, y, g, __ = make_synthetic_ranking(seed=7)
        model = RankSVM(epochs=100, weight_pairs_by_label_gap=True).fit(X, y, g)
        assert model.pairwise_accuracy(X, y, g) > 0.85

    def test_no_pairs_graceful(self):
        X = np.zeros((3, 2))
        model = RankSVM().fit(X, [0.5, 0.5, 0.5], [0, 0, 0])
        assert np.allclose(model.decision_function(X), 0.0)

    def test_unknown_kernel_rejected(self):
        X, y, g, __ = make_synthetic_ranking(n_groups=3, seed=0)
        with pytest.raises(ValueError):
            RankSVM(kernel="poly").fit(X, y, g)


class TestRankSVMRBF:
    def test_learns_nonlinear_ranking(self):
        """Labels depend on ||x||: linearly inseparable, RBF should win."""
        rng = np.random.default_rng(8)
        X, y, g = [], [], []
        for group in range(60):
            feats = rng.normal(size=(6, 3))
            labels = -np.linalg.norm(feats, axis=1)  # prefer central points
            X.append(feats)
            y.extend(labels)
            g.extend([group] * 6)
        X, y, g = np.vstack(X), np.asarray(y), np.asarray(g)
        linear = RankSVM(epochs=150).fit(X, y, g)
        rbf = RankSVM(
            kernel=KERNEL_RBF, gamma=0.5, n_components=300, epochs=150
        ).fit(X, y, g)
        assert rbf.pairwise_accuracy(X, y, g) > linear.pairwise_accuracy(X, y, g)
        assert rbf.pairwise_accuracy(X, y, g) > 0.8


class TestBaselines:
    def test_random_scores_shape(self):
        rng = np.random.default_rng(0)
        assert random_scores(5, rng).shape == (5,)

    def test_jitter_preserves_strict_order(self):
        rng = np.random.default_rng(0)
        scores = np.array([3.0, 2.0, 1.0])
        jittered = jitter_ties(scores, rng)
        assert (np.argsort(-jittered) == np.array([0, 1, 2])).all()

    def test_jitter_breaks_ties(self):
        rng = np.random.default_rng(0)
        jittered = jitter_ties(np.array([1.0, 1.0, 1.0]), rng)
        assert len(set(jittered.tolist())) == 3

    def test_tie_break_by_relevance_orders_ties(self):
        scores = np.array([1.0, 1.0])
        relevance = np.array([0.2, 0.9])
        adjusted = tie_break_by_relevance(scores, relevance)
        assert adjusted[1] > adjusted[0]

    def test_tie_break_does_not_flip_strict_order(self):
        scores = np.array([2.0, 1.0])
        relevance = np.array([0.0, 1e9])
        adjusted = tie_break_by_relevance(scores, relevance)
        assert adjusted[0] > adjusted[1]

    def test_tie_break_zero_relevance(self):
        scores = np.array([1.0, 2.0])
        adjusted = tie_break_by_relevance(scores, np.zeros(2))
        assert np.allclose(adjusted, scores)
