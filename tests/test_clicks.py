"""Tests for the click model, tracker, and dataset construction."""

import numpy as np
import pytest

from repro.clicks import (
    ClickDataset,
    ClickModelConfig,
    ClickTracker,
    EntityObservation,
    FilterRules,
    StoryClickRecord,
    UserClickModel,
    build_windows,
    filter_records,
)


def make_observation(phrase="x", position=0, views=100, clicks=5, concept_id=0):
    return EntityObservation(
        phrase=phrase,
        concept_id=concept_id,
        entity_type=None,
        position=position,
        baseline_score=1.0,
        views=views,
        clicks=clicks,
    )


class TestUserClickModel:
    def setup_method(self):
        self.model = UserClickModel(seed=1)

    def test_probability_in_unit_interval(self):
        for i in (0.0, 0.5, 1.0):
            for r in (0.0, 0.5, 1.0):
                for p in (0, 1000, 100000):
                    prob = self.model.click_probability(i, r, p)
                    assert 0.0 <= prob <= 1.0

    def test_monotone_in_interestingness(self):
        low = self.model.click_probability(0.1, 0.8, 0)
        high = self.model.click_probability(0.9, 0.8, 0)
        assert high > low

    def test_monotone_in_relevance(self):
        low = self.model.click_probability(0.8, 0.1, 0)
        high = self.model.click_probability(0.8, 0.9, 0)
        assert high > low

    def test_position_bias(self):
        early = self.model.click_probability(0.8, 0.8, 0)
        late = self.model.click_probability(0.8, 0.8, 8000)
        assert early > late

    def test_noise_floor(self):
        assert self.model.click_probability(0.0, 0.0, 0) == pytest.approx(
            self.model.config.noise_floor
        )

    def test_views_positive_heavy_tail(self):
        views = [self.model.sample_views() for __ in range(500)]
        assert min(views) >= 1
        assert max(views) > 10 * np.median(views)

    def test_clicks_bounded_by_views(self):
        for __ in range(50):
            clicks = self.model.sample_clicks(0.5, 40)
            assert 0 <= clicks <= 40

    def test_entity_clicks_uses_default_relevance(self, env_world):
        concept = env_world.concepts[0]
        clicks = self.model.entity_clicks(concept, None, 0, 1000)
        assert clicks >= 0


class TestClickTracker:
    @pytest.fixture(scope="class")
    def records(self, env_world, env_pipeline):
        tracker = ClickTracker(env_world, env_pipeline, UserClickModel(seed=3))
        stories = env_world.story_generator(seed=8).generate_many(30)
        return tracker.track(stories), env_world

    def test_every_story_reported(self, records):
        reports, __ = records
        assert len(reports) == 30

    def test_views_shared_across_entities(self, records):
        reports, __ = records
        for report in reports:
            for entity in report.entities:
                assert entity.views == report.views

    def test_clicks_bounded(self, records):
        reports, __ = records
        for report in reports:
            for entity in report.entities:
                assert 0 <= entity.clicks <= entity.views

    def test_entities_map_to_concepts(self, records):
        reports, world = records
        valid = {c.phrase.lower() for c in world.concepts}
        for report in reports:
            for entity in report.entities:
                assert entity.phrase in valid

    def test_ctr_property(self):
        entity = make_observation(views=200, clicks=10)
        assert entity.ctr == pytest.approx(0.05)
        zero = make_observation(views=0, clicks=0)
        assert zero.ctr == 0.0

    def test_relevant_interesting_entities_click_more(self, records):
        """Aggregate sanity: latent quality must show up in CTR."""
        reports, world = records
        good, bad = [], []
        for report in reports:
            if report.views < 30:
                continue
            for entity in report.entities:
                concept = world.concepts[entity.concept_id]
                if concept.interestingness > 0.5:
                    good.append(entity.ctr)
                elif concept.interestingness < 0.1:
                    bad.append(entity.ctr)
        assert good and bad
        assert np.mean(good) > np.mean(bad)

    def test_annotate_top_limits(self, env_world, env_pipeline):
        tracker = ClickTracker(
            env_world, env_pipeline, UserClickModel(seed=4), annotate_top=2
        )
        story = env_world.story_generator(seed=9).generate(0)
        report = tracker.track_story(story)
        assert len(report.entities) <= 2


class TestFilters:
    def make_record(self, views=100, n_entities=3, top_clicks=10):
        entities = [
            make_observation(
                phrase=f"e{i}", clicks=top_clicks if i == 0 else 1, views=views
            )
            for i in range(n_entities)
        ]
        return StoryClickRecord(story_id=0, text="x" * 100, views=views,
                                entities=entities)

    def test_keeps_good_record(self):
        assert filter_records([self.make_record()])

    def test_drops_low_views(self):
        assert not filter_records([self.make_record(views=29)])

    def test_drops_single_concept(self):
        assert not filter_records([self.make_record(n_entities=1)])

    def test_drops_no_clicks(self):
        assert not filter_records([self.make_record(top_clicks=3)])

    def test_boundaries(self):
        rules = FilterRules()
        assert filter_records([self.make_record(views=30)], rules)
        assert filter_records([self.make_record(top_clicks=4)], rules)


class TestWindows:
    def make_record(self, length, positions):
        entities = [
            make_observation(phrase=f"e{i}", position=p, clicks=5)
            for i, p in enumerate(positions)
        ]
        return StoryClickRecord(
            story_id=7, text="a" * length, views=100, entities=entities
        )

    def test_short_story_single_window(self):
        record = self.make_record(1000, [10, 500])
        windows = build_windows([record])
        assert len(windows) == 1
        assert windows[0].text == record.text

    def test_long_story_multiple_windows(self):
        record = self.make_record(6000, [100, 2000, 3000, 5500])
        windows = build_windows([record])
        assert len(windows) >= 2
        for window in windows:
            assert len(window.text) <= 2500

    def test_overlap_duplicates_boundary_entities(self):
        # entity at 2200 lives in window [0,2500) and window [2000,4500)
        record = self.make_record(5000, [2200, 2300, 4000, 4100])
        windows = build_windows([record])
        containing = [
            w for w in windows if any(e.position == 2200 for e in w.entities)
        ]
        assert len(containing) >= 1

    def test_single_entity_windows_dropped(self):
        record = self.make_record(1000, [10])
        assert build_windows([record]) == []

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            build_windows([], window_chars=100, overlap=100)

    def test_window_ids_unique(self):
        records = [
            self.make_record(3000, [0, 100, 2600, 2700]),
            self.make_record(1000, [0, 100]),
        ]
        windows = build_windows(records)
        ids = [w.window_id for w in windows]
        assert len(set(ids)) == len(ids)


class TestClickDataset:
    def test_from_records_pipeline(self, env_world, env_pipeline):
        tracker = ClickTracker(env_world, env_pipeline, UserClickModel(seed=5))
        stories = env_world.story_generator(seed=11).generate_many(40)
        dataset = ClickDataset.from_records(tracker.track(stories))
        assert dataset.story_count <= 40
        assert dataset.window_count >= dataset.story_count  # >=1 window each
        assert dataset.entity_count > 0
        assert dataset.total_clicks > 0
        for record in dataset.records:
            assert record.views >= 30
            assert len(record.entities) >= 2
            assert record.max_clicks() >= 4
