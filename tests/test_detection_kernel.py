"""Compiled detection kernel: automaton edge cases + golden equivalence.

The compiled-kernels PR replaces the runtime token-trie walk with a
flat Aho–Corasick automaton over interned token ids, the Porter pass
with a precomputed vocab->stem table, and the counting/segmentation
loops with id-space array passes.  Every one of those swaps must be
*identical* to the pure-Python path — same matches, offsets, scores,
ranked order — so these tests pin each compiled structure to its seed
reference: the trie walk, the per-term TermVector chain, the per-word
Porter pass, and the per-row feature assembly.
"""

import random
import threading

import numpy as np
import pytest

from repro.detection import NamedEntityDetector, PatternDetector, PhraseMatcher
from repro.detection.kernel import (
    TAG_CONCEPTS,
    TAG_UNITS,
    CombinedAutomaton,
    DetectionKernel,
    FlatAutomaton,
    StemTable,
    TokenInterner,
    intern_call_count,
    reset_intern_call_count,
)
from repro.text.stemmer import (
    PorterStemmer,
    clear_stem_cache,
    stem,
    stem_cache_info,
)
from repro.text.tokenized import TokenizedDocument


def automaton_for(matcher: PhraseMatcher, extra_vocab=()) -> FlatAutomaton:
    """Compile *matcher*'s inventory over a minimal vocabulary."""
    terms = sorted(
        {term for phrase in matcher.inventory() for term in phrase}
        | set(extra_vocab)
    )
    return FlatAutomaton.compile(matcher.inventory(), TokenInterner(terms))


def assert_automaton_matches_trie(phrases, text):
    """The automaton path must reproduce the trie walk exactly."""
    matcher = PhraseMatcher(phrases)
    automaton = automaton_for(matcher)
    document = TokenizedDocument(text)
    reference = matcher.find_document_trie(document)
    assert automaton.find_phrases(document) == reference
    # and through the matcher protocol (attach/detach round trip)
    matcher.attach_automaton(automaton)
    assert matcher.find_document(TokenizedDocument(text)) == reference
    matcher.attach_automaton(None)
    assert matcher.find_document(TokenizedDocument(text)) == reference


class TestFlatAutomatonEdgeCases:
    def test_overlapping_phrases(self):
        assert_automaton_matches_trie(
            [("big", "apple"), ("apple", "pie")],
            "a big apple pie and one apple pie after a big apple",
        )

    def test_shared_prefixes(self):
        assert_automaton_matches_trie(
            [("new", "york"), ("new", "york", "city"), ("new", "jersey")],
            "from new york city to new jersey and back to new york",
        )

    def test_shared_suffixes_fail_chain(self):
        # every suffix of the longest phrase is itself a phrase, so the
        # output-link chain (emits/out_next) must fire on each token
        assert_automaton_matches_trie(
            [("a", "b", "c"), ("b", "c"), ("c",)],
            "a b c then b c then c then a b then a b c",
        )

    def test_single_token_and_max_length(self):
        long_phrase = tuple("p%d" % i for i in range(8))
        assert_automaton_matches_trie(
            [("solo",), long_phrase],
            "solo then " + " ".join(long_phrase) + " then solo",
        )

    def test_oov_token_mid_phrase(self):
        # "zzz" occurs in no phrase: it must break the match and reset
        # the automaton to the root (symbol-0 sentinel path)
        assert_automaton_matches_trie(
            [("new", "york")], "new zzz york but new york works"
        )

    def test_empty_document(self):
        assert_automaton_matches_trie([("cuba",)], "")
        assert_automaton_matches_trie([("cuba",)], "?!.,")

    def test_fail_transitions_mid_match(self):
        # "a a b": after "a a" the second "a" must fail back to depth 1,
        # not to the root, for "a a a b" to still match "a a b"
        assert_automaton_matches_trie(
            [("a", "a", "b"), ("a", "b")], "a a a b a b a a b"
        )

    def test_randomized_cross_check(self):
        rng = random.Random(7)
        alphabet = ["w%d" % i for i in range(9)]
        for _ in range(60):
            phrases = [
                tuple(rng.choices(alphabet, k=rng.randint(1, 4)))
                for _ in range(rng.randint(1, 12))
            ]
            text = " ".join(rng.choices(alphabet + ["qqq"], k=rng.randint(0, 60)))
            assert_automaton_matches_trie(phrases, text)

    def test_attach_rejects_wrong_inventory(self):
        matcher = PhraseMatcher([("one",), ("two",)])
        other = automaton_for(PhraseMatcher([("three",)]))
        with pytest.raises(ValueError):
            matcher.attach_automaton(other)


class TestFlatAutomatonStructure:
    def test_phrase_states_round_trip(self):
        inventory = [
            ("new", "york"),
            ("new", "york", "city"),
            ("york",),
            ("city", "hall"),
        ]
        matcher = PhraseMatcher(inventory)
        automaton = automaton_for(matcher)
        pairs = automaton.phrase_states()
        assert sorted(phrase for phrase, __ in pairs) == sorted(inventory)
        for phrase, terminal in pairs:
            assert automaton.terminal_of(phrase) == terminal

    def test_columns_reload_identically(self):
        matcher = PhraseMatcher([("a", "b"), ("b",), ("a", "b", "c")])
        automaton = automaton_for(matcher)
        columns = automaton.columns()
        reloaded = FlatAutomaton(
            automaton.interner,
            columns["delta"],
            columns["fail"],
            columns["out_len"],
            columns["emits"],
            columns["out_next"],
            columns["sym"],
            phrase_count=automaton.phrase_count,
        )
        document = TokenizedDocument("a b c b a b x a b")
        assert reloaded.find_phrases(document) == automaton.find_phrases(
            document
        )

    def test_score_column_round_trip(self):
        scores = {("a", "b"): 0.75, ("b", "c"): 0.5}
        interner = TokenInterner(["a", "b", "c"])
        automaton = FlatAutomaton.compile(sorted(scores), interner, scores=scores)
        ids = interner.ids("a b c a b".split())
        spans = automaton.find_scored_spans(ids)
        assert [(s, e) for s, e, __ in spans] == [(0, 2), (3, 5)]
        assert [score for __, __, score in spans] == [0.75, 0.75]


class TestCombinedAutomaton:
    def test_tagged_scan_matches_per_detector(self):
        interner = TokenInterner(["a", "b", "c", "d", "e"])
        concepts = FlatAutomaton.compile(
            [("a", "b"), ("c",), ("b", "c", "d")], interner
        )
        unit_scores = {("a", "b"): 0.9, ("d", "e"): 0.4}
        units = FlatAutomaton.compile(
            sorted(unit_scores), interner, scores=unit_scores
        )
        combined = CombinedAutomaton.compile(
            interner, [(concepts, TAG_CONCEPTS), (units, TAG_UNITS)]
        )
        rng = random.Random(3)
        vocab = ["a", "b", "c", "d", "e", "zzz"]
        for _ in range(40):
            words = rng.choices(vocab, k=rng.randint(0, 30))
            ids = interner.ids(words)
            got_concepts, got_named, got_units = combined.scan(ids)
            assert got_concepts == concepts._scored_starts(ids)
            assert got_named == {}
            assert got_units == units._scored_starts(ids)


class TestKernelPipelineEquivalence:
    @pytest.fixture()
    def restore_kernel(self, env_pipeline):
        previous, was_auto = env_pipeline._kernel, env_pipeline._kernel_auto
        yield env_pipeline
        env_pipeline.attach_kernel(previous)
        env_pipeline._kernel_auto = was_auto

    def test_compiled_pipeline_output_identical(self, restore_kernel, env_stories):
        pipeline = restore_kernel
        kernel = pipeline.compile_kernel()
        for story in env_stories[:10]:
            pipeline.attach_kernel(None)
            pure = pipeline.process(story.text)
            pipeline.attach_kernel(kernel)
            compiled = pipeline.process(story.text)
            assert compiled.detections == pure.detections
            assert [d.score for d in compiled.detections] == [
                d.score for d in pure.detections
            ]

    def test_term_and_unit_weights_float_identical(
        self, restore_kernel, env_scorer, env_stories
    ):
        pipeline = restore_kernel
        kernel = pipeline.compile_kernel()
        scorer = env_scorer
        for story in env_stories[:10]:
            scorer.attach_kernel(None)
            pure = scorer.concept_vector(story.text)
            scorer.attach_kernel(kernel)
            compiled = scorer.concept_vector(story.text)
            scorer.attach_kernel(None)
            # dict equality: same keys, exact float equality per key
            assert compiled.weights == pure.weights

    def test_stem_table_matches_porter_pass(self, restore_kernel, env_stories):
        pipeline = restore_kernel
        kernel = pipeline.compile_kernel()
        text = env_stories[0].text + " with an oovxyzword too"
        pure = TokenizedDocument(text).stemmed_terms
        stamped = kernel.stem_document(TokenizedDocument(text))
        assert stamped.stemmed_terms == pure

    def test_tid_context_matches_table(self, restore_kernel, env_stories):
        from repro.runtime.tid import GlobalTidTable

        pipeline = restore_kernel
        kernel = pipeline.compile_kernel()
        table = GlobalTidTable()
        # track a subset of document stems so both hit and miss paths run
        for story in env_stories[:4]:
            for term in TokenizedDocument(story.text).stemmed_terms[::2]:
                table.assign(term)
        for story in env_stories[:6]:
            text = story.text + " an oovxyzword mid document"
            expected = table.tid_context(
                TokenizedDocument(text).stemmed_terms
            )
            got = kernel.tid_context(TokenizedDocument(text), table)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)

    def test_single_interning_per_document(self, restore_kernel, env_stories):
        pipeline = restore_kernel
        kernel = pipeline.compile_kernel()
        document = TokenizedDocument(env_stories[0].text)
        reset_intern_call_count()
        pipeline.stem_document(document)
        pipeline.process_document(document)
        assert intern_call_count() == 1
        # detached pure path never interns
        pipeline.attach_kernel(None)
        reset_intern_call_count()
        pipeline.process_document(TokenizedDocument(env_stories[1].text))
        assert intern_call_count() == 0


class TestKernelPackRoundTrip:
    def test_save_load_identical(self, tmp_path, env_pipeline, env_stories):
        from repro.runtime.datapack import (
            load_detection_kernel,
            save_detection_kernel,
        )

        kernel = DetectionKernel.build(
            concept_phrases=env_pipeline._concepts.inventory(),
            named_phrases=env_pipeline._named.inventory(),
            lexicon=env_pipeline._scorer.lexicon,
        )
        path = tmp_path / "kernel.pack"
        save_detection_kernel(kernel, path)
        loaded = load_detection_kernel(path)
        assert loaded.interner.terms == kernel.interner.terms
        assert loaded.stem_table.stems == kernel.stem_table.stems
        assert bytes(loaded.stem_table.flags) == bytes(kernel.stem_table.flags)
        assert loaded.unit_single_scores == kernel.unit_single_scores
        for name in ("concepts", "named", "units"):
            ours, theirs = getattr(kernel, name), getattr(loaded, name)
            for column, values in ours.columns().items():
                assert np.array_equal(theirs.columns()[column], values), (
                    name,
                    column,
                )
        document = TokenizedDocument(env_stories[0].text)
        assert loaded.concepts_view.find_phrases(
            document
        ) == kernel.concepts_view.find_phrases(TokenizedDocument(env_stories[0].text))


class TestStemmerCache:
    def test_cache_info_counts(self):
        clear_stem_cache()
        first = stem("running")
        info = stem_cache_info()
        assert info.misses >= 1 and info.currsize >= 1
        assert stem("running") == first
        assert stem_cache_info().hits > info.hits

    def test_memo_matches_uncached_porter(self):
        porter = PorterStemmer()
        words = ["Running", "flies", "HAPPILY", "caresses", "ponies", "cats"]
        for word in words:
            assert stem(word) == porter.stem(word.lower())

    def test_thread_safety(self):
        clear_stem_cache()
        porter = PorterStemmer()
        rng = random.Random(11)
        words = ["word%d" % i for i in range(200)] + [
            "running",
            "flies",
            "relational",
            "happiness",
        ]
        expected = {word: porter.stem(word) for word in words}
        failures = []

        def worker():
            order = words[:]
            rng_local = random.Random(rng.random())
            rng_local.shuffle(order)
            for word in order * 5:
                if stem(word) != expected[word]:
                    failures.append(word)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestConstructorTimeCompilation:
    def test_pattern_detector_compiles_nothing_per_document(self, monkeypatch):
        import re

        detector = PatternDetector()
        text = "mail a@b.co, call 650-555-9876, see http://x.org and www.y.net"
        expected = detector.detect(text)
        assert expected  # the probe text must actually exercise the regexes

        def explode(*args, **kwargs):
            raise AssertionError("regex compiled on the per-document path")

        monkeypatch.setattr(re, "compile", explode)
        assert detector.detect(text) == expected

    def test_named_detector_no_dictionary_calls_per_document(
        self, monkeypatch, env_world, env_stories
    ):
        detector = NamedEntityDetector(env_world.dictionary)
        texts = [story.text for story in env_stories[:5]]
        expected = [detector.detect(text) for text in texts]
        assert any(expected)  # at least one story must contain entities

        def explode(*args, **kwargs):
            raise AssertionError("dictionary consulted on the per-document path")

        for method in ("lookup", "is_ambiguous", "high_level_type"):
            monkeypatch.setattr(env_world.dictionary, method, explode)
        assert [detector.detect(text) for text in texts] == expected


class _FakeVector:
    def __init__(self, row):
        self._row = row

    def numeric(self, exclude_groups=()):
        return np.asarray(self._row, dtype=float)


class _FakeExtractor:
    def __init__(self, version=1):
        self.feature_version = version
        self.extract_calls = 0

    def extract(self, phrase):
        self.extract_calls += 1
        seed = (hash(phrase) % 1000) / 1000.0
        return _FakeVector([seed, seed * 2.0, seed - 1.0])


class TestFeatureArena:
    def test_arena_matches_vstack_path(self):
        from repro.ranking.model import FeatureAssembler

        phrases = ["alpha", "beta", "gamma", "alpha", "beta"]
        versioned = FeatureAssembler(extractor=_FakeExtractor(version=1))
        unversioned = FeatureAssembler(extractor=_FakeExtractor(version=1))
        unversioned.extractor.feature_version = None
        via_arena, rel_a = versioned.matrix_and_relevance(phrases, None)
        via_vstack, rel_b = unversioned.matrix_and_relevance(phrases, None)
        assert np.array_equal(via_arena, via_vstack)
        assert via_arena.dtype == via_vstack.dtype
        assert np.array_equal(rel_a, rel_b)
        # the arena extracted each distinct phrase exactly once
        assert versioned.extractor.extract_calls == 3
        assert unversioned.extractor.extract_calls == 5

    def test_arena_grows_past_initial_capacity(self):
        from repro.ranking.model import FeatureAssembler

        assembler = FeatureAssembler(extractor=_FakeExtractor())
        phrases = ["p%d" % i for i in range(150)]
        matrix, __ = assembler.matrix_and_relevance(phrases, None)
        assert matrix.shape == (150, 3)
        again, __ = assembler.matrix_and_relevance(phrases, None)
        assert np.array_equal(matrix, again)
        assert assembler.extractor.extract_calls == 150

    def test_version_change_invalidates_cache(self):
        from repro.ranking.model import FeatureAssembler

        extractor = _FakeExtractor(version=1)
        assembler = FeatureAssembler(extractor=extractor)
        before, __ = assembler.matrix_and_relevance(["alpha"], None)
        assembler.matrix_and_relevance(["alpha"], None)
        assert extractor.extract_calls == 1  # memo hit, no re-extraction
        extractor.feature_version = 2
        after, __ = assembler.matrix_and_relevance(["alpha"], None)
        assert extractor.extract_calls == 2  # version bump re-extracts
        assert np.array_equal(before, after)


class TestStemTableBuild:
    def test_flags_and_stems(self):
        terms = ["running", "the", "cuba", "of"]
        table = StemTable.build(terms)
        porter = PorterStemmer()
        for index, term in enumerate(terms):
            if term in ("the", "of"):
                assert table.flags[index] == 1  # stopword: no stem needed
            else:
                assert table.flags[index] == 0
                assert table.stems[index] == porter.stem(term)

    def test_stemmed_terms_skips_stopwords_and_stems_oov(self):
        terms = ["running", "the"]
        table = StemTable.build(terms)
        interner = TokenInterner(terms)
        words = ["running", "the", "oovxyzword"]
        assert table.stemmed_terms(words, interner.ids(words)) == [
            stem("running"),
            stem("oovxyzword"),
        ]
