"""Cross-checks between the paper's reported numbers and our metrics.

The constants in ``repro.paperdata`` are transcriptions; these tests
verify they are internally consistent with the paper's own worked
examples and with our metric implementations — catching transcription
errors and metric drift in one place.
"""

import numpy as np
import pytest

from repro import paperdata
from repro.metrics import error_rate, ndcg_at_k, weighted_error_rate


R1_SCORES = np.array([4.0, 3.0, 1.0, 2.0])  # [A, B, D, C]
R2_SCORES = np.array([3.0, 4.0, 2.0, 1.0])  # [B, A, C, D]


class TestWorkedExampleConsistency:
    def test_error_rates_match_constants(self):
        ctrs = np.asarray(paperdata.WORKED_EXAMPLE["ctrs"])
        assert error_rate(ctrs, R1_SCORES) == pytest.approx(
            paperdata.WORKED_EXAMPLE["r1_error_rate"]
        )
        assert weighted_error_rate(ctrs, R1_SCORES) == pytest.approx(
            paperdata.WORKED_EXAMPLE["r1_weighted_error_rate"], abs=1e-3
        )
        assert weighted_error_rate(ctrs, R2_SCORES) == pytest.approx(
            paperdata.WORKED_EXAMPLE["r2_weighted_error_rate"], abs=1e-3
        )

    def test_ndcg_matches_constants(self):
        judgments = np.asarray(paperdata.WORKED_EXAMPLE["ctrs"]) * 10
        for k, expected in paperdata.WORKED_EXAMPLE["r1_ndcg"].items():
            assert ndcg_at_k(judgments, R1_SCORES, k) == pytest.approx(
                expected, abs=0.005
            )
        for k, expected in paperdata.WORKED_EXAMPLE["r2_ndcg"].items():
            assert ndcg_at_k(judgments, R2_SCORES, k) == pytest.approx(
                expected, abs=0.005
            )


class TestInternalConsistency:
    def test_table_overlap_rows_agree(self):
        """Rows shared between Tables III/IV/V must carry equal values."""
        for name in ("random", "concept vector score"):
            assert paperdata.TABLE3_WER[name] == paperdata.TABLE4_WER[name]
            assert paperdata.TABLE4_WER[name] == paperdata.TABLE5_WER[name]
        assert (
            paperdata.TABLE3_WER["all features"]
            == paperdata.TABLE5_WER["best interestingness model"]
        )
        assert (
            paperdata.TABLE4_WER["relevance only (snippets)"]
            == paperdata.TABLE5_WER["relevance only (snippets)"]
        )

    def test_table6_percentages_sum(self):
        """Each judgment distribution sums to ~100% (paper has Can't
        Tell shares of 0.0-0.2%)."""
        for cell in paperdata.TABLE6_JUDGMENTS.values():
            for very, somewhat, not_ in cell.values():
                assert 99.5 <= very + somewhat + not_ <= 100.1

    def test_table6_headline_drop(self):
        drop = (
            1 - paperdata.TABLE6_NOT_SHARE_AFTER / paperdata.TABLE6_NOT_SHARE_BEFORE
        ) * 100
        assert drop == pytest.approx(paperdata.TABLE6_NOT_SHARE_DROP, abs=0.2)

    def test_production_ctr_change_consistent(self):
        """CTR change follows from the views/clicks changes."""
        views_factor = 1 + paperdata.PRODUCTION_VIEWS_CHANGE / 100
        clicks_factor = 1 + paperdata.PRODUCTION_CLICKS_CHANGE / 100
        implied = (clicks_factor / views_factor - 1) * 100
        assert implied == pytest.approx(paperdata.PRODUCTION_CTR_CHANGE, abs=7.0)

    def test_table2_partition(self):
        assert set(paperdata.TABLE2_SPECIFIC) | set(paperdata.TABLE2_JUNK) == set(
            paperdata.TABLE2_SUMMATIONS
        )
        for phrase in paperdata.TABLE2_SPECIFIC:
            assert paperdata.TABLE2_SUMMATIONS[phrase] > 9000
        for phrase in paperdata.TABLE2_JUNK:
            assert paperdata.TABLE2_SUMMATIONS[phrase] < 2200

    def test_framework_pair_packing(self):
        assert (
            paperdata.FRAMEWORK["tid_bits"] + paperdata.FRAMEWORK["score_bits"]
            == 32
        )
        # 100 pairs x 4 bytes = 400 bytes per concept -> 400 MB per 1M
        per_concept = paperdata.FRAMEWORK["relevant_keywords_per_concept"] * 4
        assert per_concept * 1e6 / 1e6 == pytest.approx(
            paperdata.FRAMEWORK["relevance_mb_per_1m"]
        )

    def test_dataset_constants_match_module_defaults(self):
        from repro.clicks.dataset import WINDOW_CHARS, WINDOW_OVERLAP, FilterRules

        assert WINDOW_CHARS == paperdata.DATASET["window_chars"]
        assert WINDOW_OVERLAP == paperdata.DATASET["window_overlap"]
        assert FilterRules().min_views == paperdata.DATASET["min_views"]
