"""Tests for HTML stripping and tf*idf vectorization."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import (
    DocumentFrequencyTable,
    TermVector,
    is_stopword,
    strip_html,
    term_frequencies,
)


class TestStripHtml:
    def test_plain_text_unchanged(self):
        assert strip_html("hello world") == "hello world"

    def test_tags_removed(self):
        assert "world" in strip_html("<b>world</b>")
        assert "<" not in strip_html("<b>world</b>")

    def test_block_tags_become_paragraphs(self):
        text = strip_html("<p>one</p><p>two</p>")
        assert text.split("\n\n") == ["one", "two"]

    def test_script_and_style_bodies_removed(self):
        markup = "<script>var x = 'evil';</script>visible<style>p{}</style>"
        text = strip_html(markup)
        assert "evil" not in text
        assert "visible" in text

    def test_comments_removed(self):
        assert "secret" not in strip_html("a<!-- secret -->b")

    def test_entities_unescaped(self):
        assert strip_html("Tom &amp; Jerry") == "Tom & Jerry"

    @given(st.text(max_size=300))
    def test_never_raises(self, markup):
        strip_html(markup)


class TestStopwords:
    def test_function_words(self):
        assert is_stopword("the")
        assert is_stopword("The")
        assert is_stopword("and")

    def test_content_words_kept(self):
        assert not is_stopword("cuba")
        assert not is_stopword("insurance")


class TestTermFrequencies:
    def test_counts(self):
        counts = term_frequencies("cuba cuba talks")
        assert counts["cuba"] == 2
        assert counts["talks"] == 1

    def test_stopwords_removed_by_default(self):
        counts = term_frequencies("the talks with cuba")
        assert "the" not in counts
        assert "with" not in counts

    def test_stopwords_kept_when_disabled(self):
        counts = term_frequencies("the talks", remove_stopwords=False)
        assert counts["the"] == 1


class TestDocumentFrequencyTable:
    def build(self):
        table = DocumentFrequencyTable()
        table.add_document(["cuba", "talks"])
        table.add_document(["cuba", "election"])
        table.add_document(["weather"])
        return table

    def test_document_frequency(self):
        table = self.build()
        assert table.document_frequency("cuba") == 2
        assert table.document_frequency("weather") == 1
        assert table.document_frequency("unseen") == 0

    def test_duplicates_in_one_doc_count_once(self):
        table = DocumentFrequencyTable()
        table.add_document(["a", "a", "a"])
        assert table.document_frequency("a") == 1

    def test_idf_ordering(self):
        table = self.build()
        assert table.idf("weather") > table.idf("cuba")
        assert table.idf("unseen") > table.idf("weather")

    def test_idf_positive(self):
        table = self.build()
        for term in ["cuba", "weather", "unseen"]:
            assert table.idf(term) > 0

    def test_tf_idf_scales_with_count(self):
        table = self.build()
        scores = table.tf_idf({"cuba": 3, "weather": 1})
        assert scores["cuba"] == pytest.approx(3 * table.idf("cuba"))

    def test_from_documents(self):
        table = DocumentFrequencyTable.from_documents([["a"], ["a", "b"]])
        assert table.total_documents == 2
        assert table.document_frequency("a") == 2

    def test_idf_memoized_value_is_stable(self):
        table = self.build()
        first = table.idf("cuba")
        assert table.idf("cuba") == first  # cached hit, same value
        assert table.raw_idf("cuba") == table.raw_idf("cuba")

    def test_idf_cache_invalidated_by_add_document(self):
        table = self.build()
        before = table.idf("cuba")
        before_raw = table.raw_idf("cuba")
        table.add_document(["cuba"])
        fresh = DocumentFrequencyTable.from_documents(
            [["cuba", "talks"], ["cuba", "election"], ["weather"], ["cuba"]]
        )
        assert table.idf("cuba") == fresh.idf("cuba")
        assert table.raw_idf("cuba") == fresh.raw_idf("cuba")
        assert table.idf("cuba") != before
        assert table.raw_idf("cuba") != before_raw

    def test_from_counts_matches_incremental(self):
        table = self.build()
        rebuilt = DocumentFrequencyTable.from_counts(
            {"cuba": 2, "talks": 1, "election": 1, "weather": 1},
            table.total_documents,
        )
        for term in ["cuba", "talks", "weather", "unseen"]:
            assert rebuilt.idf(term) == table.idf(term)
            assert rebuilt.raw_idf(term) == table.raw_idf(term)


class TestTermVector:
    def test_normalized_max_is_one(self):
        vector = TermVector({"a": 2.0, "b": 1.0}).normalized()
        assert vector["a"] == pytest.approx(1.0)
        assert vector["b"] == pytest.approx(0.5)

    def test_normalized_empty(self):
        assert len(TermVector().normalized()) == 0

    def test_punished_below(self):
        vector = TermVector({"a": 0.9, "b": 0.2}).punished_below(0.5, factor=0.5)
        assert vector["a"] == pytest.approx(0.9)
        assert vector["b"] == pytest.approx(0.1)

    def test_pruned_below(self):
        vector = TermVector({"a": 0.9, "b": 0.05}).pruned_below(0.1)
        assert "a" in vector
        assert "b" not in vector

    def test_top_sorted_desc_with_alpha_ties(self):
        vector = TermVector({"b": 1.0, "a": 1.0, "c": 0.5})
        assert vector.top(2) == [("a", 1.0), ("b", 1.0)]

    def test_cosine_identical(self):
        vector = TermVector({"a": 1.0, "b": 2.0})
        assert vector.cosine_similarity(vector) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert TermVector({"a": 1.0}).cosine_similarity(TermVector({"b": 1.0})) == 0.0

    def test_cosine_empty(self):
        assert TermVector().cosine_similarity(TermVector({"a": 1.0})) == 0.0

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(min_value=0.0, max_value=100.0),
            max_size=10,
        )
    )
    def test_normalized_bounds(self, weights):
        vector = TermVector(weights).normalized()
        for __, weight in vector.items():
            assert 0.0 <= weight <= 1.0 + 1e-9

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(min_value=0.01, max_value=100.0),
            min_size=2,
            max_size=10,
        )
    )
    def test_cosine_symmetric_and_bounded(self, weights):
        items = sorted(weights.items())
        half = len(items) // 2
        left = TermVector(dict(items[:half]))
        right = TermVector(dict(items[half:]))
        forward = left.cosine_similarity(right)
        backward = right.cosine_similarity(left)
        assert forward == pytest.approx(backward)
        assert -1e-9 <= forward <= 1.0 + 1e-9
