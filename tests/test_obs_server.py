"""Telemetry HTTP server: every endpoint against a live ephemeral port."""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.features import RelevanceModel
from repro.obs import MetricsRegistry, Tracer
from repro.obs.quality import DriftBaseline, DriftDetector, QualityMonitor
from repro.obs.server import ROUTES, TelemetryServer
from repro.ranking import RankSVM
from repro.runtime import (
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
)


def _get(url, timeout=10):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def _post(url, data, content_type="application/json", timeout=10):
    request = urllib.request.Request(
        url, data=data.encode("utf-8"), method="POST",
        headers={"Content-Type": content_type},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


@pytest.fixture(scope="module")
def stack(env_world, env_extractor, env_miner, env_pipeline):
    """A full serving stack behind a live TelemetryServer."""
    phrases = [c.phrase for c in env_world.concepts]
    interestingness = QuantizedInterestingnessStore.build(
        env_extractor, phrases
    )
    relevance = PackedRelevanceStore.build(
        RelevanceModel.mine_all(env_miner, phrases[:30])
    )
    svm = RankSVM(epochs=30)
    rng = np.random.default_rng(0)
    X = rng.normal(size=(40, 16))
    svm.fit(X, X[:, 0], np.repeat(np.arange(8), 5))

    registry = MetricsRegistry()
    tracer = Tracer(registry=registry, sample_every=1)
    quality = QualityMonitor(registry=registry, positions=4)
    drift = DriftDetector(
        DriftBaseline.from_store(interestingness), registry=registry
    )
    service = RankerService(
        env_pipeline, interestingness, relevance, svm,
        registry=registry, tracer=tracer, quality=quality, drift=drift,
    )
    server = TelemetryServer(
        service=service, registry=registry, tracer=tracer,
        drift=drift, quality=quality, port=0,
    )
    with server:
        yield server


@pytest.fixture(scope="module")
def story_text(env_stories):
    return env_stories[0].text


class TestEndpoints:
    def test_ephemeral_port_bound(self, stack):
        assert stack.port > 0
        assert stack.url == f"http://127.0.0.1:{stack.port}"

    def test_healthz(self, stack):
        status, body = _get(stack.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_readyz_with_service(self, stack):
        status, body = _get(stack.url + "/readyz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True
        assert payload["service_loaded"] is True
        assert payload["drift"]["monitored"]
        assert payload["drift"]["unmonitored"] == ["relevance"]
        assert len(payload["quality"]["ctr_by_position"]) == 4

    def test_metrics_exposition(self, stack, story_text):
        stack.service.process(story_text, top=5)
        status, body = _get(stack.url + "/metrics")
        assert status == 200
        assert "# TYPE repro_rank_documents_total counter" in body
        assert "repro_rank_documents_total" in body
        assert "repro_feature_drift_zscore" in body
        # the server's own requests are instrumented into the same page
        status, body = _get(stack.url + "/metrics")
        assert (
            'repro_http_requests_total{method="GET",path="/metrics"'
            in body
        )

    def test_explain_json_body(self, stack, story_text):
        status, body = _post(
            stack.url + "/explain",
            json.dumps({"text": story_text, "top": 3}),
        )
        assert status == 200
        payload = json.loads(body)
        assert len(payload["ranked"]) <= 3
        assert len(payload["ranked"]) == len(payload["explanations"])
        assert payload["ranked"], "story must rank concepts"
        first = payload["explanations"][0]
        assert first["phrase"] == payload["ranked"][0]["phrase"]
        contributions = first["contributions"]
        total = sum(c["contribution"] for c in contributions)
        assert total == pytest.approx(first["decision_score"], abs=1e-9)

    def test_explain_raw_text_body(self, stack, story_text):
        status, body = _post(
            stack.url + "/explain", story_text, content_type="text/plain"
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["ranked"]

    def test_explain_bad_bodies(self, stack):
        status, body = _post(stack.url + "/explain", "")
        assert status == 400
        status, body = _post(stack.url + "/explain", '{"no_text": 1}')
        assert status == 400
        assert "text" in json.loads(body)["error"]

    def test_traces_recent_carries_sampled_requests(self, stack, story_text):
        stack.service.process(story_text, top=2, explain=True)
        status, body = _get(stack.url + "/traces/recent")
        assert status == 200
        traces = json.loads(body)["traces"]
        assert traces
        assert any(
            "explanations" in t.get("meta", {}) for t in traces
        )

    def test_unknown_path_404(self, stack):
        status, body = _get(stack.url + "/nope")
        assert status == 404
        status, __ = _get(stack.url + "/explain/deeper")
        assert status == 404

    def test_method_mismatches_405(self, stack):
        status, __ = _get(stack.url + "/explain")  # GET on POST route
        assert status == 405
        status, __ = _post(stack.url + "/metrics", "{}")
        assert status == 405

    def test_trailing_slash_routes(self, stack):
        status, __ = _get(stack.url + "/healthz/")
        assert status == 200

    def test_request_metrics_recorded(self, stack):
        _get(stack.url + "/healthz")
        snap = stack.registry.snapshot()
        series = snap["http_requests_total"]["series"]
        healthz = [
            s for s in series if s["labels"]["path"] == "/healthz"
        ]
        assert healthz and healthz[0]["value"] >= 1
        latency = [
            s
            for s in snap["http_request_seconds"]["series"]
            if s["labels"]["path"] == "/healthz"
        ]
        assert latency and latency[0]["count"] >= 1

    def test_404s_roll_up_to_other_route(self, stack):
        _get(stack.url + "/definitely/not/a/route")
        series = stack.registry.snapshot()["http_requests_total"]["series"]
        other = [
            s
            for s in series
            if s["labels"]["path"] == "other"
            and s["labels"]["status"] == "404"
        ]
        assert other and other[0]["value"] >= 1


class TestServerWithoutService:
    def test_degrades_to_metrics_only(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, sample_every=0)
        with TelemetryServer(registry=registry, tracer=tracer) as server:
            status, __ = _get(server.url + "/healthz")
            assert status == 200
            status, body = _get(server.url + "/readyz")
            assert status == 503
            assert json.loads(body)["ready"] is False
            status, body = _post(
                server.url + "/explain", json.dumps({"text": "x"})
            )
            assert status == 503
            assert "no ranking service" in json.loads(body)["error"]
            status, __ = _get(server.url + "/metrics")
            assert status == 200
            status, body = _get(server.url + "/traces/recent")
            assert status == 200
            assert json.loads(body)["traces"] == []

    def test_double_start_refuses(self):
        server = TelemetryServer(registry=MetricsRegistry(),
                                 tracer=Tracer(sample_every=0))
        try:
            server.start()
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_route_table_is_complete(self):
        assert set(ROUTES) == {
            "/metrics", "/healthz", "/readyz", "/explain", "/traces/recent",
            "/debug/profile", "/debug/heap", "/debug/gc",
        }


class TestDebugEndpoints:
    def test_profile_collapsed_default(self, stack):
        status, body = _get(stack.url + "/debug/profile?seconds=0.2")
        assert status == 200
        for line in body.strip().splitlines():
            stack_part, __, count = line.rpartition(" ")
            assert int(count) > 0
            assert ";" in stack_part or stack_part  # frame;frame count

    def test_profile_top_and_json_formats(self, stack):
        status, body = _get(
            stack.url + "/debug/profile?seconds=0.2&format=top&hz=200"
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["profile"]["sample_ticks"] > 0
        assert payload["profile"]["hz"] == 200
        assert "top_stacks" in payload and "top_functions" in payload
        status, body = _get(
            stack.url + "/debug/profile?seconds=0.2&format=json"
        )
        assert status == 200
        tree = json.loads(body)["call_tree"]
        assert tree["name"] == "root"
        assert isinstance(tree["children"], list)

    def test_profile_bad_params_400(self, stack):
        status, __ = _get(stack.url + "/debug/profile?seconds=abc")
        assert status == 400
        status, __ = _get(stack.url + "/debug/profile?format=flame")
        assert status == 400

    def test_profile_concurrent_runs_conflict(self, stack):
        import threading

        results = []

        def scrape():
            results.append(
                _get(stack.url + "/debug/profile?seconds=1")[0]
            )

        first = threading.Thread(target=scrape)
        first.start()
        time.sleep(0.3)  # let the first scrape take the lock
        status, body = _get(stack.url + "/debug/profile?seconds=0.1")
        first.join()
        assert results == [200]
        assert status == 409
        assert "in progress" in json.loads(body)["error"]

    def test_heap_toggle_and_report(self, stack):
        status, body = _get(stack.url + "/debug/heap?tracemalloc=on")
        assert status == 200
        payload = json.loads(body)
        assert payload["heap"]["tracing"] is True
        # the serving stack reports its stores' resident bytes
        resident = payload["resident_bytes"]
        assert resident["interestingness_store"] > 0
        assert resident["relevance_store"] > 0
        status, body = _get(stack.url + "/debug/heap?top=3")
        payload = json.loads(body)
        assert len(payload["top_allocations"]) <= 3
        for row in payload["top_allocations"]:
            assert row["size_bytes"] >= 0
        status, body = _get(stack.url + "/debug/heap?tracemalloc=off")
        assert json.loads(body)["heap"]["tracing"] is False
        status, __ = _get(stack.url + "/debug/heap?tracemalloc=maybe")
        assert status == 400

    def test_gc_report(self, stack):
        status, body = _get(stack.url + "/debug/gc")
        assert status == 200
        payload = json.loads(body)
        assert payload["monitoring"] is True
        assert len(payload["counts"]) == 3
        assert payload["pauses"]["count"] >= 0

    def test_post_to_debug_routes_405(self, stack):
        for route in ("/debug/profile", "/debug/heap", "/debug/gc"):
            status, __ = _post(stack.url + route, "{}")
            assert status == 405
