"""Observability layer: registry exactness, tracing, and the wiring.

Covers the new ``repro.obs`` package (counters/gauges/histograms with
per-thread shards, span tracing with 1-in-N sampling, exposition) and
the instrumentation contracts the runtime now depends on: the legacy
``TimingStats`` API riding on registry counters, the compressed store's
``cache_info`` shim matching the old LRU accounting exactly, and the
service/builder span surfaces.
"""

import json
import math
import os
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.features import RelevanceModel
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    JsonLinesTraceSink,
    MetricsRegistry,
    NullCounter,
    NullHistogram,
    Tracer,
    configure,
    escape_label_value,
    get_registry,
    get_tracer,
    render_snapshot,
    set_registry,
    set_tracer,
    unescape_label_value,
)
from repro.ranking import RankSVM
from repro.runtime import (
    CompressedRelevanceStore,
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
    TimingStats,
)


class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", help="test events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        gauge = registry.gauge("workers")
        gauge.set(4)
        gauge.add(1)
        assert gauge.value == 5.0

    def test_same_name_and_labels_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("queries_total", kind="free")
        b = registry.counter("queries_total", kind="free")
        c = registry.counter("queries_total", kind="phrase")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ValueError):
            registry.histogram("thing_total")

    def test_invalid_name_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=(1, 10, 100))
        for value in (0.5, 1, 5, 10, 1000):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == 1016.5
        # non-cumulative: <=1, <=10, <=100, +Inf
        assert hist.bucket_counts() == [2, 2, 0, 1]
        assert hist.cumulative() == [("1", 2), ("10", 4), ("100", 4), ("+Inf", 5)]
        assert hist.quantile(0.5) == 10

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h1", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=(1, 1, 2))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", help="cache hits").inc(7)
        registry.histogram("batch", buckets=(1, 2)).observe(2)
        snap = registry.snapshot()
        assert snap["hits_total"]["type"] == "counter"
        assert snap["hits_total"]["series"][0]["value"] == 7.0
        assert snap["batch"]["series"][0]["buckets"][-1] == ["+Inf", 1]
        json.dumps(snap)  # JSON-ready, no numpy scalars

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", help="by kind", kind="free").inc(3)
        registry.histogram("lat", buckets=(0.1,), stage="stem").observe(0.05)
        text = registry.render_prometheus()
        assert "# HELP repro_queries_total by kind" in text
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{kind="free"} 3' in text
        assert 'repro_lat_bucket{stage="stem",le="0.1"} 1' in text
        assert 'repro_lat_bucket{stage="stem",le="+Inf"} 1' in text
        assert 'repro_lat_count{stage="stem"} 1' in text

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total")
        hist = registry.histogram("y")
        assert isinstance(counter, NullCounter)
        assert isinstance(hist, NullHistogram)
        counter.inc()
        hist.observe(1.0)
        assert registry.snapshot() == {}
        assert registry.render_prometheus() == ""

    def test_prometheus_label_escaping_round_trip(self):
        """Exposition-format escaping: backslash, double-quote, and
        newline in label values must render escaped and parse back to
        the original string (backslash first, or round-trip breaks)."""
        hostile = 'pack "v2"\nC:\\data\\packs'
        escaped = escape_label_value(hostile)
        assert "\n" not in escaped
        assert escaped == 'pack \\"v2\\"\\nC:\\\\data\\\\packs'
        assert unescape_label_value(escaped) == hostile
        # a value that is *already* escape-looking must survive too
        tricky = "trailing backslash \\ and literal \\n"
        assert unescape_label_value(escape_label_value(tricky)) == tricky

    def test_prometheus_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter(
            "loads_total", path='C:\\packs\n"v2"'
        ).inc()
        text = registry.render_prometheus()
        line = next(
            l for l in text.splitlines() if l.startswith("repro_loads_total{")
        )
        # one physical line, quotes and backslashes escaped per the
        # Prometheus exposition format
        assert line == (
            'repro_loads_total{path="C:\\\\packs\\n\\"v2\\""} 1'
        )

    def test_quantile_empty_histogram(self):
        """No observations means *no answer* — nan, never a made-up
        0.0 that reads as "the p50 was instant"."""
        hist = MetricsRegistry().histogram("empty", buckets=(1, 10))
        assert math.isnan(hist.quantile(0.0))
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.quantile(1.0))
        assert math.isnan(NullHistogram().quantile(0.5))

    def test_quantile_q0_skips_empty_leading_buckets(self):
        """q=0 means the minimum, which lives in the first *populated*
        bucket — empty leading buckets must not answer."""
        hist = MetricsRegistry().histogram("lead", buckets=(1, 10, 100))
        hist.observe(50)
        assert hist.quantile(0.0) == 100
        assert hist.quantile(1.0) == 100

    def test_quantile_q1_and_overflow(self):
        hist = MetricsRegistry().histogram("edges", buckets=(1, 10))
        hist.observe(0.5)
        assert hist.quantile(1.0) == 1
        hist.observe(1000)  # lands in +Inf
        assert hist.quantile(0.5) == 1
        assert hist.quantile(1.0) == float("inf")

    def test_quantile_single_bucket(self):
        hist = MetricsRegistry().histogram("single", buckets=(5,))
        hist.observe(3)
        assert hist.quantile(0.0) == 5
        assert hist.quantile(0.5) == 5
        assert hist.quantile(1.0) == 5

    def test_render_snapshot_matches_live_render(self):
        """The snapshot renderer and the live renderer are one path —
        including after a JSON round-trip (the --snapshot source)."""
        registry = MetricsRegistry()
        registry.counter("queries_total", help="by kind", kind="free").inc(3)
        registry.gauge("workers").set(4)
        registry.histogram("lat", buckets=(0.1, 1.0), stage="stem").observe(0.05)
        live = registry.render_prometheus()
        assert render_snapshot(registry.snapshot()) == live
        round_tripped = json.loads(json.dumps(registry.snapshot()))
        assert render_snapshot(round_tripped) == live
        assert render_snapshot(round_tripped, prefix="x_").startswith("# TYPE x_")

    def test_reset_keeps_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0.0
        assert registry.counter("n_total") is counter


class TestConcurrency:
    def test_exact_totals_from_8_threads(self):
        """No lost updates: per-thread shards make totals exact."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")
        hist = registry.histogram("hammer_sizes", buckets=DEFAULT_SIZE_BUCKETS)
        increments = 10_000
        threads = 8

        def hammer():
            for i in range(increments):
                counter.inc()
                hist.observe(i % 7)

        pool = [threading.Thread(target=hammer) for __ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == threads * increments
        assert hist.count == threads * increments
        expected_sum = threads * sum(i % 7 for i in range(increments))
        assert hist.sum == expected_sum

    def test_reads_during_writes_never_exceed_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("racing_total")
        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                seen.append(counter.value)

        thread = threading.Thread(target=reader)
        thread.start()
        for __ in range(50_000):
            counter.inc()
        stop.set()
        thread.join()
        assert counter.value == 50_000
        assert all(0 <= value <= 50_000 for value in seen)


class TestTracer:
    def test_sampling_one_in_n(self):
        tracer = Tracer(sample_every=3)
        traces = [tracer.start("req") for __ in range(9)]
        assert sum(1 for t in traces if t.sampled) == 3
        for trace in traces:
            tracer.finish(trace)

    def test_sampling_disabled(self):
        tracer = Tracer(sample_every=0)
        assert not any(tracer.start("req").sampled for __ in range(5))

    def test_span_nesting_and_ambient_trace(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, sample_every=1)
        with tracer.trace("req") as trace:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        assert trace.sampled
        assert [s.name for s in trace.spans] == ["outer"]
        assert [s.name for s in trace.spans[0].children] == ["inner"]
        assert trace.duration > 0
        # histograms record regardless of nesting
        snap = registry.snapshot()["span_seconds"]
        stages = {s["labels"]["stage"] for s in snap["series"]}
        assert stages == {"outer", "inner"}

    def test_span_histogram_records_when_unsampled(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, sample_every=0)
        with tracer.span("stage"):
            pass
        series = registry.snapshot()["span_seconds"]["series"]
        assert series[0]["count"] == 1

    def test_span_as_decorator(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, sample_every=0)

        @tracer.span("work")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert registry.snapshot()["span_seconds"]["series"][0]["count"] == 1

    def test_record_reuses_clock_readings(self):
        tracer = Tracer(sample_every=1)
        trace = tracer.start("req")
        trace.record("stage", trace.started + 0.25, trace.started + 0.75)
        tracer.finish(trace)
        span = trace.spans[0]
        assert span.start == pytest.approx(0.25)
        assert span.duration == pytest.approx(0.5)

    def test_jsonl_sink_and_recent_ring(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        with JsonLinesTraceSink(path) as sink:
            tracer = Tracer(sample_every=1, sink=sink, keep_last=2)
            for __ in range(3):
                with tracer.trace("req"):
                    pass
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        record = json.loads(lines[0])
        assert record["kind"] == "req"
        assert len(tracer.recent) == 2  # ring bounded by keep_last

    def test_sink_rotation_by_size(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        record = {"kind": "req", "n": 0}
        line_bytes = len(json.dumps(record, sort_keys=True)) + 1
        sink = JsonLinesTraceSink(path, max_bytes=line_bytes * 2, keep=2)
        try:
            for n in range(7):
                sink.write({"kind": "req", "n": n})
        finally:
            sink.close()
        # 7 two-record generations: live file has 1, .1 has 2, .2 has 2,
        # the oldest generation fell off the end
        live = path.read_text().strip().splitlines()
        gen1 = (tmp_path / "traces.jsonl.1").read_text().strip().splitlines()
        gen2 = (tmp_path / "traces.jsonl.2").read_text().strip().splitlines()
        assert not (tmp_path / "traces.jsonl.3").exists()
        assert [json.loads(l)["n"] for l in live] == [6]
        assert [json.loads(l)["n"] for l in gen1] == [4, 5]
        assert [json.loads(l)["n"] for l in gen2] == [2, 3]

    def test_sink_rotation_never_truncates_a_record(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonLinesTraceSink(path, max_bytes=10, keep=1)
        try:
            sink.write({"kind": "huge", "payload": "x" * 100})
            sink.write({"kind": "huge", "payload": "y" * 100})
        finally:
            sink.close()
        # each oversized record is written whole; rotation separates them
        assert json.loads(path.read_text())["payload"] == "y" * 100
        assert json.loads(
            (tmp_path / "traces.jsonl.1").read_text()
        )["payload"] == "x" * 100

    def test_sink_rotation_counts_preexisting_bytes(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text('{"kind": "old"}\n' * 5)
        size = path.stat().st_size
        sink = JsonLinesTraceSink(path, max_bytes=size + 1, keep=1)
        try:
            sink.write({"kind": "new"})
        finally:
            sink.close()
        # the append reopened an already-large file: first write rotates
        assert json.loads(path.read_text())["kind"] == "new"
        assert (tmp_path / "traces.jsonl.1").exists()

    def test_sink_rotation_fsyncs_before_rename(self, tmp_path, monkeypatch):
        """Durability ordering: once ``path.1`` exists its records are
        on disk — the live file must be fsynced before any rename."""
        events = []
        real_fsync = os.fsync
        real_rename = Path.rename

        def recording_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def recording_rename(source, target):
            events.append(f"rename:{Path(source).name}")
            return real_rename(source, target)

        monkeypatch.setattr("repro.obs.trace.os.fsync", recording_fsync)
        monkeypatch.setattr(Path, "rename", recording_rename)
        record = {"kind": "req", "n": 0}
        line_bytes = len(json.dumps(record, sort_keys=True)) + 1
        sink = JsonLinesTraceSink(tmp_path / "traces.jsonl",
                                  max_bytes=line_bytes, keep=2)
        try:
            sink.write({"kind": "req", "n": 0})
            sink.write({"kind": "req", "n": 1})  # triggers one rotation
        finally:
            sink.close()
        assert "rename:traces.jsonl" in events
        assert events.index("fsync") < events.index("rename:traces.jsonl")

    def test_sink_recovers_from_crash_mid_rotation(self, tmp_path,
                                                   monkeypatch):
        """A rename failing mid-shift (crash-recovery race, vanished
        directory) must not lose the record or wedge the sink: the
        write lands in the reopened live file and the next write
        retries the rotation."""
        path = tmp_path / "traces.jsonl"
        record = {"kind": "req", "n": 0}
        line_bytes = len(json.dumps(record, sort_keys=True)) + 1
        sink = JsonLinesTraceSink(path, max_bytes=line_bytes, keep=3)
        real_rename = Path.rename
        armed = {"fail": False}

        def flaky_rename(source, target):
            if armed["fail"]:
                armed["fail"] = False
                raise OSError("simulated crash during the shift")
            return real_rename(source, target)

        monkeypatch.setattr(Path, "rename", flaky_rename)
        try:
            sink.write({"kind": "req", "n": 0})  # fills the live file
            armed["fail"] = True
            sink.write({"kind": "req", "n": 1})  # rotation fails mid-shift
            # no generation was produced, but the record is on disk in
            # order — the failed shift reopened the live file
            assert not (tmp_path / "traces.jsonl.1").exists()
            live = path.read_text().strip().splitlines()
            assert [json.loads(l)["n"] for l in live] == [0, 1]
            sink.write({"kind": "req", "n": 2})  # retries, now succeeds
        finally:
            sink.close()
        live = path.read_text().strip().splitlines()
        gen1 = (tmp_path / "traces.jsonl.1").read_text().strip().splitlines()
        assert [json.loads(l)["n"] for l in live] == [2]
        assert [json.loads(l)["n"] for l in gen1] == [0, 1]

    def test_sink_rejects_bad_rotation_params(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLinesTraceSink(tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            JsonLinesTraceSink(tmp_path / "t.jsonl", max_bytes=10, keep=0)

    def test_configure_swaps_globals(self):
        previous_registry, previous_tracer = get_registry(), get_tracer()
        try:
            registry, tracer = configure(enabled=True, sample_every=5)
            assert get_registry() is registry
            assert get_tracer() is tracer
        finally:
            set_registry(previous_registry)
            set_tracer(previous_tracer)


class TestTimingStats:
    def test_rate_zero_guards(self):
        """No measured work means the rate is *unknown* — nan, matching
        the empty-histogram quantile convention (0.0 would read as "we
        measured this and it was zero MB/s")."""
        stats = TimingStats()
        assert math.isnan(stats.stemmer_mb_per_second)
        assert math.isnan(stats.ranker_mb_per_second)
        assert math.isnan(stats.detections_per_document)
        # bytes without seconds (and vice versa) are equally unknown
        stats.bytes_processed = 1000
        assert math.isnan(stats.stemmer_mb_per_second)
        stats.bytes_processed = 0
        stats.stemmer_seconds = 1.0
        assert math.isnan(stats.stemmer_mb_per_second)

    def test_rate_non_finite_guard(self):
        stats = TimingStats(bytes_processed=100)
        assert math.isnan(stats._rate(float("nan")))
        assert math.isnan(stats._rate(float("inf")))
        assert math.isnan(stats._rate(-1.0))

    def test_merge_zero_byte_stats_is_safe(self):
        left = TimingStats(stemmer_seconds=1.0, bytes_processed=2_000_000)
        merged = left.merge(TimingStats())
        assert merged is left
        assert left.stemmer_mb_per_second == 2.0

    def test_keyword_construction_and_fields(self):
        stats = TimingStats(
            stemmer_seconds=1.5, documents=2, detections=3, bytes_processed=10
        )
        assert stats.stemmer_seconds == 1.5
        assert stats.documents == 2
        assert isinstance(stats.documents, int)
        assert stats.detections_per_document == 1.5
        assert stats.as_dict()["bytes_processed"] == 10

    def test_merge_accumulates_all_fields(self):
        left = TimingStats(stemmer_seconds=1.0, documents=2, detections=3)
        right = TimingStats(
            stemmer_seconds=0.5, ranker_seconds=2.0, documents=1, detections=4
        )
        left.merge(right)
        assert left.stemmer_seconds == 1.5
        assert left.ranker_seconds == 2.0
        assert left.documents == 3
        assert left.detections == 7

    def test_merge_zero_duration_side(self):
        """Merging a side with documents but no elapsed time must never
        raise (ZeroDivision) or go infinite — no-data rates are nan."""
        left = TimingStats(documents=2, detections=4)  # no seconds, no bytes
        right = TimingStats(bytes_processed=500, documents=1)  # zero seconds
        left.merge(right)
        assert left.documents == 3
        assert left.bytes_processed == 500
        assert math.isnan(left.stemmer_mb_per_second)
        assert math.isnan(left.ranker_mb_per_second)
        # and the mirror: real work absorbs a zero-duration side intact
        busy = TimingStats(stemmer_seconds=1.0, bytes_processed=1_000_000)
        busy.merge(TimingStats(documents=5))
        assert busy.stemmer_mb_per_second == 1.0
        assert busy.documents == 5

    def test_merge_duck_typed_partial_object(self):
        class Partial:
            documents = 2  # no other TimingStats fields at all

        stats = TimingStats(documents=1)
        stats.merge(Partial())
        assert stats.documents == 3
        assert stats.stemmer_seconds == 0.0

    def test_equality_and_repr(self):
        a = TimingStats(documents=2)
        b = TimingStats(documents=2)
        assert a == b
        assert a != TimingStats(documents=3)
        assert "documents=2" in repr(a)

    def test_snapshots_survive_reset(self):
        """The test_single_pass capture pattern: old views keep values."""
        first = TimingStats(documents=5)
        second = TimingStats()  # a reset_stats() replacement
        second.documents = 1
        assert first.documents == 5


def _reference_lru(capacity, keys):
    """The seed's LRU accounting, replayed independently."""
    from collections import OrderedDict

    cache, hits, misses, evictions = OrderedDict(), 0, 0, 0
    for key in keys:
        if key in cache:
            hits += 1
            cache.move_to_end(key)
            continue
        misses += 1
        if capacity > 0:
            cache[key] = True
            if len(cache) > capacity:
                cache.popitem(last=False)
                evictions += 1
    return hits, misses, evictions, len(cache)


class TestDecodeCacheCounters:
    @pytest.fixture()
    def store(self):
        model = RelevanceModel(
            {
                f"concept {index}": [(f"term{index}a", 1.0), (f"term{index}b", 0.5)]
                for index in range(6)
            }
        )
        return CompressedRelevanceStore.build(model, cache_size=3)

    def test_cache_info_matches_reference_lru(self, store):
        """New counters reproduce the old LRU accounting exactly."""
        phrases = [f"concept {index}" for index in range(6)]
        pattern = (
            phrases[:4] + phrases[:2] + phrases[4:] + phrases[:1] + phrases[3:5]
        )
        context = {tid for __, tid in store.tid_table.items()}
        for phrase in pattern:
            store.score(phrase, context)
        hits, misses, evictions, size = _reference_lru(
            3, [p.lower() for p in pattern]
        )
        info = store.cache_info()
        assert info["hits"] == hits
        assert info["misses"] == misses
        assert info["evictions"] == evictions
        assert info["size"] == size
        assert info["capacity"] == 3

    def test_counters_are_per_store(self, store):
        other = CompressedRelevanceStore.from_packed(
            PackedRelevanceStore.build(
                RelevanceModel({"solo": [("term", 1.0)]})
            )
        )
        context = {tid for __, tid in store.tid_table.items()}
        store.score("concept 0", context)
        assert store.cache_misses == 1
        assert other.cache_misses == 0

    def test_global_aggregate_counters(self, store):
        previous = set_registry(MetricsRegistry())
        try:
            fresh = CompressedRelevanceStore.from_packed(
                PackedRelevanceStore.build(
                    RelevanceModel({"solo": [("term", 1.0)]})
                )
            )
            context = {tid for __, tid in fresh.tid_table.items()}
            fresh.score("solo", context)
            fresh.score("solo", context)
            snap = get_registry().snapshot()
            assert (
                snap["relevance_decode_cache_misses_total"]["series"][0]["value"]
                == 1.0
            )
            assert (
                snap["relevance_decode_cache_hits_total"]["series"][0]["value"]
                == 1.0
            )
        finally:
            set_registry(previous)


class TestServiceInstrumentation:
    @pytest.fixture(scope="class")
    def setup(self, env_world, env_extractor, env_miner, env_pipeline):
        phrases = [c.phrase for c in env_world.concepts]
        interestingness = QuantizedInterestingnessStore.build(
            env_extractor, phrases
        )
        model = RelevanceModel.mine_all(
            env_miner, [c.phrase for c in env_world.concepts[:30]]
        )
        relevance = PackedRelevanceStore.build(model)
        svm = RankSVM(epochs=30)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 16))
        svm.fit(X, X[:, 0], np.repeat(np.arange(8), 5))
        return env_pipeline, interestingness, relevance, svm

    def _service(self, setup, registry, tracer):
        pipeline, interestingness, relevance, svm = setup
        return RankerService(
            pipeline, interestingness, relevance, svm,
            registry=registry, tracer=tracer,
        )

    def test_stage_histograms_and_counters(self, setup, env_stories):
        registry = MetricsRegistry()
        service = self._service(setup, registry, Tracer(registry=registry))
        texts = [s.text for s in env_stories[:4]]
        results = service.process_batch(texts, top=5)
        snap = registry.snapshot()
        assert (
            snap["rank_documents_total"]["series"][0]["value"] == len(texts)
        )
        stages = {
            s["labels"]["stage"]: s["count"]
            for s in snap["rank_stage_seconds"]["series"]
        }
        assert stages == {
            "stemmer": len(texts), "detect": len(texts),
            "features": len(texts), "rank": len(texts),
        }
        detections = snap["rank_detections_total"]["series"][0]["value"]
        assert detections == sum(len(r) for r in results)
        assert detections == service.stats.detections
        per_doc = snap["rank_detections_per_document"]["series"][0]
        assert per_doc["count"] == len(texts)

    def test_parallel_batch_chunk_metrics(self, setup, env_stories):
        registry = MetricsRegistry()
        service = self._service(setup, registry, Tracer(registry=registry))
        texts = [s.text for s in env_stories[:6]]
        service.process_batch(texts, top=5, workers=3)
        snap = registry.snapshot()
        assert snap["rank_batch_chunks_total"]["series"][0]["value"] == 3
        assert snap["rank_batch_chunk_run_seconds"]["series"][0]["count"] == 3
        assert snap["rank_batch_workers"]["series"][0]["value"] == 3
        assert snap["rank_documents_total"]["series"][0]["value"] == len(texts)

    def test_trace_spans_match_stage_order(self, setup, env_stories):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, sample_every=1)
        service = self._service(setup, registry, tracer)
        service.process(env_stories[0].text, top=3)
        assert len(tracer.recent) == 1
        spans = tracer.recent[0]["spans"]
        assert [s["name"] for s in spans] == ["stemmer", "detect", "rank"]
        assert [c["name"] for c in spans[2]["children"]] == ["features"]

    def test_output_identical_with_observability_disabled(
        self, setup, env_stories
    ):
        on = self._service(
            setup, MetricsRegistry(), Tracer(sample_every=1)
        )
        off = self._service(
            setup, MetricsRegistry(enabled=False), Tracer(sample_every=0)
        )
        texts = [s.text for s in env_stories[:3]]
        assert on.process_batch(texts, top=5) == off.process_batch(texts, top=5)

    def test_legacy_stats_view_still_works(self, setup, env_stories):
        registry = MetricsRegistry()
        service = self._service(setup, registry, Tracer(registry=registry))
        service.process(env_stories[0].text)
        sequential = service.stats
        service.reset_stats()
        assert sequential.documents == 1  # captured view survives reset
        assert service.stats.documents == 0
        # registry counters are cumulative, not reset
        snap = registry.snapshot()
        assert snap["rank_documents_total"]["series"][0]["value"] == 1


class TestBuilderSpans:
    def test_build_records_stage_spans(self, tmp_path, env_world, env_log):
        from repro.offline.builder import BuildConfig, OfflineBuilder

        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, sample_every=1)
        phrases = [c.phrase for c in env_world.concepts[:12]]
        report = OfflineBuilder(
            BuildConfig(workers=1), tracer=tracer
        ).build(env_world.web_corpus, env_log, phrases, tmp_path)
        stage_names = [stage.name for stage in report.stages]
        series = registry.snapshot()["span_seconds"]["series"]
        recorded = {s["labels"]["stage"] for s in series}
        assert recorded == set(stage_names)
        # the sampled build trace carries the same stages, in order
        assert len(tracer.recent) == 1
        trace = tracer.recent[0]
        assert trace["kind"] == "build-pack"
        assert [span["name"] for span in trace["spans"]] == stage_names
        # StageStats.seconds is the span duration, not a second clock
        for stage, span in zip(report.stages, trace["spans"]):
            assert stage.seconds == pytest.approx(span["duration"])


class TestPackMetrics:
    def test_mapped_pack_records_open_metrics(self, tmp_path):
        from repro.runtime.datapack import (
            MappedPack,
            save_relevance_store,
        )

        store = PackedRelevanceStore.build(
            RelevanceModel({"alpha beta": [("gamma", 1.0)]})
        )
        path = tmp_path / "relevance.rpak"
        save_relevance_store(store, path)
        previous = set_registry(MetricsRegistry())
        try:
            with MappedPack(path):
                pass
            snap = get_registry().snapshot()
            assert snap["pack_opens_total"]["series"][0]["value"] == 1.0
            assert snap["pack_open_seconds"]["series"][0]["count"] == 1
            sections = {
                s["labels"]["section"]
                for s in snap["pack_section_bytes_total"]["series"]
            }
            assert {"kind", "meta", "pairs"} <= sections
            assert (
                snap["pack_bytes_mapped_total"]["series"][0]["value"]
                == path.stat().st_size
            )
        finally:
            set_registry(previous)


class TestSearchCounters:
    def test_query_counters_by_kind(self):
        from repro.search import SearchEngine

        previous = set_registry(MetricsRegistry())
        try:
            engine = SearchEngine()
            engine.add_document(1, "alpha beta gamma")
            engine.add_document(2, "beta gamma delta")
            engine.search("beta")
            engine.search("gamma delta")
            engine.phrase_search("beta gamma")
            engine.result_count("alpha")
            engine.phrase_result_count("gamma delta")
            snap = get_registry().snapshot()
            kinds = {
                s["labels"]["kind"]: s["value"]
                for s in snap["search_queries_total"]["series"]
            }
            assert kinds == {
                "free": 2.0, "phrase": 1.0, "count": 1.0, "phrase_count": 1.0
            }
        finally:
            set_registry(previous)
