"""Tests for Wikipedia, dictionaries, and the assembled SyntheticWorld."""

import numpy as np
import pytest

from repro.corpus import (
    EditorialDictionary,
    SyntheticWorld,
    Vocabulary,
    WikipediaStore,
    WorldConfig,
    generate_concepts,
    generate_topics,
)

SMALL = WorldConfig(
    seed=3,
    vocabulary_size=1200,
    topic_count=8,
    words_per_topic=40,
    concept_count=150,
    topic_page_count=80,
)


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.build(SMALL)


class TestWikipediaStore:
    def test_generate_and_lookup(self, world):
        wiki = world.wikipedia
        assert len(wiki) > 0
        covered = [c for c in world.concepts if c.phrase in wiki]
        assert covered
        for concept in covered[:10]:
            assert wiki.word_count(concept.phrase) > 0
            assert wiki.article(concept.phrase)

    def test_absent_phrase(self, world):
        assert world.wikipedia.word_count("definitely not a phrase") == 0
        assert world.wikipedia.article("definitely not a phrase") is None

    def test_junk_never_covered(self, world):
        for concept in world.junk_concepts():
            assert concept.phrase not in world.wikipedia

    def test_interesting_concepts_longer_articles(self):
        rng = np.random.default_rng(0)
        vocab = Vocabulary.generate(rng, 800)
        topics = generate_topics(rng, vocab, 4, 30)
        concepts = generate_concepts(rng, topics, 400, junk_fraction=0.0)
        wiki = WikipediaStore.generate(rng, concepts, topics, vocab)
        dull = [
            wiki.word_count(c.phrase)
            for c in concepts
            if c.interestingness < 0.2 and c.phrase in wiki
        ]
        hot = [
            wiki.word_count(c.phrase)
            for c in concepts
            if c.interestingness > 0.6 and c.phrase in wiki
        ]
        assert hot and dull
        assert np.mean(hot) > np.mean(dull)


class TestEditorialDictionary:
    def test_contains_named_entities(self, world):
        for concept in world.named_entities()[:20]:
            assert concept.phrase in world.dictionary
            assert world.dictionary.high_level_type(concept.phrase) is not None

    def test_abstract_concepts_absent(self, world):
        abstract = [
            c for c in world.concepts if not c.is_named_entity and not c.is_junk
        ]
        for concept in abstract[:20]:
            assert concept.phrase not in world.dictionary

    def test_lookup_unknown(self, world):
        assert world.dictionary.lookup("nope nope") == []
        assert world.dictionary.high_level_type("nope nope") is None

    def test_places_have_geo(self, world):
        for phrase in world.dictionary.phrases():
            for entry in world.dictionary.lookup(phrase):
                if entry.high_level_type == "place" and entry.geo is not None:
                    lat, lon = entry.geo
                    assert -90 <= lat <= 90
                    assert -180 <= lon <= 180

    def test_ambiguous_entries_exist(self):
        rng = np.random.default_rng(1)
        vocab = Vocabulary.generate(rng, 600)
        topics = generate_topics(rng, vocab, 4, 30)
        concepts = generate_concepts(
            rng, topics, 300, named_entity_fraction=1.0, junk_fraction=0.0
        )
        dictionary = EditorialDictionary.generate(
            rng, concepts, ambiguous_fraction=0.5
        )
        ambiguous = [p for p in dictionary.phrases() if dictionary.is_ambiguous(p)]
        assert ambiguous


class TestSyntheticWorld:
    def test_build_shapes(self, world):
        assert len(world.vocabulary) == SMALL.vocabulary_size
        assert len(world.topics) == SMALL.topic_count
        assert len(world.concepts) == SMALL.concept_count
        assert len(world.web_corpus) > SMALL.topic_page_count

    def test_df_table_covers_corpus(self, world):
        assert world.doc_frequency.total_documents == len(world.web_corpus)
        # every concept term should have been seen somewhere in the corpus
        seen = sum(
            1
            for c in world.concepts
            for t in c.terms
            if world.doc_frequency.document_frequency(t) > 0
        )
        total = sum(len(c.terms) for c in world.concepts)
        assert seen / total > 0.95

    def test_concept_by_phrase(self, world):
        concept = world.concepts[0]
        assert world.concept_by_phrase(concept.phrase) is concept
        assert world.concept_by_phrase(concept.phrase.upper()) is concept

    def test_build_deterministic(self):
        a = SyntheticWorld.build(SMALL)
        b = SyntheticWorld.build(SMALL)
        assert [c.phrase for c in a.concepts] == [c.phrase for c in b.concepts]
        assert a.web_corpus[0].text == b.web_corpus[0].text

    def test_different_seeds_differ(self):
        other = SyntheticWorld.build(
            WorldConfig(
                seed=99,
                vocabulary_size=SMALL.vocabulary_size,
                topic_count=SMALL.topic_count,
                words_per_topic=SMALL.words_per_topic,
                concept_count=SMALL.concept_count,
                topic_page_count=SMALL.topic_page_count,
            )
        )
        base = SyntheticWorld.build(SMALL)
        assert [c.phrase for c in other.concepts] != [c.phrase for c in base.concepts]

    def test_story_generator_deterministic(self, world):
        a = world.story_generator(seed=4).generate(0)
        b = world.story_generator(seed=4).generate(0)
        assert a.text == b.text

    def test_named_and_junk_helpers(self, world):
        assert all(c.is_named_entity for c in world.named_entities())
        assert all(c.is_junk for c in world.junk_concepts())
