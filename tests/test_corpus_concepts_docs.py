"""Tests for the concept universe and document generators."""

import numpy as np
import pytest

from repro.corpus import (
    Concept,
    StoryGenerator,
    Vocabulary,
    WebCorpusGenerator,
    generate_concepts,
    generate_topics,
)


@pytest.fixture(scope="module")
def small_universe():
    rng = np.random.default_rng(11)
    vocab = Vocabulary.generate(rng, 1200)
    topics = generate_topics(rng, vocab, 8, words_per_topic=40)
    concepts = generate_concepts(rng, topics, 120, junk_fraction=0.08)
    return rng, vocab, topics, concepts


class TestGenerateConcepts:
    def test_count(self, small_universe):
        __, __, __, concepts = small_universe
        assert len(concepts) == 120

    def test_ids_are_sequential(self, small_universe):
        __, __, __, concepts = small_universe
        assert [c.concept_id for c in concepts] == list(range(120))

    def test_phrases_unique(self, small_universe):
        __, __, __, concepts = small_universe
        phrases = [c.phrase for c in concepts]
        assert len(set(phrases)) == len(phrases)

    def test_junk_present_and_flagged(self, small_universe):
        __, __, __, concepts = small_universe
        junk = [c for c in concepts if c.is_junk]
        assert junk
        for concept in junk:
            assert concept.taxonomy_type is None
            assert concept.home_topics == ()
            assert concept.specificity < 0.2

    def test_named_entities_have_types(self, small_universe):
        __, __, __, concepts = small_universe
        named = [c for c in concepts if c.is_named_entity]
        assert named
        assert all(c.taxonomy_type for c in named)

    def test_latents_in_range(self, small_universe):
        __, __, __, concepts = small_universe
        for concept in concepts:
            assert 0.0 <= concept.interestingness <= 1.0
            assert 0.0 <= concept.specificity <= 1.0

    def test_home_topics_valid(self, small_universe):
        __, __, topics, concepts = small_universe
        for concept in concepts:
            for topic_id in concept.home_topics:
                assert 0 <= topic_id < len(topics)

    def test_relevant_in(self):
        concept = Concept(0, "x", ("x",), 0.5, 0.5, False, None, (2, 5))
        assert concept.relevant_in([5])
        assert not concept.relevant_in([1, 3])


class TestStoryGenerator:
    @pytest.fixture(scope="class")
    def stories(self, small_universe):
        __, vocab, topics, concepts = small_universe
        generator = StoryGenerator(
            np.random.default_rng(5), topics, concepts, vocab
        )
        return generator.generate_many(20)

    def test_story_count_and_ids(self, stories):
        assert len(stories) == 20
        assert [s.doc_id for s in stories] == list(range(20))

    def test_mention_offsets_match_text(self, stories, small_universe):
        __, __, __, concepts = small_universe
        by_id = {c.concept_id: c for c in concepts}
        for story in stories:
            for mention in story.mentions:
                span = story.text[mention.start : mention.end]
                assert span == by_id[mention.concept_id].phrase

    def test_stories_have_multiple_mentions(self, stories):
        assert all(len(s.mentions) >= 2 for s in stories)

    def test_relevant_mentions_scored_high(self, stories, small_universe):
        __, __, __, concepts = small_universe
        by_id = {c.concept_id: c for c in concepts}
        for story in stories:
            for mention in story.mentions:
                concept = by_id[mention.concept_id]
                if concept.relevant_in(story.topics):
                    assert mention.relevance >= 0.75
                elif not concept.is_junk:
                    assert mention.relevance <= 0.25

    def test_relevance_of_helper(self, stories):
        story = stories[0]
        mention = story.mentions[0]
        assert story.relevance_of(mention.concept_id) >= mention.relevance
        assert story.relevance_of(-1) == 0.0

    def test_deterministic(self, small_universe):
        __, vocab, topics, concepts = small_universe
        a = StoryGenerator(np.random.default_rng(9), topics, concepts, vocab).generate(0)
        b = StoryGenerator(np.random.default_rng(9), topics, concepts, vocab).generate(0)
        assert a.text == b.text
        assert a.mentions == b.mentions

    def test_text_is_sentences(self, stories):
        for story in stories[:5]:
            assert story.text.endswith(".")
            assert ". " in story.text


class TestWebCorpusGenerator:
    @pytest.fixture(scope="class")
    def corpus(self, small_universe):
        __, vocab, topics, concepts = small_universe
        generator = WebCorpusGenerator(
            np.random.default_rng(6), topics, concepts, vocab
        )
        return generator.generate(topic_page_count=60), concepts

    def test_corpus_nonempty(self, corpus):
        documents, __ = corpus
        assert len(documents) > 60  # topic pages + focus + incidental

    def test_doc_ids_unique(self, corpus):
        documents, __ = corpus
        ids = [d.doc_id for d in documents]
        assert len(set(ids)) == len(ids)

    def test_mention_offsets_valid(self, corpus):
        documents, concepts = corpus
        by_id = {c.concept_id: c for c in concepts}
        for document in documents[:100]:
            for mention in document.mentions:
                assert (
                    document.text[mention.start : mention.end]
                    == by_id[mention.concept_id].phrase
                )

    def test_specific_concepts_in_fewer_pages(self, corpus):
        documents, concepts = corpus
        pages_with = {c.concept_id: 0 for c in concepts}
        for document in documents:
            for concept_id in {m.concept_id for m in document.mentions}:
                pages_with[concept_id] += 1
        regular = [c for c in concepts if not c.is_junk]
        specific = [c for c in regular if c.specificity > 0.85]
        general = [c for c in regular if c.specificity < 0.4]
        if specific and general:
            mean_specific = np.mean([pages_with[c.concept_id] for c in specific])
            mean_general = np.mean([pages_with[c.concept_id] for c in general])
            assert mean_general > mean_specific
