"""Continuous-profiling layer: sampler, stage map, GC/heap telemetry.

Covers ``repro.obs.profile`` — the sampling stack profiler (hot-frame
dominance, determinism of the exports, multi-thread coverage, stage
attribution through the tracer's thread→stage map), the GC pause
monitor, the tracemalloc stage profiler, and the resident-byte
accounting for the frozen stores — plus the contract the serving path
depends on: attaching the profiler must not change ranked output.
"""

import gc
import threading
import time

import numpy as np
import pytest

from repro.obs import (
    GcMonitor,
    HeapProfiler,
    MetricsRegistry,
    StackSampler,
    Tracer,
    active_stages,
    mark_stage,
    set_stage_tracking,
    stage_tracking_enabled,
)
from repro.obs.profile import (
    heap_stage,
    record_resident_bytes,
    resident_bytes,
)


def _hot_spin(seconds):
    """A deliberately recognizable CPU burner for dominance checks."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(i * i for i in range(500))
    return total


class TestStackSampler:
    def test_hot_function_dominates_collapsed_stacks(self):
        sampler = StackSampler(hz=250, registry=MetricsRegistry())
        with sampler:
            _hot_spin(0.5)
        collapsed = sampler.collapsed()
        assert collapsed.endswith("\n")
        rows = [line.rpartition(" ") for line in collapsed.splitlines()]
        hot = sum(
            int(count) for stack, __, count in rows if "_hot_spin" in stack
        )
        assert sampler.sample_count > 10
        # the burner owns the thread for the whole window; anything
        # else (pytest plumbing, other runner threads) is a sliver
        assert hot >= 0.8 * sampler.sample_count
        assert "_hot_spin" in collapsed.splitlines()[0]

    def test_exports_are_deterministic_and_consistent(self):
        sampler = StackSampler(hz=200, registry=MetricsRegistry())
        with sampler:
            _hot_spin(0.3)
        assert sampler.collapsed() == sampler.collapsed()
        tree = sampler.call_tree()
        assert tree == sampler.call_tree()
        # the tree's total equals the folded sample count, and the
        # collapsed rows sum to it too
        total = sum(
            int(line.rpartition(" ")[2])
            for line in sampler.collapsed().splitlines()
        )
        assert tree["value"] == total == sampler.sample_count
        top = sampler.top_stacks(limit=3)
        assert len(top) <= 3
        assert top[0]["samples"] == max(row["samples"] for row in top)
        functions = sampler.top_functions(limit=5)
        assert functions and functions[0]["self_samples"] > 0

    def test_write_collapsed(self, tmp_path):
        sampler = StackSampler(hz=200, registry=MetricsRegistry())
        with sampler:
            _hot_spin(0.2)
        out = tmp_path / "profile.collapsed"
        sampler.write_collapsed(out)
        text = out.read_text()
        assert text == sampler.collapsed()
        for line in text.splitlines():
            stack, __, count = line.rpartition(" ")
            assert int(count) > 0
            assert stack  # frame;frame;... format

    def test_eight_thread_sample_count_sanity(self):
        """Every running thread contributes one stack per tick."""
        sampler = StackSampler(hz=150, registry=MetricsRegistry())
        stop = threading.Event()

        def worker():
            while not stop.is_set():
                sum(i * i for i in range(200))

        threads = [
            threading.Thread(target=worker, name=f"burner-{n}", daemon=True)
            for n in range(8)
        ]
        for thread in threads:
            thread.start()
        try:
            with sampler:
                time.sleep(0.5)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5)
        assert sampler.sample_ticks > 10
        by_thread = sampler.thread_samples()
        burners = [
            name for name in by_thread if name.startswith("burner-")
        ]
        assert len(burners) == 8
        # 8 burners + the main thread: at least 8 stacks per tick must
        # have been folded on average (threads never block here)
        assert sampler.sample_count >= 8 * sampler.sample_ticks

    def test_registry_counters(self):
        registry = MetricsRegistry()
        with StackSampler(hz=200, registry=registry):
            _hot_spin(0.2)
        snap = registry.snapshot()
        ticks = snap["profile_sample_ticks_total"]["series"][0]["value"]
        assert ticks > 0
        stage_total = sum(
            series["value"]
            for series in snap["profile_samples_total"]["series"]
        )
        assert stage_total > 0

    def test_rejects_bad_hz_and_double_start(self):
        with pytest.raises(ValueError):
            StackSampler(hz=0)
        sampler = StackSampler(hz=100, registry=MetricsRegistry())
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()


class TestStageTracking:
    def test_disabled_by_default_and_mark_is_noop(self):
        assert not stage_tracking_enabled()
        assert mark_stage("detect") is None
        assert active_stages() == {}

    def test_mark_save_restore_semantics(self):
        previous = set_stage_tracking(True)
        try:
            assert mark_stage("outer") is None
            assert mark_stage("inner") == "outer"  # returns the previous
            ident = threading.get_ident()
            assert active_stages()[ident] == "inner"
            assert mark_stage("outer") == "inner"
            assert mark_stage(None) == "outer"  # None clears the slot
            assert ident not in active_stages()
        finally:
            set_stage_tracking(previous)

    def test_disable_clears_the_map(self):
        set_stage_tracking(True)
        mark_stage("detect")
        set_stage_tracking(False)
        assert active_stages() == {}
        assert mark_stage("detect") is None  # tracking off again

    def test_tracer_spans_publish_stages_while_tracking(self):
        previous = set_stage_tracking(True)
        ident = threading.get_ident()
        try:
            tracer = Tracer(registry=MetricsRegistry())
            with tracer.trace("req"):
                with tracer.span("detect"):
                    assert active_stages()[ident] == "detect"
                    with tracer.span("features"):
                        assert active_stages()[ident] == "features"
                    assert active_stages()[ident] == "detect"  # restored
            assert ident not in active_stages()
        finally:
            set_stage_tracking(previous)

    def test_sampler_attributes_samples_to_marked_stage(self):
        sampler = StackSampler(hz=200, registry=MetricsRegistry())
        with sampler:  # start() turns stage tracking on
            assert stage_tracking_enabled()
            previous = mark_stage("hotstage")
            try:
                _hot_spin(0.4)
            finally:
                mark_stage(previous)
        assert not stage_tracking_enabled()  # restored on stop
        stages = sampler.stage_samples()
        assert stages.get("hotstage", 0) >= 0.8 * sampler.sample_count
        # the per-stage view only carries that stage's rows
        assert "_hot_spin" in sampler.collapsed(stage="hotstage")


class TestGcMonitor:
    def test_counts_collections_and_pauses(self):
        registry = MetricsRegistry()
        with GcMonitor(registry=registry) as monitor:
            for _ in range(3):
                gc.collect()
        assert monitor.pause_count >= 3
        assert monitor.total_pause_seconds >= 0.0
        assert monitor.max_pause_seconds >= 0.0
        snap = registry.snapshot()
        full = {
            series["labels"]["generation"]: series["value"]
            for series in snap["gc_collections_total"]["series"]
        }
        assert full["2"] >= 3  # gc.collect() runs generation 2
        assert snap["gc_pause_seconds"]["series"][0]["count"] >= 3

    def test_stop_detaches_the_callback(self):
        monitor = GcMonitor(registry=MetricsRegistry()).start()
        monitor.stop()
        assert monitor._callback not in gc.callbacks
        before = monitor.pause_count
        gc.collect()
        assert monitor.pause_count == before

    def test_callback_reentering_a_held_registry_lock_is_safe(self):
        """A collection can trigger on an allocation made while the
        registry lock is held (metric creation) — the callback then
        observes into the same registry on the same thread.  That
        re-entrance must complete, not self-deadlock (the registry
        lock is reentrant for exactly this reason)."""
        registry = MetricsRegistry()
        monitor = GcMonitor(registry=registry).start()
        done = threading.Event()

        def reenter():
            with registry._lock:  # simulates mid-_get_or_create state
                monitor._callback("start", {})
                monitor._callback(
                    "stop",
                    {"generation": 0, "collected": 1, "uncollectable": 0},
                )
            done.set()

        worker = threading.Thread(target=reenter, daemon=True)
        try:
            worker.start()
            assert done.wait(timeout=10), (
                "GC callback deadlocked against the registry lock"
            )
            assert monitor.pause_count == 1
        finally:
            monitor.stop()

    def test_snapshot_shape(self):
        with GcMonitor(registry=MetricsRegistry()) as monitor:
            gc.collect()
            snap = monitor.snapshot()
        assert snap["monitoring"] is True
        assert len(snap["counts"]) == 3
        assert snap["pauses"]["count"] >= 1
        assert snap["pauses"]["total_seconds"] >= 0.0


class TestHeapProfiler:
    def test_stage_attribution_of_net_allocations(self):
        registry = MetricsRegistry()
        profiler = HeapProfiler(registry=registry)
        profiler.start()
        try:
            keep = []
            with profiler.stage("build") as measurement:
                keep.append(bytearray(1_000_000))
            assert measurement["net_bytes"] >= 900_000
            assert profiler.stage_bytes["build"] >= 900_000
            assert profiler.stage_peaks["build"] >= 900_000
            del keep
        finally:
            profiler.stop()
        snap = registry.snapshot()
        stage_net = {
            series["labels"]["stage"]: series["value"]
            for series in snap["heap_stage_net_bytes_total"]["series"]
        }
        assert stage_net["build"] >= 900_000
        assert snap["heap_current_bytes"]["series"][0]["value"] > 0

    def test_heap_stage_helper_follows_the_active_profiler(self):
        # no active profiler: the block still runs, measuring nothing
        with heap_stage("idle") as measurement:
            pass
        assert measurement is None
        profiler = HeapProfiler(registry=MetricsRegistry()).start()
        try:
            keep = []
            with heap_stage("mine") as measurement:
                keep.append(bytearray(500_000))
            assert measurement["net_bytes"] >= 400_000
            assert profiler.stage_bytes["mine"] >= 400_000
        finally:
            profiler.stop()

    def test_snapshot_diff_top(self):
        profiler = HeapProfiler(registry=MetricsRegistry()).start()
        try:
            profiler.snapshot("before")
            keep = bytearray(2_000_000)
            profiler.snapshot("after")
            rows = profiler.diff_top("before", "after", limit=5)
            assert rows
            assert max(row["size_diff_bytes"] for row in rows) >= 1_500_000
            with pytest.raises(KeyError):
                profiler.diff_top("before", "missing")
            del keep
        finally:
            profiler.stop()

    def test_stats_reports_tracing_state(self):
        profiler = HeapProfiler(registry=MetricsRegistry())
        assert profiler.stats()["tracing"] is False
        profiler.start()
        try:
            assert profiler.stats()["tracing"] is True
        finally:
            profiler.stop()
        assert profiler.stats()["tracing"] is False


class TestResidentBytes:
    def test_counts_arrays_buffers_once_through_containers(self):
        array = np.zeros(1000, dtype=np.int64)
        view = array[:10]  # shares the base buffer: counted once
        payload = {
            "arena": [array, view],
            "cache": (b"xyzzy", bytearray(5)),
            "name": "ignored",
        }
        assert resident_bytes(payload) == array.nbytes + 5 + 5

    def test_walks_object_attributes_and_slots(self):
        class Slotted:
            __slots__ = ("column",)

            def __init__(self):
                self.column = np.ones(64, dtype=np.float64)

        class Store:
            def __init__(self):
                self.inner = Slotted()
                self.blob = b"0123456789"

        expected = 64 * 8 + 10
        assert resident_bytes(Store()) == expected

    def test_depth_bound_and_cycles_are_safe(self):
        a = {}
        a["self"] = a  # cycle
        a["deep"] = {"1": {"2": {"3": {"4": {"5": np.zeros(8)}}}}}
        assert resident_bytes(a, max_depth=3) == 0  # too deep to reach

    def test_record_resident_bytes_sets_gauges(self):
        registry = MetricsRegistry()
        measured = record_resident_bytes(
            {"store": np.zeros(100, dtype=np.uint8), "empty": object()},
            registry=registry,
        )
        assert measured == {"store": 100, "empty": 0}
        snap = registry.snapshot()
        by_component = {
            series["labels"]["component"]: series["value"]
            for series in snap["resident_bytes"]["series"]
        }
        assert by_component == {"store": 100.0, "empty": 0.0}


class TestProfilerDoesNotPerturbRanking:
    def test_ranked_output_identical_with_sampler(
        self, env_world, env_extractor, env_miner, env_pipeline, env_stories
    ):
        from repro.features import RelevanceModel
        from repro.ranking import RankSVM
        from repro.runtime import (
            PackedRelevanceStore,
            QuantizedInterestingnessStore,
            RankerService,
        )

        phrases = [c.phrase for c in env_world.concepts]
        interestingness = QuantizedInterestingnessStore.build(
            env_extractor, phrases
        )
        model = RelevanceModel.mine_all(env_miner, phrases[:20])
        relevance = PackedRelevanceStore.build(model)
        svm = RankSVM(epochs=10)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(24, 16))
        svm.fit(X, X[:, 0], np.repeat(np.arange(8), 3))
        registry = MetricsRegistry()
        service = RankerService(
            env_pipeline, interestingness, relevance, svm,
            registry=registry, tracer=Tracer(registry=registry),
        )
        texts = [story.text for story in env_stories[:6]]
        plain = service.process_batch(texts, top=5)
        with StackSampler(hz=400, registry=MetricsRegistry()) as sampler:
            profiled = service.process_batch(texts, top=5)
        assert profiled == plain
        # and the sampler saw the service's stage marks while running
        assert sampler.sample_count >= 0
