"""OfflineBuilder: stage DAG, mode/worker determinism, vectorized miners."""

import json
import random

import pytest

from repro.features.relevance import (
    RESOURCES,
    RelevanceModel,
    RelevantKeywordMiner,
    build_stemmed_df,
)
from repro.offline.builder import (
    INTERESTINGNESS_PACK,
    MANIFEST,
    RELEVANCE_PACK,
    BuildConfig,
    OfflineBuilder,
)
from repro.offline.corpus import TokenizedCorpus
from repro.offline.mining import VectorizedKeywordMiner, VectorizedPrismaTool
from repro.querylog.log import QueryLog
from repro.querylog.units import UnitMiner, VectorizedUnitMiner, lexicon_signature
from repro.runtime.datapack import load_interestingness_store, load_relevance_store
from repro.search.engine import SearchEngine
from repro.search.prisma import PrismaTool
from repro.search.snippets import SnippetService
from repro.search.suggestions import SuggestionService

VOCAB = [
    "cuba", "fidel", "castro", "talks", "election", "embargo", "trade",
    "weather", "storm", "havana", "summit", "policy", "crisis", "leader",
]

CONCEPTS = ["cuba talks", "fidel castro", "embargo", "storm warning", "havana summit"]


def tiny_world(seed=13, docs=30):
    rng = random.Random(seed)
    documents = []
    for doc_id in range(1, docs + 1):
        tokens = [rng.choice(VOCAB) for __ in range(rng.randint(12, 30))]
        for phrase in rng.sample(CONCEPTS, 2):
            position = rng.randint(0, len(tokens))
            tokens[position:position] = phrase.split()
        documents.append((doc_id, " ".join(tokens)))
    queries = {}
    for phrase in CONCEPTS:
        queries[phrase] = rng.randint(3, 25)
        queries[f"{phrase} {rng.choice(VOCAB)}"] = rng.randint(1, 6)
    for __ in range(20):
        queries.setdefault(
            f"{rng.choice(VOCAB)} {rng.choice(VOCAB)}", rng.randint(1, 9)
        )
    return documents, QueryLog.from_strings(queries)


@pytest.fixture(scope="module")
def world():
    return tiny_world()


def build(world, tmp_path, tag, **kwargs):
    documents, query_log = world
    return OfflineBuilder(BuildConfig(**kwargs)).build(
        documents, query_log, CONCEPTS, tmp_path / tag
    )


class TestBuilder:
    def test_seed_and_fast_packs_byte_identical(self, world, tmp_path):
        seed = build(world, tmp_path, "seed", fast=False)
        fast = build(world, tmp_path, "fast", fast=True, workers=1)
        assert seed.pack_sha256 == fast.pack_sha256
        assert seed.mode == "seed" and fast.mode == "fast"

    def test_worker_count_does_not_change_pack_bytes(self, world, tmp_path):
        serial = build(world, tmp_path, "w1", fast=True, workers=1)
        fanned = build(world, tmp_path, "w4", fast=True, workers=4)
        assert serial.pack_sha256 == fanned.pack_sha256
        assert fanned.workers == 4

    def test_report_stages_and_manifest(self, world, tmp_path):
        report = build(world, tmp_path, "report", fast=True, workers=1)
        assert [stage.name for stage in report.stages] == [
            "corpus", "index", "units", "interestingness",
            "relevance", "quantize", "kernel", "pack",
        ]
        assert report.total_seconds == pytest.approx(
            sum(stage.seconds for stage in report.stages)
        )
        assert report.document_count == len(world[0])
        assert report.concept_count == len(CONCEPTS)
        assert report.docs_per_second >= 0
        assert report.concepts_per_second >= 0
        manifest = json.loads((tmp_path / "report" / MANIFEST).read_text())
        assert manifest["pack_sha256"] == report.pack_sha256
        assert len(manifest["stages"]) == 8

    def test_manifest_bakes_drift_baseline(self, world, tmp_path):
        from repro.obs.quality import DriftBaseline, load_baseline

        report = build(world, tmp_path, "baseline", fast=True, workers=1)
        assert report.feature_baselines is not None
        assert report.as_dict()["feature_baselines"] == report.feature_baselines
        manifest = json.loads(
            (tmp_path / "baseline" / MANIFEST).read_text()
        )
        assert manifest["feature_baselines"] == report.feature_baselines

        baseline = load_baseline(tmp_path / "baseline")
        assert baseline is not None
        assert baseline.count == len(CONCEPTS)
        # the baseline measures the dequantized serving-side vectors
        store = load_interestingness_store(
            tmp_path / "baseline" / INTERESTINGNESS_PACK
        )
        recomputed = DriftBaseline.from_store(store)
        assert baseline.names == recomputed.names
        assert list(baseline.mean) == pytest.approx(list(recomputed.mean))
        width = store.extract(CONCEPTS[0]).numeric(()).size
        assert len(baseline.names) == width

    def test_old_manifests_without_baseline_still_load(self, world, tmp_path):
        from repro.obs.quality import load_baseline

        build(world, tmp_path, "oldpack", fast=True, workers=1)
        manifest_path = tmp_path / "oldpack" / MANIFEST
        manifest = json.loads(manifest_path.read_text())
        del manifest["feature_baselines"]  # simulate a pre-baseline pack
        manifest_path.write_text(json.dumps(manifest))
        assert load_baseline(tmp_path / "oldpack") is None
        # and the stores themselves are oblivious to the manifest change
        store = load_interestingness_store(
            tmp_path / "oldpack" / INTERESTINGNESS_PACK
        )
        assert CONCEPTS[0] in store

    def test_packs_load_back(self, world, tmp_path):
        build(world, tmp_path, "load", fast=True, workers=1)
        interestingness = load_interestingness_store(
            tmp_path / "load" / INTERESTINGNESS_PACK
        )
        relevance = load_relevance_store(tmp_path / "load" / RELEVANCE_PACK)
        for phrase in CONCEPTS:
            assert phrase in interestingness
            vector = interestingness.extract(phrase)
            assert vector.number_of_chars == len(phrase)
            assert relevance.packed(phrase).size > 0


def seed_engine(documents):
    engine = SearchEngine()
    for doc_id, text in documents:
        engine.add_document(doc_id, text)
    return engine


@pytest.fixture(scope="module")
def miners(world):
    documents, query_log = world
    suggestions = SuggestionService(query_log)
    engine = seed_engine(documents)
    seed_df = build_stemmed_df(text for __, text in documents)
    seed = RelevantKeywordMiner(
        SnippetService(engine), PrismaTool(engine), suggestions, seed_df
    )
    corpus = TokenizedCorpus(documents)
    fast = VectorizedKeywordMiner(
        corpus, corpus.engine(), suggestions, corpus.stemmed_df()
    )
    return seed, fast


class TestVectorizedMiners:
    def test_all_resources_match_seed(self, miners):
        seed, fast = miners
        for resource in RESOURCES:
            for phrase in CONCEPTS:
                assert seed.mine(phrase, resource) == fast.mine(phrase, resource), (
                    resource,
                    phrase,
                )

    def test_prisma_tool_matches_seed(self, world):
        documents, __ = world
        engine = seed_engine(documents)
        corpus = TokenizedCorpus(documents)
        fast = VectorizedPrismaTool(corpus.engine(), corpus)
        slow = PrismaTool(engine)
        for query in CONCEPTS + ["cuba", "unseenword"]:
            assert slow.feedback(query) == fast.feedback(query)

    def test_stemmed_df_matches_seed(self, world):
        documents, __ = world
        seed_df = build_stemmed_df(text for __, text in documents)
        fast_df = TokenizedCorpus(documents).stemmed_df()
        assert fast_df.total_documents == seed_df.total_documents
        for term in VOCAB + ["talk", "unseen"]:
            assert fast_df.document_frequency(term) == seed_df.document_frequency(term)

    def test_frozen_engine_required(self, world):
        documents, query_log = world
        corpus = TokenizedCorpus(documents)
        with pytest.raises(ValueError):
            VectorizedKeywordMiner(
                corpus,
                seed_engine(documents),  # not frozen
                SuggestionService(query_log),
                corpus.stemmed_df(),
            )

    def test_mine_many_parallel_matches_serial(self, miners):
        seed, __ = miners
        serial = {
            resource: {phrase: seed.mine(phrase, resource) for phrase in CONCEPTS}
            for resource in RESOURCES
        }
        fanned = seed.mine_many(CONCEPTS, RESOURCES, workers=2, chunk_size=2)
        assert fanned == serial

    def test_mine_all_workers_match(self, miners):
        __, fast = miners
        one = RelevanceModel.mine_all(fast, CONCEPTS, workers=1)
        many = RelevanceModel.mine_all(fast, CONCEPTS, workers=3)
        assert one.phrases() == many.phrases()
        for phrase in one.phrases():
            assert one.relevant_terms(phrase) == many.relevant_terms(phrase)


class TestVectorizedUnits:
    def test_lexicon_matches_seed(self, world):
        __, query_log = world
        seed = UnitMiner().mine(query_log)
        fast = VectorizedUnitMiner().mine(query_log)
        assert lexicon_signature(seed) == lexicon_signature(fast)
        assert seed.max_length == fast.max_length

    def test_lexicon_matches_seed_custom_params(self, world):
        __, query_log = world
        kwargs = dict(min_pair_count=2, mi_threshold=0.5, max_unit_length=3)
        seed = UnitMiner(**kwargs).mine(query_log)
        fast = VectorizedUnitMiner(**kwargs).mine(query_log)
        assert lexicon_signature(seed) == lexicon_signature(fast)
