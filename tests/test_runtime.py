"""Tests for the production runtime: Golomb, TID stores, ranker service."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import RelevanceModel, RelevanceScorer
from repro.ranking import RankSVM
from repro.runtime import (
    MAX_SCORE_CODE,
    MAX_TID,
    GlobalTidTable,
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
    golomb_decode,
    golomb_encode,
    optimal_parameter,
    pack_pair,
    unpack_pair,
)


class TestGolomb:
    def test_round_trip_simple(self):
        values = [1, 5, 9, 200, 201, 5000]
        payload, m = golomb_encode(values)
        assert golomb_decode(payload, len(values), m) == values

    def test_round_trip_various_m(self):
        values = [0, 3, 17, 64, 65, 1000]
        for m in (1, 2, 3, 7, 8, 100):
            payload, __ = golomb_encode(values, m)
            assert golomb_decode(payload, len(values), m) == values

    def test_empty(self):
        payload, m = golomb_encode([])
        assert golomb_decode(payload, 0, m) == []

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            golomb_encode([3, 2])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            golomb_encode([2, 2])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            golomb_encode([-1, 4])

    def test_compresses_dense_lists(self):
        values = list(range(0, 2000, 2))
        payload, __ = golomb_encode(values)
        assert len(payload) < 1000 * 4  # beats raw 32-bit storage

    def test_optimal_parameter_positive(self):
        assert optimal_parameter([]) == 1
        assert optimal_parameter([10, 20, 30]) >= 1

    @given(
        st.sets(st.integers(0, 100000), min_size=1, max_size=60),
        st.integers(1, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, values, m):
        ordered = sorted(values)
        payload, __ = golomb_encode(ordered, m)
        assert golomb_decode(payload, len(ordered), m) == ordered


class TestPackedPairs:
    def test_pack_unpack(self):
        packed = pack_pair(12345, 678)
        assert unpack_pair(packed) == (12345, 678)

    def test_limits(self):
        assert unpack_pair(pack_pair(MAX_TID, MAX_SCORE_CODE)) == (
            MAX_TID,
            MAX_SCORE_CODE,
        )
        with pytest.raises(ValueError):
            pack_pair(MAX_TID + 1, 0)
        with pytest.raises(ValueError):
            pack_pair(0, MAX_SCORE_CODE + 1)

    def test_fits_32_bits(self):
        assert pack_pair(MAX_TID, MAX_SCORE_CODE) < (1 << 32)

    @given(st.integers(0, MAX_TID), st.integers(0, MAX_SCORE_CODE))
    @settings(max_examples=50)
    def test_round_trip_property(self, tid, code):
        assert unpack_pair(pack_pair(tid, code)) == (tid, code)


class TestGlobalTidTable:
    def test_assign_stable(self):
        table = GlobalTidTable()
        a = table.assign("cuba")
        b = table.assign("talks")
        assert table.assign("cuba") == a
        assert a != b

    def test_lookup_unknown(self):
        assert GlobalTidTable().lookup("nope") is None

    def test_tids_of_drops_unknown(self):
        table = GlobalTidTable()
        table.assign("cuba")
        assert table.tids_of(["cuba", "nope"]) == {0}


class TestPackedRelevanceStore:
    @pytest.fixture(scope="class")
    def model(self):
        return RelevanceModel(
            {
                "global warming": (("climat", 50.0), ("carbon", 30.0), ("ice", 5.0)),
                "my favorite": (("stuff", 2.0),),
            }
        )

    def test_build_and_score(self, model):
        store = PackedRelevanceStore.build(model)
        context = store.context_stems("the climate and carbon debate")
        score = store.score("global warming", context)
        assert score == pytest.approx(80.0, rel=0.01)

    def test_scores_match_reference_scorer(self, model):
        """The packed store must approximate the float RelevanceScorer."""
        store = PackedRelevanceStore.build(model)
        reference = RelevanceScorer(model)
        text = "climate carbon ice melting stuff"
        packed_score = store.score_text("global warming", text)
        float_score = reference.score_text("global warming", text)
        assert packed_score == pytest.approx(float_score, rel=0.01)

    def test_junk_ceiling_low(self, model):
        store = PackedRelevanceStore.build(model)
        junk_best = store.score_text("my favorite", "stuff stuff stuff")
        real_best = store.score_text("global warming", "climat carbon ice")
        assert junk_best < real_best / 10

    def test_unknown_phrase_zero(self, model):
        store = PackedRelevanceStore.build(model)
        assert store.score_text("unknown", "climate") == 0.0

    def test_memory_accounting(self, model):
        store = PackedRelevanceStore.build(model)
        assert store.memory_bytes() == 4 * 4  # four pairs, 32 bits each

    def test_compressed_smaller_for_large_stores(self, env_world, env_miner):
        phrases = [c.phrase for c in env_world.concepts[:12]]
        model = RelevanceModel.mine_all(env_miner, phrases)
        store = PackedRelevanceStore.build(model)
        assert store.compressed_bytes() < store.memory_bytes()

    def test_shared_tids_across_concepts(self, env_world, env_miner):
        """Related concepts share keywords, so TIDs grow sub-linearly."""
        phrases = [c.phrase for c in env_world.concepts[:30]]
        model = RelevanceModel.mine_all(env_miner, phrases)
        table = GlobalTidTable()
        store = PackedRelevanceStore.build(model, table)
        assert store.tid_table is table
        total_terms = sum(len(model.relevant_terms(p)) for p in phrases)
        assert 0 < len(table) < total_terms


class TestQuantizedInterestingnessStore:
    def test_round_trip_close(self, env_world, env_extractor):
        phrases = [c.phrase for c in env_world.concepts[:20]]
        store = QuantizedInterestingnessStore.build(env_extractor, phrases)
        for phrase in phrases:
            live = env_extractor.extract(phrase)
            stored = store.extract(phrase)
            assert stored.high_level_type == live.high_level_type
            assert stored.concept_size == live.concept_size
            assert stored.number_of_chars == live.number_of_chars
            assert stored.freq_exact == pytest.approx(live.freq_exact, abs=2)
            assert stored.unit_score == pytest.approx(live.unit_score, abs=0.01)

    def test_memory_is_18_bytes_per_concept(self, env_world, env_extractor):
        phrases = [c.phrase for c in env_world.concepts[:20]]
        store = QuantizedInterestingnessStore.build(env_extractor, phrases)
        assert store.memory_bytes() == len(phrases) * 18

    def test_unknown_phrase_raises(self, env_world, env_extractor):
        store = QuantizedInterestingnessStore.build(
            env_extractor, [env_world.concepts[0].phrase]
        )
        with pytest.raises(KeyError):
            store.extract("missing concept")


class TestRankerService:
    @pytest.fixture(scope="class")
    def service(self, env_world, env_extractor, env_miner, env_pipeline):
        phrases = [c.phrase for c in env_world.concepts]
        interestingness = QuantizedInterestingnessStore.build(
            env_extractor, phrases
        )
        model = RelevanceModel.mine_all(
            env_miner, [c.phrase for c in env_world.concepts[:40]]
        )
        relevance = PackedRelevanceStore.build(model)
        # a tiny trained model: prefer higher freq_exact (feature 0)
        svm = RankSVM(epochs=30)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 16))
        y = X[:, 0]
        g = np.repeat(np.arange(8), 5)
        svm.fit(X, y, g)
        return RankerService(env_pipeline, interestingness, relevance, svm)

    def test_process_returns_ranked_detections(self, service, env_stories):
        ranked = service.process(env_stories[0].text)
        scores = [d.score for d in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_top_limit(self, service, env_stories):
        assert len(service.process(env_stories[1].text, top=3)) <= 3

    def test_stats_accumulate(self, service, env_stories):
        service.reset_stats()
        service.process_batch([s.text for s in env_stories[:5]])
        stats = service.stats
        assert stats.documents == 5
        assert stats.bytes_processed > 0
        assert stats.stemmer_seconds > 0
        assert stats.ranker_seconds > 0
        assert stats.stemmer_mb_per_second > 0
        assert stats.ranker_mb_per_second > 0

    def test_empty_rate_guard(self):
        # zero work reports nan ("no measurement"), never a fake 0.0
        # throughput — consistent with Histogram.quantile on empty data
        from repro.runtime import TimingStats

        stats = TimingStats()
        assert np.isnan(stats.stemmer_mb_per_second)
        assert np.isnan(stats.detections_per_document)
