"""Property-based invariants of the metrics and ranking layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import ndcg_at_k, pairwise_errors
from repro.ranking import RankSVM, build_pairs


def monotone_transform(scores, shift, scale):
    return np.asarray(scores) * scale + shift


labels_strategy = st.lists(
    st.floats(min_value=0.0, max_value=0.5), min_size=2, max_size=8
)
scores_strategy = st.lists(
    st.floats(min_value=-5.0, max_value=5.0), min_size=2, max_size=8
)


class TestMetricInvariance:
    @given(labels_strategy, scores_strategy, st.floats(0.1, 10.0),
           st.floats(-3.0, 3.0))
    @settings(max_examples=50)
    def test_wer_invariant_under_monotone_transform(
        self, labels, scores, scale, shift
    ):
        size = min(len(labels), len(scores))
        labels, scores = labels[:size], scores[:size]
        transformed_scores = monotone_transform(scores, shift, scale)
        # float precision can merge near-equal scores into ties; the
        # invariant only holds when tie structure is preserved
        if len(set(np.asarray(scores).tolist())) != len(
            set(transformed_scores.tolist())
        ):
            return
        base = pairwise_errors(labels, scores).weighted_error_rate
        transformed = pairwise_errors(labels, transformed_scores).weighted_error_rate
        assert base == pytest.approx(transformed)

    @given(labels_strategy, scores_strategy, st.floats(0.1, 10.0),
           st.integers(1, 5))
    @settings(max_examples=50)
    def test_ndcg_invariant_under_positive_scaling(
        self, labels, scores, scale, k
    ):
        size = min(len(labels), len(scores))
        labels = np.asarray(labels[:size]) * 10
        scores = np.asarray(scores[:size])
        base = ndcg_at_k(labels, scores, k)
        scaled = ndcg_at_k(labels, scores * scale, k)
        assert base == pytest.approx(scaled)

    @given(labels_strategy, scores_strategy)
    @settings(max_examples=50)
    def test_wer_reversal_complements(self, labels, scores):
        """Reversing a tie-free ranking flips mistakes to 1 - WER."""
        size = min(len(labels), len(scores))
        labels = labels[:size]
        scores = np.asarray(scores[:size])
        if len(set(scores.tolist())) != len(scores):
            return  # predicted ties break the complement identity
        errors = pairwise_errors(labels, scores)
        if errors.total_pairs == 0:
            return
        reversed_errors = pairwise_errors(labels, -scores)
        total = (
            errors.weighted_error_rate + reversed_errors.weighted_error_rate
        )
        assert total == pytest.approx(1.0)

    @given(labels_strategy)
    @settings(max_examples=50)
    def test_perfect_ranking_zero_error_full_ndcg(self, labels):
        labels = np.asarray(labels)
        scores = labels.copy()
        errors = pairwise_errors(labels, scores)
        assert errors.weighted_error_rate == 0.0
        assert ndcg_at_k(labels * 10, scores, len(labels)) == pytest.approx(1.0)


class TestRankSvmProperties:
    @given(st.integers(0, 2**31 - 1), st.floats(0.1, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_decision_order_invariant_to_feature_scaling(self, seed, scale):
        """Standardization makes the learned ordering scale-invariant."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(48, 4))
        w = rng.normal(size=4)
        y = X @ w
        g = np.repeat(np.arange(8), 6)
        base = RankSVM(epochs=60).fit(X, y, g)
        scaled = RankSVM(epochs=60).fit(X * scale, y, g)
        base_order = np.argsort(-base.decision_function(X[:12]))
        scaled_order = np.argsort(-scaled.decision_function(X[:12] * scale))
        assert (base_order == scaled_order).all()

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_pair_count_bounded(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        X = rng.normal(size=(n, 3))
        labels = rng.random(n)
        groups = rng.integers(0, 3, n)
        pairs = build_pairs(X, labels, groups, max_pairs_per_group=10)
        assert pairs.count <= 30  # 3 groups x cap

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_pairwise_accuracy_complement_of_error(self, seed):
        """pairwise_accuracy == 1 - unweighted error rate (no ties)."""
        from repro.metrics import grouped_errors

        rng = np.random.default_rng(seed)
        X = rng.normal(size=(24, 3))
        y = rng.random(24)
        g = np.repeat(np.arange(4), 6)
        model = RankSVM(epochs=40).fit(X, y, g)
        scores = model.decision_function(X)
        if len(set(scores.tolist())) != len(scores):
            return
        accuracy = model.pairwise_accuracy(X, y, g)
        errors = grouped_errors(y, scores, g)
        assert accuracy == pytest.approx(1.0 - errors.error_rate)
