#!/usr/bin/env python
"""Breaking news: online CTR feedback + temporal trend features.

Demonstrates the paper's Section VIII future-work scenario end to end:
a world event makes a previously dull concept spike; the offline model
keeps ranking it low, but (a) the online CTR tracker boosts it within
the same week, and (b) the temporal query-log features identify the
spike from search behaviour alone.

Run:  python examples/breaking_news.py
"""

import numpy as np

from repro import Environment, EnvironmentConfig, WorldConfig
from repro.clicks import OnlineCtrTracker, OnlineScoreAdjuster
from repro.querylog import WorldEvent, generate_temporal_query_log

WORLD = WorldConfig(
    seed=43,
    vocabulary_size=1800,
    topic_count=24,
    words_per_topic=50,
    concept_count=220,
    topic_page_count=150,
)


def main() -> None:
    print("building environment ...")
    env = Environment.build(EnvironmentConfig(world=WORLD))

    # pick a dull (but not hopeless) concept to be this week's breaking story
    dull = min(
        (
            c
            for c in env.world.concepts
            if not c.is_junk and c.home_topics and c.interestingness > 0.12
        ),
        key=lambda c: c.interestingness,
    )
    print(
        f"\nbreaking concept: {dull.phrase!r} "
        f"(latent interestingness {dull.interestingness:.2f} -> spikes 6x)"
    )

    # --- temporal query logs see the spike ------------------------------
    rng = np.random.default_rng(99)
    events = [WorldEvent(week=3, concept_id=dull.concept_id, intensity=6.0)]
    temporal = generate_temporal_query_log(
        rng,
        env.world.concepts,
        env.world.topics,
        env.world.vocabulary,
        weeks=4,
        events=events,
    )
    volumes = temporal.weekly_frequencies(tuple(dull.terms))
    print(f"weekly query volume: {volumes}")
    print(
        f"spike_ratio in event week: "
        f"{temporal.spike_ratio(tuple(dull.terms), week=3):.2f} "
        f"(quiet weeks ~1.0)"
    )

    # --- online click feedback reacts within the week --------------------
    tracker = OnlineCtrTracker()
    # normal traffic: everything clicks at its usual rate
    model = env.click_model(seed=5)
    for concept in env.world.concepts[:80]:
        probability = model.click_probability(concept.interestingness, 0.8, 0)
        views = 400
        tracker.observe(concept.phrase, views, int(probability * views))
    print(f"\nglobal live CTR: {tracker.global_ctr * 100:.2f}%")
    print(
        f"{dull.phrase!r} live CTR before the event: "
        f"{tracker.ctr(dull.phrase) * 100:.2f}%"
    )

    # the event: users suddenly click the dull concept heavily
    boosted = model.click_probability(
        min(1.0, dull.interestingness * 6.0), 0.9, 0
    )
    for __ in range(8):
        tracker.observe(dull.phrase, 500, int(boosted * 500))
    print(
        f"{dull.phrase!r} live CTR during the event: "
        f"{tracker.ctr(dull.phrase) * 100:.2f}%"
    )

    adjuster = OnlineScoreAdjuster(tracker, strength=1.0)
    # rivals from the same mid-tier: the offline model cannot separate
    # them from the breaking concept
    rivals = [
        c
        for c in env.world.concepts[:80]
        if not c.is_junk and 0.12 < c.interestingness < 0.35
        and c.concept_id != dull.concept_id
    ][:4]
    phrases = [dull.phrase] + [c.phrase for c in rivals]
    offline_scores = [1.0] * len(phrases)
    print("\noffline ranking vs online-adjusted ranking:")
    offline_order = [
        p for __, p in sorted(zip(offline_scores, phrases), reverse=True)
    ]
    adjusted = adjuster.rerank(phrases, offline_scores)
    print(f"  offline : {offline_order}")
    print(f"  adjusted: {[p for p, __ in adjusted]}")
    if adjusted[0][0] == dull.phrase:
        print(
            "\nthe spiking concept was promoted to the top — the system "
            "'reacts intelligently to world events in real time' (paper §VIII)."
        )


if __name__ == "__main__":
    main()
