#!/usr/bin/env python
"""The production framework (paper Section VI) end to end.

Builds the quantized interestingness store (2 bytes per field), the
Global TID table with packed 32-bit (TID, score) relevance pairs,
reports memory footprints (including the Golomb-coded variant the
paper proposes), and measures stemmer/ranker throughput over a batch
of documents — the paper's 7.9 MB/s / 2.4 MB/s experiment.

Run:  python examples/production_framework.py
"""

from repro import Environment, EnvironmentConfig, WorldConfig
from repro.eval import RankingExperiment, collect_dataset
from repro.ranking import RankSVM
from repro.runtime import (
    GlobalTidTable,
    PackedRelevanceStore,
    QuantizedInterestingnessStore,
    RankerService,
)

WORLD = WorldConfig(
    seed=31,
    vocabulary_size=1800,
    topic_count=24,
    words_per_topic=50,
    concept_count=240,
    topic_page_count=150,
)


def main() -> None:
    print("building environment ...")
    env = Environment.build(EnvironmentConfig(world=WORLD))
    inventory = [c.phrase for c in env.world.concepts]

    print("offline: computing + quantizing interestingness vectors ...")
    interestingness = QuantizedInterestingnessStore.build(env.extractor, inventory)
    per_concept = interestingness.memory_bytes() / len(interestingness)
    print(
        f"  {len(interestingness)} concepts x {per_concept:.0f} bytes "
        f"= {interestingness.memory_bytes() / 1e3:.1f} KB "
        f"(paper: 18 MB per 1M concepts -> ours extrapolates to "
        f"{per_concept * 1e6 / 1e6:.0f} MB per 1M)"
    )

    print("offline: mining relevant keywords + packing (TID, score) pairs ...")
    model = env.relevance_model(inventory)
    tid_table = GlobalTidTable()
    relevance = PackedRelevanceStore.build(model, tid_table)
    pairs = relevance.memory_bytes() // 4
    print(
        f"  {len(relevance)} concepts, {pairs} packed pairs, "
        f"{len(tid_table)} distinct TIDs (sharing across concepts)"
    )
    print(
        f"  packed store: {relevance.memory_bytes() / 1e3:.1f} KB; "
        f"Golomb-coded: {relevance.compressed_bytes() / 1e3:.1f} KB "
        f"({(1 - relevance.compressed_bytes() / relevance.memory_bytes()) * 100:.0f}% smaller)"
    )

    print("training the ranking model on click data ...")
    dataset = collect_dataset(env, 150, story_seed=5)
    experiment = RankingExperiment(env, dataset)
    features = experiment.feature_matrix((), "snippets")
    svm = RankSVM()
    svm.fit(features, experiment._labels_arr, experiment._groups_arr)

    service = RankerService(env.pipeline, interestingness, relevance, svm)

    print("runtime: processing a batch of documents ...")
    documents = [story.text for story in env.stories(200, seed=777)]
    service.process_batch(documents, top=3)
    stats = service.stats
    print(
        f"  {stats.documents} documents, "
        f"{stats.bytes_processed / 1e6:.2f} MB total, "
        f"{stats.detections_per_document:.2f} annotations/doc"
    )
    print(
        f"  stemmer: {stats.stemmer_mb_per_second:6.2f} MB/s   "
        f"(paper measured 7.9 MB/s on 2006 hardware)"
    )
    print(
        f"  ranker : {stats.ranker_mb_per_second:6.2f} MB/s   "
        f"(paper measured 2.4 MB/s on 2006 hardware)"
    )


if __name__ == "__main__":
    main()
