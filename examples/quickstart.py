#!/usr/bin/env python
"""Quickstart: detect and rank the key concepts of a news story.

Builds a small synthetic world, runs the Contextual Shortcuts detection
pipeline on a generated story, and prints the concept-vector ranking —
the Section II-B example of the paper ("we list top five concepts in
the news snippet ... with their concept vector scores").

Run:  python examples/quickstart.py
"""

from repro import Environment, EnvironmentConfig, WorldConfig

SMALL_WORLD = WorldConfig(
    seed=7,
    vocabulary_size=1500,
    topic_count=16,
    words_per_topic=50,
    concept_count=180,
    topic_page_count=120,
)


def main() -> None:
    print("building synthetic world + substrate stack ...")
    env = Environment.build(EnvironmentConfig(world=SMALL_WORLD))
    print(
        f"  {len(env.world.concepts)} concepts, "
        f"{len(env.world.web_corpus)} web pages, "
        f"{len(env.query_log)} distinct queries, "
        f"{len(env.lexicon)} mined units"
    )

    story = env.stories(1, seed=42)[0]
    print("\n--- story (first 300 chars) ---")
    print(story.text[:300] + " ...")

    annotated = env.pipeline.process(story.text)
    print(f"\ndetected {len(annotated.detections)} entities/concepts")

    print("\ntop 5 concepts by concept-vector score (the baseline ranking):")
    for detection in annotated.by_concept_vector_score()[:5]:
        concept = env.world.concept_by_phrase(detection.phrase)
        truth = story.relevance_of(concept.concept_id)
        print(
            f"  {detection.phrase:<34s} score={detection.score:6.3f}  "
            f"[latent interestingness={concept.interestingness:.2f}, "
            f"latent relevance={truth:.2f}]"
        )

    print("\nannotated text (first 300 chars):")
    print(annotated.annotate()[:300] + " ...")


if __name__ == "__main__":
    main()
