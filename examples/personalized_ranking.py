#!/usr/bin/env python
"""Personalized concept ranking via collaborative filtering.

The paper (Section IV-C): "In cases where the application supports a
user login, we believe that personalization and collaborative filtering
techniques can greatly improve this prediction for individuals by
analyzing the history of actions taken."

This example simulates logged-in users with topic interests, factorizes
their interaction matrix, and shows how the same story is annotated
differently for a sports-lover vs a politics-lover.

Run:  python examples/personalized_ranking.py
"""

import numpy as np

from repro import Environment, EnvironmentConfig, WorldConfig
from repro.clicks import UserClickModel
from repro.personalization import (
    PersonalizedClickSimulator,
    PersonalizedScorer,
    factorize,
    generate_users,
)

WORLD = WorldConfig(
    seed=51,
    vocabulary_size=1800,
    topic_count=24,
    words_per_topic=50,
    concept_count=220,
    topic_page_count=150,
)


def main() -> None:
    print("building environment ...")
    env = Environment.build(EnvironmentConfig(world=WORLD))

    rng = np.random.default_rng(0)
    users = generate_users(rng, len(env.world.topics), 40)
    print(f"simulating reading history for {len(users)} logged-in users ...")
    simulator = PersonalizedClickSimulator(
        env.world,
        env.pipeline,
        users,
        UserClickModel(seed=9),
        personalization_weight=0.75,
        views_per_session=25,
    )
    stories = env.stories(60, seed=77)
    matrix = simulator.simulate(stories, sessions=6000, seed=2)
    print(
        f"  interaction matrix: {matrix.user_count} users x "
        f"{matrix.concept_count} concepts, density {matrix.density * 100:.1f}%"
    )

    print("factorizing (weighted ALS, rank 8) ...")
    model = factorize(matrix, rank=8)
    scorer = PersonalizedScorer(
        model,
        {c.phrase: c.concept_id for c in env.world.concepts},
        strength=1.0,
    )

    story = env.stories(1, seed=31337)[0]
    annotated = env.pipeline.process(story.text)
    known = {c.phrase.lower() for c in env.world.concepts}
    candidates = [d.phrase for d in annotated.rankable() if d.phrase in known]
    base_scores = [0.0] * len(candidates)  # neutral global model

    # two users whose pet topics both occur among the story's candidates
    candidate_topics = sorted(
        {
            topic
            for phrase in candidates
            for topic in env.world.concept_by_phrase(phrase).home_topics
        }
    )
    topic_a, topic_b = candidate_topics[0], candidate_topics[-1]
    user_a = max(users, key=lambda u: u.topic_affinity[topic_a])
    user_b = max(users, key=lambda u: u.topic_affinity[topic_b])
    print(
        f"\nstory candidates span topics {candidate_topics}; "
        f"user A loves topic {topic_a}, user B loves topic {topic_b}"
    )

    for label, user in (("A", user_a), ("B", user_b)):
        adjusted = scorer.adjust_scores(user.user_id, candidates, base_scores)
        order = np.argsort(-adjusted)
        print(f"\ntop-3 for user {label}:")
        for index in order[:3]:
            phrase = candidates[int(index)]
            concept = env.world.concept_by_phrase(phrase)
            print(
                f"  {phrase:<34s} cf-score={adjusted[int(index)]:+.3f} "
                f"home_topics={concept.home_topics}"
            )


if __name__ == "__main__":
    main()
