#!/usr/bin/env python
"""Contextual advertising on key concepts (paper Section I-A).

"It has been shown that reducing a document to a small set of key
concepts can improve performance of such systems by decreasing their
overall latency without a loss in relevance."  This example builds a
small ad inventory keyed by concepts, then matches ads against (a) the
full document term set and (b) only the top-N ranked key concepts —
showing the top-N matching is both much cheaper and equally relevant.

Run:  python examples/contextual_advertising.py
"""

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from repro import Environment, EnvironmentConfig, WorldConfig
from repro.features.relevance import stemmed_terms

WORLD = WorldConfig(
    seed=23,
    vocabulary_size=1800,
    topic_count=24,
    words_per_topic=50,
    concept_count=240,
    topic_page_count=150,
)


@dataclass(frozen=True)
class Ad:
    ad_id: int
    concept_phrase: str
    keywords: frozenset  # stemmed targeting keywords
    topic_id: int


def build_ad_inventory(env, per_concept_keywords: int = 12) -> List[Ad]:
    """One ad per sufficiently popular concept, targeted by its
    snippet-mined relevant keywords."""
    phrases = [
        c.phrase
        for c in env.world.concepts
        if not c.is_junk and env.query_log.freq_exact(c.terms) >= 10
    ]
    model = env.relevance_model(phrases)
    ads = []
    for ad_id, phrase in enumerate(phrases):
        concept = env.world.concept_by_phrase(phrase)
        keywords = frozenset(
            term for term, __ in model.relevant_terms(phrase)[:per_concept_keywords]
        )
        topic = concept.home_topics[0] if concept.home_topics else -1
        ads.append(Ad(ad_id, phrase, keywords, topic))
    return ads


def match_ads(ads: List[Ad], query_terms: frozenset, limit: int = 3) -> List[Ad]:
    """Rank ads by keyword overlap with the query term set."""
    scored = [
        (len(ad.keywords & query_terms), ad) for ad in ads
    ]
    scored = [(s, ad) for s, ad in scored if s > 0]
    scored.sort(key=lambda pair: (-pair[0], pair[1].ad_id))
    return [ad for __, ad in scored[:limit]]


def ad_is_on_topic(env, story, ad: Ad) -> bool:
    return ad.topic_id in story.topics


def main() -> None:
    print("building environment ...")
    env = Environment.build(EnvironmentConfig(world=WORLD))

    print("building ad inventory keyed by concepts ...")
    ads = build_ad_inventory(env)
    print(f"  {len(ads)} ads")

    stories = env.stories(40, seed=555)
    inventory = [c.phrase for c in env.world.concepts]
    model = env.relevance_model(inventory)
    from repro.features import RelevanceScorer

    scorer = RelevanceScorer(model)

    full_hits, full_time = [], 0.0
    key_hits, key_time = [], 0.0
    for story in stories:
        # (a) match against the FULL document term set
        started = time.perf_counter()
        full_terms = frozenset(stemmed_terms(story.text))
        matched = match_ads(ads, full_terms)
        full_time += time.perf_counter() - started
        full_hits.append(
            np.mean([ad_is_on_topic(env, story, ad) for ad in matched])
            if matched
            else 0.0
        )

        # (b) match against only the top key concepts' keyword sets.
        # Ad selection cares about *relevance* (Section IV-B), so the
        # key concepts here are the top-3 by contextual relevance score.
        started = time.perf_counter()
        annotated = env.pipeline.process(story.text)
        context = scorer.context_stems(story.text)
        candidates = sorted(
            (d for d in annotated.rankable()),
            key=lambda d: -scorer.score(d.phrase, context),
        )
        top = candidates[:3]
        key_terms = frozenset(
            term
            for detection in top
            for term, __ in model.relevant_terms(detection.phrase)[:12]
        ) | frozenset(
            term for detection in top for term in stemmed_terms(detection.phrase)
        )
        matched = match_ads(ads, key_terms)
        key_time += time.perf_counter() - started
        key_hits.append(
            np.mean([ad_is_on_topic(env, story, ad) for ad in matched])
            if matched
            else 0.0
        )

    print("\nad matching over 40 stories (top-3 ads each):")
    print(
        f"  full-document matching : on-topic rate={np.mean(full_hits) * 100:5.1f}%"
    )
    print(
        f"  key-concept matching   : on-topic rate={np.mean(key_hits) * 100:5.1f}%"
    )
    print(
        "\nkey-concept matching keeps most of the ad relevance while the "
        f"matcher input shrinks from ~{len(stemmed_terms(stories[0].text))} "
        "document terms to ~40 keyword terms — the latency/relevance "
        "trade the paper's Section I-A describes."
    )


if __name__ == "__main__":
    main()
