#!/usr/bin/env python
"""User-centric entity detection on news: train on clicks, annotate top-3.

Reproduces the paper's core workflow end to end:

1. the baseline production system annotates sampled news stories;
2. user clicks are tracked, filtered, and windowed into a dataset;
3. a ranking SVM learns from the CTR preference pairs;
4. new stories are annotated with only the learned top-3 concepts,
   and we verify against the latent ground truth that the selection
   quality improved over the concept-vector baseline.

Run:  python examples/news_annotation.py
"""

import numpy as np

from repro import Environment, EnvironmentConfig, WorldConfig
from repro.eval import RankingExperiment, collect_dataset, train_combined_ranker

WORLD = WorldConfig(
    seed=11,
    vocabulary_size=1800,
    topic_count=24,
    words_per_topic=50,
    concept_count=240,
    topic_page_count=150,
)


def selection_quality(env, story, phrases):
    """Mean latent (interestingness x relevance) of the selected concepts."""
    values = []
    for phrase in phrases:
        concept = env.world.concept_by_phrase(phrase)
        values.append(
            concept.interestingness * max(story.relevance_of(concept.concept_id), 0.05)
        )
    return float(np.mean(values)) if values else 0.0


def main() -> None:
    print("building environment ...")
    env = Environment.build(EnvironmentConfig(world=WORLD))

    print("tracking clicks on 250 sampled stories with the baseline system ...")
    dataset = collect_dataset(env, 250, story_seed=1)
    print(
        f"  kept {dataset.story_count} stories -> {dataset.window_count} windows, "
        f"{dataset.entity_count} tracked entities, {dataset.total_clicks} clicks"
    )

    print("training the ranking SVM on CTR preference pairs ...")
    experiment = RankingExperiment(env, dataset)
    learned = experiment.run_model(
        "combined", relevance_resource="snippets", tie_break_with_relevance=True
    )
    baseline = experiment.run_concept_vector()
    print(f"  baseline  (cross-validated): {baseline.row()}")
    print(f"  learned   (cross-validated): {learned.row()}")

    ranker = train_combined_ranker(env, experiment)

    print("\nannotating 30 fresh stories with top-3 concepts:")
    fresh = env.stories(30, seed=999)
    base_quality, learned_quality = [], []
    for story in fresh:
        annotated = env.pipeline.process(story.text)
        known = {c.phrase.lower() for c in env.world.concepts}
        base_top = [
            d.phrase
            for d in annotated.by_concept_vector_score()
            if d.phrase in known
        ][:3]
        learned_top = [d.phrase for d in ranker.rank_document(annotated)[:3]]
        base_quality.append(selection_quality(env, story, base_top))
        learned_quality.append(selection_quality(env, story, learned_top))

    print(
        f"  mean latent quality of top-3: baseline={np.mean(base_quality):.3f}  "
        f"learned={np.mean(learned_quality):.3f}  "
        f"(+{(np.mean(learned_quality) / np.mean(base_quality) - 1) * 100:.0f}%)"
    )

    story = fresh[0]
    annotated = env.pipeline.process(story.text)
    print("\nexample story, learned top-3 annotations:")
    for detection in ranker.top_detections(annotated, 3):
        concept = env.world.concept_by_phrase(detection.phrase)
        print(
            f"  {detection.phrase:<34s} model score={detection.score:7.3f} "
            f"[I={concept.interestingness:.2f} "
            f"R={story.relevance_of(concept.concept_id):.2f}]"
        )


if __name__ == "__main__":
    main()
