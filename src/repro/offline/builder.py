"""One-command offline build: corpus + query log -> v2 datapacks.

Paper Section VI describes the production split: every ranking artifact
— the positional index behind phrase result counts, the MI-mined unit
lexicon, the Table I interestingness vectors, the per-concept
relevantTerms — is computed offline and shipped to the runtime as
quantized stores.  :class:`OfflineBuilder` runs that whole offline half
as an explicit stage DAG::

    corpus -> index -> units -> interestingness -> relevance -> quantize -> pack

with per-stage timings, in one of two modes:

* ``fast=True`` (default): single tokenization pass shared by all
  stages (:class:`TokenizedCorpus`), CSR frozen index, vectorized
  unit/keyword mining, optional process-pool fan-out for the
  per-concept relevance mining;
* ``fast=False``: the seed-style serial dict/Counter pipeline, kept as
  the equivalence baseline.

Both modes produce byte-identical packs (asserted by tests and by
``benchmarks/bench_offline.py``), and so does every worker count —
chunk results merge in input order and global TIDs are assigned in
phrase order, so the pack bytes never depend on scheduling.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.corpus.dictionaries import EditorialDictionary
from repro.corpus.wikipedia import WikipediaStore
from repro.obs import Tracer, get_tracer
from repro.obs.quality import DriftBaseline
from repro.features.interestingness import InterestingnessExtractor
from repro.features.relevance import (
    RESOURCE_SNIPPETS,
    RelevanceModel,
    RelevantKeywordMiner,
    build_stemmed_df,
)
from repro.detection.concepts import detectable_concept_phrases
from repro.detection.kernel import DetectionKernel
from repro.offline.corpus import TokenizedCorpus, normalize_documents
from repro.text.tokenizer import words_lower
from repro.offline.mining import VectorizedKeywordMiner
from repro.querylog.log import QueryLog
from repro.querylog.units import UnitMiner, VectorizedUnitMiner
from repro.runtime.datapack import (
    save_detection_kernel,
    save_interestingness_store,
    save_relevance_store,
)
from repro.runtime.store import QuantizedInterestingnessStore
from repro.runtime.tid import PackedRelevanceStore
from repro.search.engine import SearchEngine
from repro.search.prisma import PrismaTool
from repro.search.snippets import SnippetService
from repro.search.suggestions import SuggestionService

INTERESTINGNESS_PACK = "interestingness.rpak"
RELEVANCE_PACK = "relevance.rpak"
DETECTION_PACK = "detection.rpak"
MANIFEST = "manifest.json"


@dataclass(frozen=True)
class BuildConfig:
    """Knobs for one offline build."""

    fast: bool = True
    workers: Optional[int] = None  # None -> os.cpu_count()
    resource: str = RESOURCE_SNIPPETS
    keyword_count: int = 100
    k1: float = 1.2
    b: float = 0.75

    def resolved_workers(self) -> int:
        if self.workers is None:
            return os.cpu_count() or 1
        return max(1, int(self.workers))


@dataclass
class StageStats:
    """Wall-clock and throughput for one pipeline stage."""

    name: str
    seconds: float
    items: int
    unit: str

    @property
    def items_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.items / self.seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "items": self.items,
            "unit": self.unit,
            "items_per_second": round(self.items_per_second, 3),
        }


@dataclass
class BuildReport:
    """Everything a caller (CLI, bench, tests) needs about one build."""

    mode: str
    workers: int
    document_count: int
    concept_count: int
    stages: List[StageStats] = field(default_factory=list)
    pack_paths: Dict[str, str] = field(default_factory=dict)
    pack_sha256: Dict[str, str] = field(default_factory=dict)
    # Per-feature serving-value moments for the drift detector; optional
    # so manifests from older builds (and their readers) stay valid.
    feature_baselines: Optional[Dict[str, object]] = None

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def stage(self, name: str) -> StageStats:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"unknown stage: {name!r}")

    @property
    def docs_per_second(self) -> float:
        seconds = self.stage("corpus").seconds + self.stage("index").seconds
        if seconds <= 0.0:
            return 0.0
        return self.document_count / seconds

    @property
    def concepts_per_second(self) -> float:
        seconds = (
            self.stage("interestingness").seconds + self.stage("relevance").seconds
        )
        if seconds <= 0.0:
            return 0.0
        return self.concept_count / seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "document_count": self.document_count,
            "concept_count": self.concept_count,
            "total_seconds": round(self.total_seconds, 6),
            "docs_per_second": round(self.docs_per_second, 3),
            "concepts_per_second": round(self.concepts_per_second, 3),
            "stages": [stage.as_dict() for stage in self.stages],
            "pack_paths": dict(self.pack_paths),
            "pack_sha256": dict(self.pack_sha256),
            **(
                {"feature_baselines": self.feature_baselines}
                if self.feature_baselines is not None
                else {}
            ),
        }


class _StageClock:
    """Collects :class:`StageStats` around pipeline sections.

    Each stage runs inside a tracer span, so the timing that lands in
    the :class:`BuildReport` is the very same measurement that feeds the
    ``span_seconds{stage=...}`` histograms and the sampled build trace —
    the ad-hoc timing dict and the observability surface cannot drift
    apart.  The span also publishes the stage to the profiler's
    thread→stage map, and a ``heap_stage`` bracket attributes the
    stage's net allocations when a :class:`~repro.obs.profile.
    HeapProfiler` is active (both no-ops otherwise).
    """

    def __init__(self, tracer: Tracer):
        self.stages: List[StageStats] = []
        self._tracer = tracer

    def run(self, name: str, items: int, unit: str, thunk):
        from repro.obs.profile import heap_stage

        with self._tracer.span(name) as span, heap_stage(name):
            result = thunk()
        self.stages.append(StageStats(name, span.duration, items, unit))
        return result


class OfflineBuilder:
    """Runs the offline stage DAG and writes the serving datapacks."""

    def __init__(
        self,
        config: Optional[BuildConfig] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config or BuildConfig()
        self._tracer = tracer if tracer is not None else get_tracer()

    def build(
        self,
        documents: Iterable,
        query_log: QueryLog,
        phrases: Sequence[str],
        out_dir,
        dictionary: Optional[EditorialDictionary] = None,
        wikipedia: Optional[WikipediaStore] = None,
    ) -> BuildReport:
        """Build packs for *phrases* into *out_dir* and report timings.

        *documents* may be (doc_id, text) pairs or objects with
        ``doc_id``/``text``; *dictionary*/*wikipedia* default to empty
        stand-ins (their features then read as absent).
        """
        config = self.config
        docs = normalize_documents(documents)
        phrases = list(phrases)
        dictionary = dictionary if dictionary is not None else EditorialDictionary([])
        wikipedia = wikipedia if wikipedia is not None else WikipediaStore({})
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        with self._tracer.trace("build-pack") as build_trace:
            report = self._run_stages(
                config, docs, query_log, phrases, out, dictionary, wikipedia
            )
            if build_trace.sampled:
                build_trace.meta.update(
                    {
                        "mode": report.mode,
                        "workers": report.workers,
                        "documents": report.document_count,
                        "concepts": report.concept_count,
                    }
                )
        return report

    def _run_stages(
        self, config, docs, query_log, phrases, out, dictionary, wikipedia
    ) -> BuildReport:
        clock = _StageClock(self._tracer)

        if config.fast:
            corpus, stemmed_df = clock.run(
                "corpus",
                len(docs),
                "docs",
                lambda: self._fast_corpus(docs),
            )
            engine = clock.run(
                "index",
                len(docs),
                "docs",
                lambda: corpus.engine(k1=config.k1, b=config.b),
            )
            lexicon = clock.run(
                "units",
                len(query_log),
                "queries",
                lambda: VectorizedUnitMiner().mine(query_log),
            )
        else:
            corpus = None
            stemmed_df = clock.run(
                "corpus",
                len(docs),
                "docs",
                lambda: build_stemmed_df(text for __, text in docs),
            )
            engine = clock.run(
                "index",
                len(docs),
                "docs",
                lambda: self._seed_engine(docs, config.k1, config.b),
            )
            lexicon = clock.run(
                "units",
                len(query_log),
                "queries",
                lambda: UnitMiner().mine(query_log),
            )

        extractor = InterestingnessExtractor(
            query_log, lexicon, engine, dictionary, wikipedia
        )
        vectors = clock.run(
            "interestingness",
            len(phrases),
            "concepts",
            lambda: extractor.extract_many(phrases),
        )

        suggestions = SuggestionService(query_log)
        if config.fast:
            miner: RelevantKeywordMiner = VectorizedKeywordMiner(
                corpus, engine, suggestions, stemmed_df, config.keyword_count
            )
        else:
            miner = RelevantKeywordMiner(
                SnippetService(engine),
                PrismaTool(engine),
                suggestions,
                stemmed_df,
                config.keyword_count,
            )
        workers = config.resolved_workers() if config.fast else 1
        model = clock.run(
            "relevance",
            len(phrases),
            "concepts",
            lambda: RelevanceModel.mine_all(
                miner, phrases, config.resource, workers=workers
            ),
        )

        def _quantize():
            store = QuantizedInterestingnessStore.from_vectors(vectors)
            # The drift baseline measures the *dequantized* values the
            # serving feature matrix will actually contain, so it is
            # taken from the store rather than the raw vectors.
            return store, PackedRelevanceStore.build(model), DriftBaseline.from_store(store)

        interestingness_store, relevance_store, baseline = clock.run(
            "quantize", len(phrases), "concepts", _quantize
        )

        def _kernel() -> DetectionKernel:
            # Compile the detection kernel from the same inventories the
            # runtime detectors hold.  Inventories are sorted so the
            # automaton layout — and therefore the pack bytes — never
            # depend on set/hash iteration order; matching semantics are
            # inventory-order-independent either way.
            detectable = sorted(
                detectable_concept_phrases(
                    (tuple(phrase.split()) for phrase in phrases),
                    lexicon,
                    query_log,
                )
            )
            named = sorted(tuple(key.split()) for key in dictionary.phrases())
            stem_of = None
            if corpus is not None:
                vocab_terms: Sequence[str] = corpus.terms
                stem_terms = corpus.stem_terms
                stem_of = {
                    term: stem_terms[sid]
                    for term, sid in zip(
                        corpus.terms, corpus.stem_ids.tolist()
                    )
                }
            else:
                # seed mode has no shared tokenized corpus; re-derive
                # the identical first-seen vocabulary (and let the stem
                # table fall back to `stem` per term) so seed and fast
                # builds keep producing byte-identical packs
                seen: Dict[str, None] = {}
                for __, text in docs:
                    for token in words_lower(text):
                        if token not in seen:
                            seen[token] = None
                vocab_terms = list(seen)
            return DetectionKernel.build(
                concept_phrases=detectable,
                named_phrases=named,
                lexicon=lexicon,
                vocab_terms=vocab_terms,
                stem_of=stem_of,
            )

        kernel = clock.run("kernel", len(phrases), "concepts", _kernel)

        pack_paths = {
            "interestingness": str(out / INTERESTINGNESS_PACK),
            "relevance": str(out / RELEVANCE_PACK),
            "detection": str(out / DETECTION_PACK),
        }
        clock.run(
            "pack",
            len(phrases),
            "concepts",
            lambda: (
                save_interestingness_store(
                    interestingness_store, pack_paths["interestingness"]
                ),
                save_relevance_store(relevance_store, pack_paths["relevance"]),
                save_detection_kernel(kernel, pack_paths["detection"]),
            ),
        )

        report = BuildReport(
            mode="fast" if config.fast else "seed",
            workers=workers,
            document_count=len(docs),
            concept_count=len(phrases),
            stages=clock.stages,
            pack_paths=pack_paths,
            pack_sha256={
                name: _sha256(path) for name, path in pack_paths.items()
            },
            feature_baselines=baseline.as_dict(),
        )
        (out / MANIFEST).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        return report

    @staticmethod
    def _fast_corpus(docs):
        corpus = TokenizedCorpus(docs)
        return corpus, corpus.stemmed_df()

    @staticmethod
    def _seed_engine(docs, k1: float, b: float) -> SearchEngine:
        engine = SearchEngine(k1=k1, b=b)
        for doc_id, text in docs:
            engine.add_document(doc_id, text)
        return engine


def _sha256(path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()
