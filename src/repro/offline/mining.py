"""Vectorized relevant-keyword mining over a :class:`TokenizedCorpus`.

Drop-in subclasses of the Section IV-B miners that work on interned
token ids instead of strings:

* :class:`VectorizedPrismaTool` accumulates the pseudo-relevance
  feedback scores with one masked gather + ``np.add.at`` per result
  document (seed: a python loop over every token of every top-50 doc);
* :class:`VectorizedKeywordMiner` mines snippet keywords without ever
  materialising snippet strings — the frozen index hands it each
  matching document's first phrase occurrence (exactly the anchor
  ``make_snippet`` would find, since every phrase-search hit contains
  the exact phrase), the window arithmetic is replayed on the id
  arrays, and tf*idf + top-k runs as bincount / lexsort.  This is sound
  because ``tokenize_lower`` is idempotent on its own output: joining
  window tokens with spaces and re-tokenizing (what the seed does)
  yields the very same token sequence.

Both reproduce the seed byte-for-byte: same float arithmetic in the
same accumulation order, same ``(-score, term)`` tie-break.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.features.relevance import (
    RelevantKeywordMiner,
    RelevantTerms,
    stemmed_terms,
)
from repro.offline.corpus import TokenizedCorpus
from repro.search.engine import SearchEngine
from repro.search.prisma import PrismaTool
from repro.search.snippets import SnippetService
from repro.search.suggestions import SuggestionService
from repro.text.tokenizer import tokenize_lower
from repro.text.vectorize import DocumentFrequencyTable


class VectorizedPrismaTool(PrismaTool):
    """Pseudo-relevance feedback with array accumulation."""

    def __init__(
        self,
        engine: SearchEngine,
        corpus: TokenizedCorpus,
        feedback_documents: int = 50,
        feedback_terms: int = 20,
    ):
        super().__init__(engine, feedback_documents, feedback_terms)
        self._corpus = corpus

    def feedback(self, query: str) -> List[Tuple[str, float]]:
        corpus = self._corpus
        query_terms = set(tokenize_lower(query))
        results = self._engine.search(query, limit=self.feedback_documents)
        if not results:
            return []
        blocked = corpus.stop_mask.copy()
        for term in query_terms:
            vid = corpus.vocabulary.get(term)
            if vid is not None:
                blocked[vid] = True
        scores = np.zeros(len(corpus.terms))
        for rank, result in enumerate(results):
            rank_weight = 1.0 / (1.0 + rank)
            ids = corpus.id_arrays[corpus.doc_row(result.doc_id)]
            length = max(1, len(ids))
            keep = ~blocked[ids]
            kept_ids = ids[keep]
            if not kept_ids.size:
                continue
            positions = np.flatnonzero(keep)
            # Same op order as the seed loop, elementwise:
            # 1.0 + (1.0 - position / length) * 0.5, then * rank_weight.
            position_bonus = 1.0 + (1.0 - positions / length) * 0.5
            np.add.at(scores, kept_ids, rank_weight * position_bonus)
        touched = np.flatnonzero(scores)
        if not touched.size:
            return []
        order = np.lexsort((corpus.term_alpha_rank[touched], -scores[touched]))
        top = touched[order[: self.feedback_terms]]
        terms = corpus.terms
        return [(terms[vid], float(scores[vid])) for vid in top.tolist()]


class VectorizedKeywordMiner(RelevantKeywordMiner):
    """Snippet mining on id arrays; Prisma/suggestions via the bases.

    ``mine_from_prisma`` and ``mine_from_suggestions`` are inherited:
    the former already routes through the (vectorized) Prisma tool and
    the memoized stemmed-idf table; the latter is query-log bound.
    """

    def __init__(
        self,
        corpus: TokenizedCorpus,
        engine: SearchEngine,
        suggestions: SuggestionService,
        stemmed_df: DocumentFrequencyTable,
        keyword_count: int = 100,
        snippet_window: int = 48,
    ):
        if engine.frozen is None:
            raise ValueError("VectorizedKeywordMiner needs a frozen engine")
        super().__init__(
            SnippetService(engine, window=snippet_window),
            VectorizedPrismaTool(engine, corpus),
            suggestions,
            stemmed_df,
            keyword_count,
        )
        self._corpus = corpus
        self._engine = engine
        self._window = snippet_window
        self._raw_idf = corpus.raw_idf_vector(stemmed_df)

    def mine_from_snippets(self, phrase: str) -> RelevantTerms:
        corpus = self._corpus
        terms = tokenize_lower(phrase)
        results = self._engine.phrase_search(phrase, limit=100)
        if not results:
            return self._top_terms({})
        rows, __, firsts = self._engine.frozen.phrase_occurrences(terms)
        first_start = dict(zip(rows.tolist(), firsts.tolist()))
        window = self._window
        half = window // 2
        segments: List[np.ndarray] = []
        for result in results:
            row = corpus.doc_row(result.doc_id)
            ids = corpus.id_arrays[row]
            # make_snippet's window arithmetic around the first match
            anchor = first_start[row]
            start = max(0, anchor - half)
            end = min(len(ids), start + window)
            start = max(0, end - window)
            segments.append(ids[start:end])
        return self._scored_window_terms(phrase, np.concatenate(segments))

    def _scored_window_terms(self, phrase: str, ids: np.ndarray) -> RelevantTerms:
        """tf*idf over stem ids, excluding stopwords and concept stems."""
        corpus = self._corpus
        content = ids[~corpus.stop_mask[ids]]
        if not content.size:
            return self._top_terms({})
        stem_ids = corpus.stem_ids[content]
        concept_sids = self._concept_stem_ids(phrase)
        if concept_sids:
            stem_ids = stem_ids[
                ~np.isin(stem_ids, np.asarray(sorted(concept_sids), dtype=np.int64))
            ]
            if not stem_ids.size:
                return self._top_terms({})
        unique_sids, counts = np.unique(stem_ids, return_counts=True)
        scores = counts * self._raw_idf[unique_sids]
        order = np.lexsort((corpus.stem_alpha_rank[unique_sids], -scores))
        top = order[: self.keyword_count]
        stem_terms = corpus.stem_terms
        return tuple(
            (stem_terms[unique_sids[at]], float(scores[at])) for at in top.tolist()
        )

    def _concept_stem_ids(self, phrase: str) -> Set[int]:
        index = self._corpus.stem_index
        sids = set()
        for stemmed in stemmed_terms(phrase):
            sid = index.get(stemmed)
            if sid is not None:
                sids.add(sid)
        return sids
