"""Offline build pipeline: corpus -> index -> units -> features -> pack.

One-command, vectorized, optionally parallel construction of the v2
datapacks the serving path loads (paper Section VI: the offline half of
the production framework).
"""

from repro.offline.builder import BuildConfig, BuildReport, OfflineBuilder, StageStats
from repro.offline.corpus import TokenizedCorpus
from repro.offline.mining import VectorizedKeywordMiner, VectorizedPrismaTool

__all__ = [
    "BuildConfig",
    "BuildReport",
    "OfflineBuilder",
    "StageStats",
    "TokenizedCorpus",
    "VectorizedKeywordMiner",
    "VectorizedPrismaTool",
]
