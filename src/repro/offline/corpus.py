"""Single-pass tokenized corpus shared by every offline build stage.

The seed pipeline tokenizes the corpus once to build the search index
and a second time to build the stemmed document-frequency table, then
re-tokenizes snippet text per mined concept.  :class:`TokenizedCorpus`
runs the tokenizer exactly once per document, interns tokens into a
vocabulary of integer ids, and derives everything else from the id
arrays:

* the CSR :class:`~repro.search.frozen.FrozenInvertedIndex` (one stable
  sort of the flat token stream);
* the stemmed df table (per-document ``np.unique`` over stem ids);
* per-vocabulary stem ids, stopword mask and alphabetical rank tables
  that let the vectorized miners count/rank without touching strings.

All derived statistics are integer-exact matches for the seed's
string-at-a-time computations because the token streams are the very
same ``tokenize_lower`` output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.search.engine import SearchEngine
from repro.search.frozen import FrozenInvertedIndex
from repro.text.stemmer import stem
from repro.text.stopwords import is_stopword
from repro.text.tokenizer import words_lower
from repro.text.vectorize import DocumentFrequencyTable

DocumentInput = Union[Tuple[int, str], "object"]


def normalize_documents(documents: Iterable) -> List[Tuple[int, str]]:
    """Accept (doc_id, text) pairs or objects with doc_id/text attrs."""
    normalized: List[Tuple[int, str]] = []
    for document in documents:
        if isinstance(document, tuple):
            doc_id, text = document
        else:
            doc_id, text = document.doc_id, document.text
        normalized.append((int(doc_id), text))
    return normalized


class TokenizedCorpus:
    """Interned token streams plus lazily derived lookup tables."""

    def __init__(self, documents: Iterable):
        self.doc_ids: List[int] = []
        self.token_lists: List[List[str]] = []
        self.id_arrays: List[np.ndarray] = []
        self.vocabulary: Dict[str, int] = {}
        self.terms: List[str] = []
        vocabulary = self.vocabulary
        terms = self.terms
        for doc_id, text in normalize_documents(documents):
            tokens = words_lower(text)
            for token in tokens:
                if token not in vocabulary:
                    vocabulary[token] = len(terms)
                    terms.append(token)
            ids = np.fromiter(
                map(vocabulary.__getitem__, tokens),
                dtype=np.int32,
                count=len(tokens),
            )
            self.doc_ids.append(doc_id)
            self.token_lists.append(tokens)
            self.id_arrays.append(ids)
        self._doc_rows: Dict[int, int] = {
            doc_id: row for row, doc_id in enumerate(self.doc_ids)
        }
        self._stop_mask: Optional[np.ndarray] = None
        self._stem_ids: Optional[np.ndarray] = None
        self._stem_terms: Optional[List[str]] = None
        self._stem_index: Optional[Dict[str, int]] = None
        self._term_alpha_rank: Optional[np.ndarray] = None
        self._stem_alpha_rank: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.doc_ids)

    def doc_row(self, doc_id: int) -> int:
        return self._doc_rows[doc_id]

    # -- vocabulary-level tables (lazy) ----------------------------------

    @property
    def stop_mask(self) -> np.ndarray:
        """bool[V]: is the vocabulary term a stopword."""
        if self._stop_mask is None:
            self._stop_mask = np.fromiter(
                (is_stopword(term) for term in self.terms),
                dtype=bool,
                count=len(self.terms),
            )
        return self._stop_mask

    def _build_stems(self) -> None:
        stem_index: Dict[str, int] = {}
        stem_terms: List[str] = []
        stem_ids = np.empty(len(self.terms), dtype=np.int64)
        for vid, term in enumerate(self.terms):
            stemmed = stem(term)
            sid = stem_index.get(stemmed)
            if sid is None:
                sid = len(stem_terms)
                stem_index[stemmed] = sid
                stem_terms.append(stemmed)
            stem_ids[vid] = sid
        self._stem_ids = stem_ids
        self._stem_terms = stem_terms
        self._stem_index = stem_index

    @property
    def stem_ids(self) -> np.ndarray:
        """int64[V]: stem id of each vocabulary term."""
        if self._stem_ids is None:
            self._build_stems()
        return self._stem_ids

    @property
    def stem_terms(self) -> List[str]:
        """Stem id -> stem string."""
        if self._stem_terms is None:
            self._build_stems()
        return self._stem_terms

    @property
    def stem_index(self) -> Dict[str, int]:
        """Stem string -> stem id."""
        if self._stem_index is None:
            self._build_stems()
        return self._stem_index

    @staticmethod
    def _alpha_rank(values: Sequence[str]) -> np.ndarray:
        """rank[i] = position of values[i] in ascending lexicographic order.

        Used as the secondary ``np.lexsort`` key so vectorized top-k
        selection reproduces the seed's ``(-score, term)`` tie-break.
        """
        order = sorted(range(len(values)), key=values.__getitem__)
        rank = np.empty(len(values), dtype=np.int64)
        rank[order] = np.arange(len(values), dtype=np.int64)
        return rank

    @property
    def term_alpha_rank(self) -> np.ndarray:
        if self._term_alpha_rank is None:
            self._term_alpha_rank = self._alpha_rank(self.terms)
        return self._term_alpha_rank

    @property
    def stem_alpha_rank(self) -> np.ndarray:
        if self._stem_alpha_rank is None:
            self._stem_alpha_rank = self._alpha_rank(self.stem_terms)
        return self._stem_alpha_rank

    # -- derived artifacts ----------------------------------------------

    def frozen_index(self) -> FrozenInvertedIndex:
        """CSR index straight from the interned streams (no dict stage)."""
        return FrozenInvertedIndex.from_token_streams(
            self.doc_ids, self.id_arrays, self.terms
        )

    def engine(self, k1: float = 1.2, b: float = 0.75) -> SearchEngine:
        """A frozen search engine over this corpus."""
        tokens = dict(zip(self.doc_ids, self.token_lists))
        return SearchEngine.from_frozen(self.frozen_index(), tokens, k1=k1, b=b)

    def stemmed_df(self) -> DocumentFrequencyTable:
        """Stemmed document-frequency table, one unique-pass per doc.

        Matches ``build_stemmed_df``: stopwords are dropped *before*
        stemming, and each document contributes its distinct stems once.
        """
        stop = self.stop_mask
        stem_ids = self.stem_ids
        counts = np.zeros(len(self.stem_terms), dtype=np.int64)
        for ids in self.id_arrays:
            content = ids[~stop[ids]]
            if content.size:
                counts[np.unique(stem_ids[content])] += 1
        stem_terms = self.stem_terms
        doc_freq = {
            stem_terms[sid]: int(count)
            for sid, count in enumerate(counts.tolist())
            if count
        }
        return DocumentFrequencyTable.from_counts(doc_freq, len(self.doc_ids))

    def raw_idf_vector(self, table: DocumentFrequencyTable) -> np.ndarray:
        """float64[S]: ``table.raw_idf`` evaluated once per stem."""
        return np.fromiter(
            (table.raw_idf(term) for term in self.stem_terms),
            dtype=np.float64,
            count=len(self.stem_terms),
        )
