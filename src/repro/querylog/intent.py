"""Query-intent classification (Broder's web-search taxonomy).

The paper builds its query-log features from raw frequencies and notes:
"we do not perform any categorization to understand their intentions
such as navigational, transactional or informational (see [11]),
although there might be potential benefits in doing so."  This module
supplies that categorization as an optional extension:

* a rule-based classifier over intent marker terms (the standard
  approach at the paper's time: Broder 2002, Jansen et al.);
* per-concept intent profiles — the share of a concept's containing
  query volume that is navigational / transactional / informational;
* intent-split frequency features that can be appended to the Table I
  space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.querylog.log import Phrase, QueryLog

INTENT_NAVIGATIONAL = "navigational"
INTENT_TRANSACTIONAL = "transactional"
INTENT_INFORMATIONAL = "informational"
INTENTS = (INTENT_NAVIGATIONAL, INTENT_TRANSACTIONAL, INTENT_INFORMATIONAL)

# marker vocabularies; real classifiers of the era used exactly such lists
NAVIGATIONAL_MARKERS = frozenset(
    {
        "www", "com", "site", "website", "homepage", "login", "official",
        "page", "portal",
    }
)
TRANSACTIONAL_MARKERS = frozenset(
    {
        "buy", "download", "price", "cheap", "order", "free", "shop",
        "purchase", "deal", "coupon", "sale", "rent",
    }
)
INFORMATIONAL_MARKERS = frozenset(
    {
        "what", "how", "why", "who", "when", "history", "facts",
        "meaning", "definition", "wiki", "about", "guide",
    }
)


def classify_query(terms: Sequence[str]) -> str:
    """Classify one query by its marker terms.

    Precedence: transactional > navigational > informational-marked;
    unmarked queries default to informational, following Broder's
    observation that the informational class dominates.
    """
    term_set = {term.lower() for term in terms}
    if term_set & TRANSACTIONAL_MARKERS:
        return INTENT_TRANSACTIONAL
    if term_set & NAVIGATIONAL_MARKERS:
        return INTENT_NAVIGATIONAL
    return INTENT_INFORMATIONAL


@dataclass(frozen=True)
class IntentProfile:
    """A concept's containing-query volume split by intent."""

    phrase: str
    volume: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.volume.values())

    def fraction(self, intent: str) -> float:
        """Share of containing-query volume with *intent*."""
        if intent not in self.volume:
            raise KeyError(f"unknown intent: {intent!r}")
        total = self.total
        return self.volume[intent] / total if total else 0.0

    def dominant(self) -> str:
        """The intent with the most volume (informational on ties/empty)."""
        if self.total == 0:
            return INTENT_INFORMATIONAL
        return max(INTENTS, key=lambda intent: self.volume[intent])


class IntentClassifier:
    """Builds intent profiles and intent-split features from a log."""

    def __init__(self, query_log: QueryLog):
        self._log = query_log

    def profile(self, terms: Phrase) -> IntentProfile:
        """The intent profile of queries containing *terms*."""
        volume = {intent: 0 for intent in INTENTS}
        for query, frequency in self._log.queries_containing(tuple(terms)):
            volume[classify_query(query)] += frequency
        return IntentProfile(phrase=" ".join(terms), volume=volume)

    def intent_features(self, terms: Phrase) -> Tuple[float, float, float]:
        """(navigational, transactional, informational) volume fractions.

        Appendable to the Table I numeric vector for the intent-aware
        model variant.
        """
        profile = self.profile(terms)
        return (
            profile.fraction(INTENT_NAVIGATIONAL),
            profile.fraction(INTENT_TRANSACTIONAL),
            profile.fraction(INTENT_INFORMATIONAL),
        )
