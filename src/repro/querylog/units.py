"""Unit mining from query logs (paper Section II-B; Parikh & Kapur).

Units are multi-term entities in the query log that refer to a single
concept.  They are "constructed from query logs in an iterative
statistical approach using the frequencies of the distinct queries":

1. iteration one — every single term appearing in queries is a unit;
2. later iterations — units that frequently co-occur adjacently in
   queries are combined into larger candidate units, validated by
   mutual information I(x, y) = log( p(x, y) / (p(x) p(y)) ).

We take p(x) to be the probability that a random query submission
contains x (contiguously, for multi-term x), with add-one smoothing so
unseen parts never divide by zero.  Candidates must clear both a raw
co-occurrence count and an MI threshold.  Final unit scores are
normalized into [0, 1] as the paper requires for the concept vector.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.querylog.log import Phrase, QueryLog


@dataclass(frozen=True)
class Unit:
    """A mined unit with its raw MI and normalized score."""

    terms: Phrase
    mutual_information: float
    score: float  # normalized into [0, 1]

    @property
    def phrase(self) -> str:
        return " ".join(self.terms)


class UnitLexicon:
    """The mined unit inventory, queryable by phrase."""

    def __init__(self, units: Sequence[Unit]):
        self._by_terms: Dict[Phrase, Unit] = {u.terms: u for u in units}
        self.max_length = max((len(u.terms) for u in units), default=0)

    def __len__(self) -> int:
        return len(self._by_terms)

    def __contains__(self, terms: Phrase) -> bool:
        return tuple(terms) in self._by_terms

    def get(self, terms: Phrase) -> Optional[Unit]:
        return self._by_terms.get(tuple(terms))

    def score(self, terms: Phrase) -> float:
        """Normalized unit score for *terms* (0.0 when not a unit)."""
        unit = self._by_terms.get(tuple(terms))
        return unit.score if unit else 0.0

    def units(self) -> List[Unit]:
        return list(self._by_terms.values())

    def multi_term_units(self) -> List[Unit]:
        return [u for u in self._by_terms.values() if len(u.terms) > 1]

    def segment(self, words: Sequence[str]) -> List[Phrase]:
        """Greedy longest-match segmentation of *words* into units.

        Words not covered by any unit become singleton segments; this is
        how queries are re-tokenized between mining iterations, and how
        the concept detector walks documents.
        """
        segments: List[Phrase] = []
        index = 0
        count = len(words)
        while index < count:
            matched = None
            for size in range(min(self.max_length, count - index), 1, -1):
                candidate = tuple(words[index : index + size])
                if candidate in self._by_terms:
                    matched = candidate
                    break
            if matched is None:
                matched = (words[index],)
            segments.append(matched)
            index += len(matched)
        return segments


class UnitMiner:
    """Iterative MI-based unit miner over a :class:`QueryLog`."""

    def __init__(
        self,
        min_pair_count: int = 5,
        mi_threshold: float = 1.0,
        max_unit_length: int = 3,
        min_term_count: int = 2,
    ):
        self.min_pair_count = min_pair_count
        self.mi_threshold = mi_threshold
        self.max_unit_length = max_unit_length
        self.min_term_count = min_term_count

    # -- probability helpers ------------------------------------------------

    @staticmethod
    def _containment_probability(log: QueryLog, terms: Phrase) -> float:
        contained = log.freq_phrase_contained(terms)
        return (contained + 1.0) / (log.total_submissions + 1.0)

    def mutual_information(self, log: QueryLog, left: Phrase, right: Phrase) -> float:
        """I(left, right) for the adjacent concatenation left+right."""
        joint = self._containment_probability(log, tuple(left) + tuple(right))
        p_left = self._containment_probability(log, tuple(left))
        p_right = self._containment_probability(log, tuple(right))
        return math.log(joint / (p_left * p_right))

    # -- mining ----------------------------------------------------------

    def mine(self, log: QueryLog) -> UnitLexicon:
        """Run the iterative mining and return the unit lexicon.

        The counting steps are factored into overridable hooks
        (:meth:`_term_counts`, :meth:`_validated_pairs`) so the
        vectorized offline miner can swap in array-based counting while
        this driver — and therefore the acceptance semantics — stays
        shared.
        """
        term_counts = self._term_counts(log)

        singles: Dict[Phrase, float] = {
            (term,): 0.0
            for term, count in term_counts.items()
            if count >= self.min_term_count
        }

        accepted: Dict[Phrase, float] = dict(singles)
        current = UnitLexicon(
            [Unit(terms, mi, 0.0) for terms, mi in accepted.items()]
        )

        for __ in range(self.max_unit_length - 1):
            new_units = self._validated_pairs(log, current, accepted)
            if not new_units:
                break
            accepted.update(new_units)
            current = UnitLexicon(
                [Unit(terms, mi, 0.0) for terms, mi in accepted.items()]
            )

        return self._finalize(log, accepted, term_counts)

    def _term_counts(self, log: QueryLog) -> Dict[str, int]:
        """Submission-weighted count of queries containing each term."""
        term_counts: Counter = Counter()
        for query, freq in log.items():
            for term in set(query):
                term_counts[term] += freq
        return term_counts

    def _validated_pairs(
        self, log: QueryLog, lexicon: UnitLexicon, accepted: Dict[Phrase, float]
    ) -> Dict[Phrase, float]:
        """One growth iteration: count adjacent pairs, validate by MI."""
        candidates = self._adjacent_pair_counts(log, lexicon)
        new_units: Dict[Phrase, float] = {}
        for (left, right), count in candidates.items():
            combined = tuple(left) + tuple(right)
            if len(combined) > self.max_unit_length:
                continue
            if combined in accepted or count < self.min_pair_count:
                continue
            mi = self.mutual_information(log, left, right)
            if mi >= self.mi_threshold:
                new_units[combined] = mi
        return new_units

    def _adjacent_pair_counts(
        self, log: QueryLog, lexicon: UnitLexicon
    ) -> Counter:
        """Count adjacent (unit, unit) pairs across query submissions."""
        pair_counts: Counter = Counter()
        for query, freq in log.items():
            segments = lexicon.segment(list(query))
            for left, right in zip(segments, segments[1:]):
                pair_counts[(left, right)] += freq
        return pair_counts

    def _finalize(
        self,
        log: QueryLog,
        accepted: Dict[Phrase, float],
        term_counts: Counter,
    ) -> UnitLexicon:
        """Assign normalized scores.

        Multi-term units blend *normalized* PMI (MI divided by the
        joint self-information, so association strength is in [0, 1]
        and independent of raw popularity) with normalized log query
        volume: association makes a phrase a unit, but its weight in
        the concept vector also reflects how often users actually ask
        for it (production unit dictionaries come from popularity-
        ranked query logs).  Single-term units are scored by
        log-frequency alone and damped: a bare frequent word is a much
        weaker concept signal than a validated unit.
        """
        max_log_count = max(
            (math.log(1 + term_counts[t[0]]) for t in accepted if len(t) == 1),
            default=1.0,
        )
        max_log_contained = max(
            (
                math.log(1 + log.freq_phrase_contained(terms))
                for terms in accepted
                if len(terms) > 1
            ),
            default=1.0,
        )
        units: List[Unit] = []
        for terms, mi in accepted.items():
            if len(terms) > 1:
                joint_information = -math.log(
                    self._containment_probability(log, terms)
                )
                association = (
                    mi / joint_information if joint_information > 0 else 0.0
                )
                association = min(1.0, max(0.0, association))
                volume = (
                    math.log(1 + log.freq_phrase_contained(terms))
                    / max_log_contained
                ) ** 2  # squared: spread the popularity signal out
                score = 0.3 * association + 0.7 * min(1.0, volume)
            else:
                raw = math.log(1 + term_counts[terms[0]]) / max_log_count
                score = 0.5 * min(1.0, raw)
            units.append(Unit(terms=terms, mutual_information=mi, score=score))
        return UnitLexicon(units)


class VectorizedUnitMiner(UnitMiner):
    """Array-based co-occurrence counting for the offline builder.

    Replaces the per-occurrence Counter increments with interned-id
    arrays reduced by numpy (``np.add.at`` for term counts, a sorted
    int64 key join + ``np.add.reduceat`` for adjacent-pair counts) and
    applies the count/length thresholds as vectorized masks.  Mutual
    information itself stays scalar ``math.log`` over the (few)
    surviving candidates, so threshold semantics and stored MI values
    are bit-identical to :class:`UnitMiner`; mined lexicons carry the
    same units, MI and scores (asserted in tests and in
    ``benchmarks/bench_offline.py``).

    Counting is integer-exact throughout: int64 accumulators, never
    float sums.
    """

    def _term_counts(self, log: QueryLog) -> Dict[str, int]:
        vocabulary: Dict[str, int] = {}
        flat_ids: List[int] = []
        flat_freqs: List[int] = []
        for query, freq in log.items():
            for term in set(query):
                vid = vocabulary.setdefault(term, len(vocabulary))
                flat_ids.append(vid)
                flat_freqs.append(freq)
        if not vocabulary:
            return {}
        counts = np.zeros(len(vocabulary), dtype=np.int64)
        np.add.at(
            counts,
            np.asarray(flat_ids, dtype=np.int64),
            np.asarray(flat_freqs, dtype=np.int64),
        )
        # dict order = first-seen order, matching the seed Counter.
        return {term: int(counts[vid]) for term, vid in vocabulary.items()}

    def _validated_pairs(
        self, log: QueryLog, lexicon: UnitLexicon, accepted: Dict[Phrase, float]
    ) -> Dict[Phrase, float]:
        unit_ids: Dict[Phrase, int] = {}
        units: List[Phrase] = []
        lefts: List[int] = []
        rights: List[int] = []
        freqs: List[int] = []
        for query, freq in log.items():
            segments = lexicon.segment(list(query))
            if len(segments) < 2:
                continue
            ids = []
            for segment in segments:
                uid = unit_ids.setdefault(segment, len(unit_ids))
                if uid == len(units):
                    units.append(segment)
                ids.append(uid)
            lefts.extend(ids[:-1])
            rights.extend(ids[1:])
            freqs.extend([freq] * (len(ids) - 1))
        if not lefts:
            return {}
        universe = len(units)
        keys = (
            np.asarray(lefts, dtype=np.int64) * universe
            + np.asarray(rights, dtype=np.int64)
        )
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_freqs = np.asarray(freqs, dtype=np.int64)[order]
        boundary = np.empty(len(sorted_keys), dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_keys[1:] != sorted_keys[:-1]
        starts = np.flatnonzero(boundary)
        pair_counts = np.add.reduceat(sorted_freqs, starts)
        pair_keys = sorted_keys[starts]
        left_ids = pair_keys // universe
        right_ids = pair_keys % universe
        lengths = np.asarray([len(unit) for unit in units], dtype=np.int64)
        survivors = (pair_counts >= self.min_pair_count) & (
            lengths[left_ids] + lengths[right_ids] <= self.max_unit_length
        )
        new_units: Dict[Phrase, float] = {}
        for left_id, right_id in zip(
            left_ids[survivors].tolist(), right_ids[survivors].tolist()
        ):
            left, right = units[left_id], units[right_id]
            combined = left + right
            if combined in accepted:
                continue
            mi = self.mutual_information(log, left, right)
            if mi >= self.mi_threshold:
                new_units[combined] = mi
        return new_units


def lexicon_signature(lexicon: UnitLexicon) -> Dict[Phrase, Tuple[float, float]]:
    """terms -> (mi, score): a comparable snapshot of a mined lexicon."""
    return {
        unit.terms: (unit.mutual_information, unit.score)
        for unit in lexicon.units()
    }
