"""Temporal query logs and trend detection (paper Section IV-C future work).

"The interestingness of a concept can change in time depending on the
world's state as news breaks, trends change, etc.  To identify this
case, new features can be included to the space that can identify
spikes or changes in news articles and/or query logs."

This module provides the substrate and the features:

* ``WorldEvent`` — a breaking-news event that multiplies a concept's
  effective interestingness (and hence its query volume and CTR) for
  one week;
* ``generate_temporal_query_log`` — a sequence of weekly query logs
  whose per-concept volumes follow the events;
* ``TemporalQueryLog`` — weekly lookups plus the two trend features:
  ``spike_ratio`` (this week vs the trailing baseline) and
  ``momentum`` (week-over-week log change).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.corpus.concepts import Concept
from repro.corpus.topics import Topic
from repro.corpus.vocabulary import Vocabulary
from repro.querylog.generator import generate_query_log
from repro.querylog.log import Phrase, QueryLog


@dataclass(frozen=True)
class WorldEvent:
    """One breaking-news event: a concept spikes in week *week*."""

    week: int
    concept_id: int
    intensity: float  # multiplier on effective interestingness (> 1)


def generate_world_events(
    rng: np.random.Generator,
    concepts: Sequence[Concept],
    weeks: int,
    events_per_week: float = 3.0,
    min_intensity: float = 2.0,
    max_intensity: float = 6.0,
) -> List[WorldEvent]:
    """Draw a random schedule of concept spikes."""
    events: List[WorldEvent] = []
    eligible = [c for c in concepts if not c.is_junk]
    for week in range(weeks):
        count = int(rng.poisson(events_per_week))
        if count == 0 or not eligible:
            continue
        chosen = rng.choice(len(eligible), size=min(count, len(eligible)),
                            replace=False)
        for index in chosen:
            events.append(
                WorldEvent(
                    week=week,
                    concept_id=eligible[int(index)].concept_id,
                    intensity=float(rng.uniform(min_intensity, max_intensity)),
                )
            )
    return events


def event_boosts(
    events: Sequence[WorldEvent], week: int
) -> Dict[int, float]:
    """concept_id -> interestingness multiplier for *week*."""
    boosts: Dict[int, float] = {}
    for event in events:
        if event.week == week:
            boosts[event.concept_id] = max(
                boosts.get(event.concept_id, 1.0), event.intensity
            )
    return boosts


def boosted_concepts(
    concepts: Sequence[Concept], boosts: Dict[int, float]
) -> List[Concept]:
    """Copies of *concepts* with event-boosted effective interestingness.

    Used for both query-log generation and story generation in event
    weeks: breaking news is searched for more *and* written about more.
    """
    result: List[Concept] = []
    for concept in concepts:
        boost = boosts.get(concept.concept_id)
        if boost is None or boost == 1.0:
            result.append(concept)
            continue
        result.append(
            Concept(
                concept_id=concept.concept_id,
                phrase=concept.phrase,
                terms=concept.terms,
                interestingness=min(1.0, concept.interestingness * boost),
                specificity=concept.specificity,
                is_junk=concept.is_junk,
                taxonomy_type=concept.taxonomy_type,
                home_topics=concept.home_topics,
            )
        )
    return result


class TemporalQueryLog:
    """A sequence of weekly aggregated query logs with trend features."""

    def __init__(self, weekly_logs: Sequence[QueryLog]):
        if not weekly_logs:
            raise ValueError("need at least one weekly log")
        self._weeks: List[QueryLog] = list(weekly_logs)

    def __len__(self) -> int:
        return len(self._weeks)

    def week(self, index: int) -> QueryLog:
        return self._weeks[index]

    @property
    def latest(self) -> QueryLog:
        return self._weeks[-1]

    def weekly_frequencies(self, terms: Phrase) -> List[int]:
        """freq_phrase_contained per week, oldest first."""
        return [log.freq_phrase_contained(terms) for log in self._weeks]

    # -- trend features -------------------------------------------------------

    def spike_ratio(self, terms: Phrase, week: int = -1,
                    baseline_weeks: int = 4) -> float:
        """This week's volume over the trailing baseline mean (>= 1 smooth).

        A value near 1 means steady interest; >> 1 means a breaking
        spike.  Add-one smoothing keeps cold concepts at ~1.
        """
        if week < 0:
            week = len(self._weeks) + week
        current = self._weeks[week].freq_phrase_contained(terms)
        start = max(0, week - baseline_weeks)
        history = [
            log.freq_phrase_contained(terms) for log in self._weeks[start:week]
        ]
        baseline = (sum(history) / len(history)) if history else 0.0
        return (current + 1.0) / (baseline + 1.0)

    def momentum(self, terms: Phrase, week: int = -1) -> float:
        """Log week-over-week change: log((this+1)/(previous+1))."""
        if week < 0:
            week = len(self._weeks) + week
        current = self._weeks[week].freq_phrase_contained(terms)
        previous = (
            self._weeks[week - 1].freq_phrase_contained(terms) if week > 0 else 0
        )
        return math.log((current + 1.0) / (previous + 1.0))


def generate_temporal_query_log(
    rng: np.random.Generator,
    concepts: Sequence[Concept],
    topics: Sequence[Topic],
    vocabulary: Vocabulary,
    weeks: int,
    events: Sequence[WorldEvent] = (),
    **generator_kwargs,
) -> TemporalQueryLog:
    """Generate *weeks* weekly logs; event weeks spike the affected
    concepts' query volume via a boosted effective interestingness."""
    weekly: List[QueryLog] = []
    for week in range(weeks):
        effective = boosted_concepts(concepts, event_boosts(events, week))
        weekly.append(
            generate_query_log(rng, effective, topics, vocabulary,
                               **generator_kwargs)
        )
    return TemporalQueryLog(weekly)
