"""Synthetic query log generation.

Substitutes for "the most popular 20 million queries submitted to the
engine in the week of November 17-23, 2007" (Section V-A.1).  Queries
are generated from the concept universe so that the statistics the
feature space consumes are causally tied to the latents:

* exact-concept query volume grows with latent interestingness (people
  search for what interests them);
* refinement queries ("<concept> <home-topic word>") create phrase
  containment counts, suggestion-service data, and the term
  co-occurrence that unit mining recovers;
* junk phrases appear embedded in many long queries (which is exactly
  why the paper says low-quality concepts reach the candidate set:
  "their high unit scores");
* background noise queries keep the log from being pure signal.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.corpus.concepts import Concept
from repro.corpus.topics import Topic
from repro.corpus.vocabulary import Vocabulary
from repro.querylog.log import Phrase, QueryLog


def generate_query_log(
    rng: np.random.Generator,
    concepts: Sequence[Concept],
    topics: Sequence[Topic],
    vocabulary: Vocabulary,
    exact_volume: int = 400,
    refinement_queries_per_concept: int = 12,
    junk_query_multiplier: float = 3.0,
    noise_query_count: int = 3000,
) -> QueryLog:
    """Generate an aggregated query log over the concept universe.

    *exact_volume* scales the expected submission count of the hottest
    concepts' exact queries; everything else is proportional.
    """
    counts: Counter = Counter()

    for concept in concepts:
        if concept.is_junk:
            _add_junk_queries(
                rng, counts, concept, topics, junk_query_multiplier, exact_volume
            )
            continue
        base = _exact_frequency(rng, concept, exact_volume)
        if base > 0:
            counts[tuple(concept.terms)] += base
        _add_refinement_queries(
            rng,
            counts,
            concept,
            topics,
            vocabulary,
            base,
            refinement_queries_per_concept,
        )

    _add_noise_queries(rng, counts, vocabulary, noise_query_count)
    return QueryLog(counts)


def _exact_frequency(
    rng: np.random.Generator, concept: Concept, exact_volume: int
) -> int:
    """Exact-query volume: interestingness-driven with log-normal noise."""
    expected = exact_volume * (concept.interestingness ** 1.5)
    noisy = expected * float(rng.lognormal(0.0, 0.35))
    return int(round(noisy))


def _topic_word(
    rng: np.random.Generator, concept: Concept, topics: Sequence[Topic]
) -> str:
    if concept.home_topics:
        topic = topics[int(rng.choice(list(concept.home_topics)))]
    else:
        topic = topics[int(rng.integers(len(topics)))]
    return topic.sample_words(rng, 1)[0]


# intent-marker refinements; the mix depends on what the concept is
# (people get looked up, products get shopped for) — this is the signal
# the optional intent classifier (repro.querylog.intent) recovers
_INTENT_MARKERS = {
    "navigational": ["www", "site", "official", "homepage", "login"],
    "transactional": ["buy", "price", "download", "cheap", "order"],
    "informational": ["what", "how", "history", "facts", "about"],
}
_TYPE_INTENT_MIX = {
    # (navigational, transactional, informational) weights by type
    "person": (0.15, 0.05, 0.80),
    "place": (0.20, 0.15, 0.65),
    "organization": (0.50, 0.15, 0.35),
    "product": (0.10, 0.70, 0.20),
    "event": (0.10, 0.20, 0.70),
    "animal": (0.05, 0.05, 0.90),
    None: (0.10, 0.15, 0.75),
}


def _intent_marker(rng: np.random.Generator, concept: Concept) -> str:
    weights = _TYPE_INTENT_MIX[concept.taxonomy_type]
    roll = rng.random()
    if roll < weights[0]:
        pool = _INTENT_MARKERS["navigational"]
    elif roll < weights[0] + weights[1]:
        pool = _INTENT_MARKERS["transactional"]
    else:
        pool = _INTENT_MARKERS["informational"]
    return pool[int(rng.integers(len(pool)))]


def _refinement_word(
    rng: np.random.Generator,
    concept: Concept,
    topics: Sequence[Topic],
    vocabulary: Vocabulary,
    topical_probability: float = 0.35,
    intent_probability: float = 0.2,
) -> str:
    """A refinement term: topical, intent marker, or arbitrary.

    Real refinement queries mix on-topic modifiers with intent markers
    ("buy X", "X official site") and session noise; the noise share is
    why suggestion-mined relevance keywords are noticeably noisier than
    snippet-mined ones (paper Table IV).
    """
    roll = rng.random()
    if roll < topical_probability:
        return _topic_word(rng, concept, topics)
    if roll < topical_probability + intent_probability:
        return _intent_marker(rng, concept)
    return vocabulary.sample(rng, 1)[0]


def _add_refinement_queries(
    rng: np.random.Generator,
    counts: Counter,
    concept: Concept,
    topics: Sequence[Topic],
    vocabulary: Vocabulary,
    base: int,
    per_concept: int,
) -> None:
    """Queries like "<concept> <word>" / "<word> <concept>".

    Topical refinement words are what lets the suggestion service
    (Section IV-B) recover keywords; the non-topical half is the noise
    floor of real query sessions.
    """
    if base <= 0:
        return
    how_many = int(rng.integers(max(1, per_concept // 2), per_concept + 1))
    for __ in range(how_many):
        word = _refinement_word(rng, concept, topics, vocabulary)
        if rng.random() < 0.75:
            query: Phrase = tuple(concept.terms) + (word,)
        else:
            query = (word,) + tuple(concept.terms)
        frequency = max(1, int(base * float(rng.uniform(0.05, 0.4))))
        counts[query] += frequency


def _add_junk_queries(
    rng: np.random.Generator,
    counts: Counter,
    concept: Concept,
    topics: Sequence[Topic],
    multiplier: float,
    exact_volume: int,
) -> None:
    """Junk phrases ride inside many distinct, fairly frequent queries.

    "my favorite <anything>" style queries make the junk n-gram both
    frequent and tightly co-occurring, giving it the high unit score
    the paper warns about — while its exact interestingness stays low.
    """
    variant_count = int(10 * multiplier)
    for __ in range(variant_count):
        topic = topics[int(rng.integers(len(topics)))]
        word = topic.sample_words(rng, 1)[0]
        query = tuple(concept.terms) + (word,)
        frequency = max(1, int(exact_volume * float(rng.uniform(0.05, 0.3))))
        counts[query] += frequency
    # the bare junk phrase is also typed occasionally
    counts[tuple(concept.terms)] += max(1, int(exact_volume * 0.1))


def _add_noise_queries(
    rng: np.random.Generator,
    counts: Counter,
    vocabulary: Vocabulary,
    count: int,
) -> None:
    """Background single- and two-word queries, Zipf-weighted."""
    for __ in range(count):
        size = 1 if rng.random() < 0.6 else 2
        words = tuple(vocabulary.sample(rng, size))
        counts[words] += int(rng.integers(1, 20))


def query_log_for_world(world, seed: int = 101, **kwargs) -> QueryLog:
    """Convenience: generate the log for a :class:`SyntheticWorld`."""
    rng = np.random.default_rng((world.config.seed, seed))
    return generate_query_log(
        rng, world.concepts, world.topics, world.vocabulary, **kwargs
    )
