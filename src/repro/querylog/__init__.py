"""Query-log substrate: synthetic logs, containment indexes, unit mining."""

from repro.querylog.generator import generate_query_log, query_log_for_world
from repro.querylog.log import Phrase, QueryLog
from repro.querylog.intent import (
    INTENT_INFORMATIONAL,
    INTENT_NAVIGATIONAL,
    INTENT_TRANSACTIONAL,
    INTENTS,
    IntentClassifier,
    IntentProfile,
    classify_query,
)
from repro.querylog.temporal import (
    TemporalQueryLog,
    WorldEvent,
    event_boosts,
    generate_temporal_query_log,
    generate_world_events,
)
from repro.querylog.units import Unit, UnitLexicon, UnitMiner

__all__ = [
    "generate_query_log",
    "query_log_for_world",
    "Phrase",
    "QueryLog",
    "INTENT_INFORMATIONAL",
    "INTENT_NAVIGATIONAL",
    "INTENT_TRANSACTIONAL",
    "INTENTS",
    "IntentClassifier",
    "IntentProfile",
    "classify_query",
    "TemporalQueryLog",
    "WorldEvent",
    "event_boosts",
    "generate_temporal_query_log",
    "generate_world_events",
    "Unit",
    "UnitLexicon",
    "UnitMiner",
]
