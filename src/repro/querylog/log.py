"""Query log container with the lookups the feature space needs.

The paper mines three interestingness features directly from query logs
(Section IV-A): ``freq_exact`` (queries identical to the concept),
``freq_phrase_contained`` (queries containing the concept as a phrase),
and the unit score.  It also feeds the related-query suggestion service
(Section IV-B), which needs "queries containing the concept" together
with their frequencies.

``QueryLog`` therefore indexes every query by all of its contiguous
sub-phrases, so both lookups are O(1) dictionary probes at feature
time — the same precompute-offline discipline the paper's production
framework uses.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Tuple

Phrase = Tuple[str, ...]

_MAX_INDEXED_PHRASE = 4


def _subphrases(terms: Phrase, max_len: int = _MAX_INDEXED_PHRASE) -> Iterable[Phrase]:
    count = len(terms)
    for size in range(1, min(max_len, count) + 1):
        for start in range(count - size + 1):
            yield terms[start : start + size]


class QueryLog:
    """An aggregated query log: distinct query -> submission count."""

    def __init__(self, counts: Mapping[Phrase, int]):
        self._counts: Dict[Phrase, int] = {
            tuple(terms): int(freq) for terms, freq in counts.items() if freq > 0
        }
        self.total_submissions = sum(self._counts.values())
        self._contained_freq: Counter = Counter()
        self._contained_queries: Dict[Phrase, List[Phrase]] = {}
        for terms, freq in self._counts.items():
            for sub in set(_subphrases(terms)):
                self._contained_freq[sub] += freq
                self._contained_queries.setdefault(sub, []).append(terms)

    def __len__(self) -> int:
        """Number of distinct queries."""
        return len(self._counts)

    def __contains__(self, terms: Phrase) -> bool:
        return tuple(terms) in self._counts

    def items(self) -> Iterable[Tuple[Phrase, int]]:
        return self._counts.items()

    def frequency(self, terms: Phrase) -> int:
        """Submission count of the exact query *terms*."""
        return self._counts.get(tuple(terms), 0)

    # -- feature lookups ---------------------------------------------------

    def freq_exact(self, terms: Phrase) -> int:
        """Feature 1: number of queries exactly equal to the concept."""
        return self.frequency(terms)

    def freq_phrase_contained(self, terms: Phrase) -> int:
        """Feature 2: total frequency of queries containing the phrase.

        The phrase must appear contiguously and in order, exactly as the
        paper's "contain the concept as a phrase".
        """
        return self._contained_freq.get(tuple(terms), 0)

    def queries_containing(self, terms: Phrase) -> List[Tuple[Phrase, int]]:
        """All distinct queries containing the phrase, with frequencies."""
        queries = self._contained_queries.get(tuple(terms), ())
        return [(q, self._counts[q]) for q in queries]

    def top_queries(self, count: int) -> List[Tuple[Phrase, int]]:
        """Most frequent *count* distinct queries."""
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))[:count]

    @classmethod
    def from_strings(cls, queries: Mapping[str, int]) -> "QueryLog":
        """Build from a string query -> count mapping (whitespace split)."""
        return cls({tuple(q.split()): c for q, c in queries.items()})
