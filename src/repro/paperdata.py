"""The paper's reported numbers, as structured constants.

Single source of truth for every figure the paper reports, used by the
benchmarks (to print measured-vs-paper rows) and by documentation
generation.  Values are transcribed from Irmak, von Brzeski, Kraft,
"Contextual Ranking of Keywords Using Click Data", ICDE 2009.
"""

from __future__ import annotations

from typing import Dict, Tuple

# -- Table II: summation of top-100 relevant-keyword scores --------------------

TABLE2_SUMMATIONS: Dict[str, float] = {
    "methicillin resistant staphylococcus aureus": 9544.3,
    "motorola razr v3m silver": 9118.7,
    "egyptian foreign minister ahmed aboul gheit": 9024.9,
    "my favorite": 2142.9,
    "the other": 1718.0,
    "what is happening": 1503.0,
}

TABLE2_SPECIFIC = tuple(list(TABLE2_SUMMATIONS)[:3])
TABLE2_JUNK = tuple(list(TABLE2_SUMMATIONS)[3:])


# -- Table III: weighted error rate, interestingness features -----------------

TABLE3_WER: Dict[str, float] = {
    "random": 50.01,
    "concept vector score": 30.22,
    "all features": 23.69,
    "- query_logs": 24.50,
    "- taxonomy": 24.47,
    "- search_results": 23.80,
    "- other": 23.78,
    "- text_based": 23.73,
}


# -- Table IV: weighted error rate, relevance score only ----------------------

TABLE4_WER: Dict[str, float] = {
    "random": 50.01,
    "concept vector score": 30.22,
    "best interestingness model": 23.69,
    "relevance only (prisma)": 32.32,
    "relevance only (suggestions)": 31.23,
    "relevance only (snippets)": 24.86,
}


# -- Table V: weighted error rate, all features --------------------------------

TABLE5_WER: Dict[str, float] = {
    "random": 50.01,
    "concept vector score": 30.22,
    "best interestingness model": 23.69,
    "relevance only (snippets)": 24.86,
    "interestingness + relevance": 18.66,
}


# -- Table VI: editorial study (percentages) -----------------------------------
# (ranker, content) -> {criterion: (very, somewhat, not)}

TABLE6_JUDGMENTS: Dict[Tuple[str, str], Dict[str, Tuple[float, float, float]]] = {
    ("concept vector score", "news"): {
        "interestingness": (32.6, 40.9, 26.4),
        "relevance": (53.0, 29.2, 17.7),
    },
    ("concept vector score", "answers"): {
        "interestingness": (35.9, 35.4, 28.5),
        "relevance": (50.3, 29.1, 20.4),
    },
    ("ranking algorithm", "news"): {
        "interestingness": (45.4, 39.5, 15.1),
        "relevance": (66.3, 26.3, 7.4),
    },
    ("ranking algorithm", "answers"): {
        "interestingness": (41.6, 40.3, 18.1),
        "relevance": (61.3, 28.1, 10.6),
    },
}

# the paper's headline editorial statistic
TABLE6_NOT_SHARE_BEFORE = 23.3
TABLE6_NOT_SHARE_AFTER = 12.8
TABLE6_NOT_SHARE_DROP = 45.1


# -- Section V-C: production deployment ----------------------------------------

PRODUCTION_VIEWS_CHANGE = -52.5
PRODUCTION_CLICKS_CHANGE = -2.0
PRODUCTION_CTR_CHANGE = +100.1
PRODUCTION_BEFORE_WEEKS = 20
PRODUCTION_AFTER_WEEKS = 15


# -- Section VI: framework -------------------------------------------------------

FRAMEWORK = {
    "interestingness_mb_per_1m": 18.0,
    "relevance_mb_per_1m": 400.0,
    "stemmer_mb_per_s": 7.9,
    "ranker_mb_per_s": 2.4,
    "test_documents": 1445,
    "avg_document_kb": 2.5,
    "detections_per_document": 6.45,
    "tid_bits": 22,
    "score_bits": 10,
    "relevant_keywords_per_concept": 100,
}


# -- Section V-A.1: dataset -------------------------------------------------------

DATASET = {
    "stories": 870,
    "concepts_detected": 6420,
    "sampled_clicks": 16549,
    "windows": 947,
    "min_views": 30,
    "window_chars": 2500,
    "window_overlap": 500,
    "query_log_queries": 20_000_000,
}


# -- metric worked examples (Section V-A.2) ---------------------------------------

WORKED_EXAMPLE = {
    "ctrs": (0.15, 0.05, 0.02, 0.01),  # A, B, C, D
    "r1_error_rate": 1 / 6,
    "r2_error_rate": 1 / 6,
    "r1_weighted_error_rate": 0.0222,
    "r2_weighted_error_rate": 0.2222,
    "r1_ndcg": {1: 1.0, 2: 1.0, 3: 0.98},
    "r2_ndcg": {1: 0.23, 2: 0.75, 3: 0.76},
}
