"""Entity detection: patterns, named entities, concepts, and the
concept-vector baseline scorer (the production Contextual Shortcuts)."""

from repro.detection.base import (
    KIND_CONCEPT,
    KIND_NAMED,
    KIND_PATTERN,
    Detection,
)
from repro.detection.concepts import ConceptDetector, detectable_concept_phrases
from repro.detection.conceptvector import ConceptVectorScorer
from repro.detection.matcher import PhraseMatcher
from repro.detection.named import NamedEntityDetector
from repro.detection.patterns import PatternDetector
from repro.detection.pipeline import (
    AnnotatedDocument,
    ShortcutsPipeline,
    deduplicate,
    resolve_collisions,
)

__all__ = [
    "KIND_CONCEPT",
    "KIND_NAMED",
    "KIND_PATTERN",
    "Detection",
    "ConceptDetector",
    "detectable_concept_phrases",
    "ConceptVectorScorer",
    "PhraseMatcher",
    "NamedEntityDetector",
    "PatternDetector",
    "AnnotatedDocument",
    "ShortcutsPipeline",
    "deduplicate",
    "resolve_collisions",
]
