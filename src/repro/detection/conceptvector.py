"""Concept-vector generation: the production baseline ranker.

Faithful implementation of paper Section II-B:

1. a **term vector** with tf*idf scores against the term-document
   frequency dictionary; stop-words removed; weights normalized into
   [0, 1]; sub-threshold weights punished; low weights pruned;
2. a **unit vector** of all query-log units found in the document, with
   normalized unit scores, punished and pruned likewise;
3. a **merge**: term-only entries are added with punished term weight,
   unit-only entries with their unit weight, entries in both with the
   sum; then every *multi-term* concept additionally absorbs the term-
   and unit-vector scores of each individual term it contains, so "more
   specific concepts eventually bubble up in the overall rank" (max
   possible weight = 2 x number of terms).

The resulting phrase -> score mapping is the baseline ranking the
paper's learned model is evaluated against (the "Concept Vector Score"
rows of Tables III-V).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.querylog.units import UnitLexicon
from repro.text.stopwords import is_stopword
from repro.text.tokenized import DocumentLike, TokenizedDocument
from repro.text.vectorize import DocumentFrequencyTable, TermVector


class ConceptVectorScorer:
    """Builds concept vectors for documents (the baseline scorer)."""

    def __init__(
        self,
        doc_frequency: DocumentFrequencyTable,
        lexicon: UnitLexicon,
        punish_threshold: float = 0.25,
        prune_threshold: float = 0.02,
        punish_factor: float = 0.5,
        multi_term_bonus: bool = True,
    ):
        self._doc_frequency = doc_frequency
        self._lexicon = lexicon
        self.punish_threshold = punish_threshold
        self.prune_threshold = prune_threshold
        self.punish_factor = punish_factor
        self.multi_term_bonus = multi_term_bonus
        self._kernel = None

    @property
    def lexicon(self) -> UnitLexicon:
        """The unit lexicon the unit vector segments with."""
        return self._lexicon

    def attach_kernel(self, kernel) -> None:
        """Compute counts/segments through a compiled
        :class:`~repro.detection.kernel.DetectionKernel` (None restores
        the pure-Python passes).  Only the counting and segmentation
        change; the tf*idf, shaping, and merge arithmetic is the same
        code either way, so scores are float-identical.
        """
        self._kernel = kernel

    # -- the two component vectors -----------------------------------------

    def _shape_term_counts(self, counts: Dict[str, int]) -> TermVector:
        """Shared tf*idf + normalize/punish/prune over raw term counts."""
        return TermVector._adopt(self._doc_frequency.tf_idf(counts)).shaped(
            self.punish_threshold, self.punish_factor, self.prune_threshold
        )

    def _shape_unit_weights(self, weights: Dict[str, float]) -> TermVector:
        """Shared punish/prune over raw unit weights."""
        return TermVector._adopt(weights).shaped(
            self.punish_threshold,
            self.punish_factor,
            self.prune_threshold,
            normalize=False,
        )

    def term_vector(self, tokens: Sequence[str]) -> TermVector:
        """Normalized, punished, pruned tf*idf vector over single terms."""
        counts: Dict[str, int] = {}
        for token in tokens:
            if is_stopword(token):
                continue
            counts[token] = counts.get(token, 0) + 1
        return self._shape_term_counts(counts)

    def unit_vector(self, tokens: Sequence[str]) -> TermVector:
        """Punished, pruned vector of units found in the document.

        Unit scores arrive already normalized into [0, 1] *globally* by
        the miner ("unit scores are also normalized to be between 0 and
        1") — they are deliberately NOT re-normalized per document, so
        a document full of weak units keeps weak unit weights.
        """
        weights: Dict[str, float] = {}
        for segment in self._lexicon.segment(list(tokens)):
            score = self._lexicon.score(segment)
            if score <= 0.0:
                continue
            phrase = " ".join(segment)
            weights[phrase] = max(weights.get(phrase, 0.0), score)
        return self._shape_unit_weights(weights)

    # -- merge ---------------------------------------------------------------

    def concept_vector(self, text: DocumentLike) -> TermVector:
        """The merged concept vector for *text* (phrase -> score).

        Accepts a raw string or a shared :class:`TokenizedDocument`; the
        latter avoids re-tokenizing inside the single-pass pipeline.
        With a compiled kernel attached, counting runs over the cached
        interned id array and segmentation through the unit automaton.
        """
        document = TokenizedDocument.of(text)
        if self._kernel is not None:
            # the kernel fuses counting, tf*idf, and shaping into id-
            # space array passes; per-entry arithmetic is identical
            terms = TermVector._adopt(
                self._kernel.term_weights(
                    document,
                    self._doc_frequency,
                    self.punish_threshold,
                    self.punish_factor,
                    self.prune_threshold,
                )
            )
            units = self._shape_unit_weights(self._kernel.unit_weights(document))
        else:
            tokens = document.words
            terms = self.term_vector(tokens)
            units = self.unit_vector(tokens)

        merged: Dict[str, float] = {}
        terms_weights = terms.weights
        units_weights = units.weights
        punish_factor = self.punish_factor
        for phrase, weight in terms_weights.items():
            unit_weight = units_weights.get(phrase)
            if unit_weight is not None:
                merged[phrase] = weight + unit_weight
            else:
                # term did not appear as a popular query: punish
                merged[phrase] = weight * punish_factor
        for phrase, weight in units_weights.items():
            if phrase not in merged:
                merged[phrase] = weight

        if self.multi_term_bonus:
            terms_get = terms_weights.get
            units_get = units_weights.get
            # keys are single tokens or " "-joined token phrases, so the
            # substring probe is exactly the multi-term test; updating
            # values in place never resizes the dict, so no key snapshot
            for phrase in merged:
                if " " not in phrase:
                    continue
                bonus = sum(
                    terms_get(part, 0.0) + units_get(part, 0.0)
                    for part in phrase.split()
                )
                merged[phrase] += bonus
        return TermVector._adopt(merged)

    def top_concepts(self, text: str, count: int = 5) -> List[Tuple[str, float]]:
        """Highest-scoring concepts of *text* (the Section II-B example)."""
        return self.concept_vector(text).top(count)

    def score_phrase(self, vector: TermVector, phrase: str) -> float:
        """Concept-vector score of *phrase* (0 when absent)."""
        return vector.get(phrase.lower(), 0.0)
