"""Compiled detection kernels: flat Aho–Corasick automata + stem table.

The runtime detectors used to walk a Python token trie per document
position and re-stem every word through the Porter code path.  This
module compiles the whole per-document "analysis" half of the hot path
into flat tables built once (offline by the pack builder, or lazily the
first time a pipeline processes a document):

* :class:`TokenInterner` — the shared token vocabulary.  Every word of
  a document is interned to an ``int32`` id exactly once (the id stream
  is cached on the :class:`~repro.text.tokenized.TokenizedDocument`),
  and every downstream kernel consumes ids instead of strings.
* :class:`StemTable` — vocab id -> (stopword flag, stem string).  The
  runtime stemmer pass becomes two list indexes per token; the Porter
  fallback runs only for out-of-vocabulary words.
* :class:`FlatAutomaton` — an Aho–Corasick automaton over token ids
  with dense ``int32`` goto columns (fail transitions pre-resolved into
  the goto table), ``int32`` fail/output-length/output-link columns,
  and an optional ``float64`` score column per terminal state.  One
  O(tokens) scan replaces the trie's per-position walk, and the match
  set is reduced to the trie's leftmost-longest greedy selection, so
  the emitted spans are identical to the Python path.
* :class:`DetectionKernel` — the bundle the pipeline attaches: one
  interner + stem table shared by the concept automaton, the
  named-entity automaton, and the unit-segmentation automaton that
  accelerates the concept-vector scorer.

Equivalence is structural, not statistical: the automata are compiled
from the very phrase inventories the tries hold, the stem table from
the same ``stem``/``is_stopword`` functions, and every consumer keeps
its pure-Python path selectable (``benchmarks/bench_hotpath.py`` and
``tests/test_automaton.py`` cross-check byte-identical output).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from itertools import repeat
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.text.stemmer import stem
from repro.text.stopwords import is_stopword
from repro.text.tokenized import TokenizedDocument

Phrase = Tuple[str, ...]

# Interning-pass counter, mirroring `tokenize_call_count`: the kernel is
# judged by how many times a document's words are interned (the design
# goal is exactly once per document), so the count must be observable
# from outside.  Same lock-free itertools.count scheme as the tokenizer.
_intern_counter = itertools.count()
_INTERN_LOCK = threading.Lock()
_intern_overhead = 0
_intern_base = 0


def intern_call_count() -> int:
    """Number of interning passes (`TokenInterner.ids`) since last reset."""
    global _intern_overhead
    with _INTERN_LOCK:
        drawn = next(_intern_counter)
        calls = drawn - _intern_overhead - _intern_base
        _intern_overhead += 1
        return calls


def reset_intern_call_count() -> None:
    """Zero the interning counter (benchmark/test instrumentation)."""
    global _intern_overhead, _intern_base
    with _INTERN_LOCK:
        drawn = next(_intern_counter)
        _intern_base = drawn - _intern_overhead
        _intern_overhead += 1


class TokenInterner:
    """Token string -> dense ``int32`` id; OOV maps to the sentinel id.

    The sentinel is ``len(terms)`` (not -1) so interned ids are always
    valid indexes into the kernel's ``V+1``-sized lookup columns —
    no branch per token on the scan paths.
    """

    __slots__ = ("terms", "oov", "_index")

    def __init__(self, terms: Sequence[str]):
        self.terms: List[str] = list(terms)
        self._index: Dict[str, int] = {
            term: vid for vid, term in enumerate(self.terms)
        }
        if len(self._index) != len(self.terms):
            raise ValueError("interner vocabulary contains duplicate terms")
        self.oov = len(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __contains__(self, term: str) -> bool:
        return term in self._index

    def id_of(self, term: str) -> Optional[int]:
        """The id of *term*, or None when out of vocabulary."""
        return self._index.get(term)

    def ids(self, words: Sequence[str]) -> List[int]:
        """Interned id per word (one counted interning pass)."""
        next(_intern_counter)
        # map() drives dict.get entirely in C — no per-word bytecode
        return list(map(self._index.get, words, repeat(self.oov, len(words))))


class StemTable:
    """Vocab id -> stopword flag + precomputed stem string.

    ``flags[vid]`` is 0 for content terms, 1 for stopwords, 2 for the
    OOV sentinel slot; ``stems[vid]`` is ``stem(term)`` for content
    terms.  Built from the same ``stem``/``is_stopword`` the Python
    stemmer pass uses (or adopted pre-stemmed from a
    :class:`~repro.offline.corpus.TokenizedCorpus`), so the table-driven
    pass is string-for-string identical.
    """

    FLAG_CONTENT = 0
    FLAG_STOPWORD = 1
    FLAG_OOV = 2

    __slots__ = ("flags", "stems")

    def __init__(self, flags: Sequence[int], stems: Sequence[Optional[str]]):
        self.flags = bytearray(flags)
        self.stems: List[Optional[str]] = list(stems)
        if len(self.flags) != len(self.stems):
            raise ValueError("stem table columns disagree in length")

    @classmethod
    def build(
        cls, terms: Sequence[str], stem_of: Optional[Dict[str, str]] = None
    ) -> "StemTable":
        """Compile the table for *terms* (+ one trailing OOV slot).

        *stem_of* optionally supplies precomputed stems (the offline
        corpus already stemmed its vocabulary once); missing terms fall
        back to the module stemmer, which is what built those stems in
        the first place.
        """
        lookup = stem_of.get if stem_of is not None else (lambda term: None)
        flags = bytearray(len(terms) + 1)
        stems: List[Optional[str]] = [None] * (len(terms) + 1)
        for vid, term in enumerate(terms):
            if is_stopword(term):
                flags[vid] = cls.FLAG_STOPWORD
            else:
                known = lookup(term)
                stems[vid] = known if known is not None else stem(term)
        flags[len(terms)] = cls.FLAG_OOV
        return cls(flags, stems)

    def stemmed_terms(self, words: Sequence[str], ids: Sequence[int]) -> List[str]:
        """``[stem(w) for w in words if not is_stopword(w)]``, table-driven."""
        flags = self.flags
        stems = self.stems
        out: List[str] = []
        append = out.append
        for position, vid in enumerate(ids):
            flag = flags[vid]
            if flag == 0:
                append(stems[vid])
            elif flag == 2:
                word = words[position]
                if not is_stopword(word):
                    append(stem(word))
        return out


class FlatAutomaton:
    """Aho–Corasick over interned token ids, as flat ``int32`` columns.

    Columns (``S`` states, alphabet of ``A`` symbols, vocab of ``V``
    terms):

    * ``delta``    -- ``int32[S * A]``: the goto table with fail
      transitions pre-resolved (a true DFA row per state).  Symbol 0 is
      the not-in-alphabet sentinel and always returns to the root.
    * ``fail``     -- ``int32[S]``: classic BFS fail links.
    * ``out_len``  -- ``int32[S]``: phrase token-length at terminal
      states, 0 elsewhere.
    * ``emits``    -- ``int32[S]``: the nearest terminal state in the
      fail chain *including the state itself* (0 = none): the scan's
      single per-token output probe.
    * ``out_next`` -- ``int32[S]``: the nearest terminal *proper*
      suffix (the output-link chain beyond ``emits``).
    * ``sym``      -- ``int32[V + 1]``: interner id -> alphabet symbol
      (0 when the token occurs in no phrase; the OOV slot is 0).
    * ``out_score``-- optional ``float64[S]``: per-terminal score (the
      unit lexicon's normalized scores ride here so segmentation needs
      no lexicon at runtime).

    The columns are the serialized form (``np.ndarray`` views straight
    off an mmap'd data-pack); the constructor materializes plain Python
    lists for the scan loop, where list indexing is ~3x faster than
    numpy scalar indexing.
    """

    __slots__ = (
        "interner",
        "alphabet_size",
        "state_count",
        "phrase_count",
        "_delta",
        "_fail",
        "_out_len",
        "_emits",
        "_out_next",
        "_sym",
        "_out_score",
    )

    def __init__(
        self,
        interner: TokenInterner,
        delta,
        fail,
        out_len,
        emits,
        out_next,
        sym,
        phrase_count: int,
        out_score=None,
    ):
        self.interner = interner
        self._delta = [int(v) for v in delta]
        self._fail = [int(v) for v in fail]
        self._out_len = [int(v) for v in out_len]
        self._emits = [int(v) for v in emits]
        self._out_next = [int(v) for v in out_next]
        self._sym = [int(v) for v in sym]
        self._out_score = (
            None if out_score is None else [float(v) for v in out_score]
        )
        self.state_count = len(self._fail)
        self.phrase_count = int(phrase_count)
        if self.state_count:
            self.alphabet_size = len(self._delta) // self.state_count
        else:
            self.alphabet_size = 0
        if len(self._sym) != len(interner) + 1:
            raise ValueError("symbol column does not cover the vocabulary")

    # -- compilation -----------------------------------------------------

    @classmethod
    def compile(
        cls,
        phrases: Iterable[Phrase],
        interner: TokenInterner,
        scores: Optional[Dict[Phrase, float]] = None,
    ) -> "FlatAutomaton":
        """Compile a (deduplicated) phrase inventory against *interner*.

        Every phrase token must be in the interner's vocabulary — the
        kernel builder guarantees that by folding phrase tokens into the
        vocab before compiling.
        """
        inventory: List[Phrase] = []
        seen = set()
        for phrase in phrases:
            phrase = tuple(term.lower() for term in phrase)
            if phrase and phrase not in seen:
                seen.add(phrase)
                inventory.append(phrase)

        # alphabet: symbols 1..A-1 for tokens used by any phrase
        sym = [0] * (len(interner) + 1)
        alphabet_size = 1
        for phrase in inventory:
            for term in phrase:
                vid = interner.id_of(term)
                if vid is None:
                    raise ValueError(
                        f"phrase token {term!r} missing from the kernel vocabulary"
                    )
                if sym[vid] == 0:
                    sym[vid] = alphabet_size
                    alphabet_size += 1

        # trie over symbols
        goto: List[Dict[int, int]] = [{}]
        out_len = [0]
        for phrase in inventory:
            state = 0
            for term in phrase:
                symbol = sym[interner.id_of(term)]
                nxt = goto[state].get(symbol)
                if nxt is None:
                    nxt = len(goto)
                    goto[state][symbol] = nxt
                    goto.append({})
                    out_len.append(0)
                state = nxt
            out_len[state] = len(phrase)

        # BFS fail links + dense delta rows (fail pre-resolved)
        state_count = len(goto)
        fail = [0] * state_count
        delta = [0] * (state_count * alphabet_size)
        queue = deque()
        for symbol, nxt in goto[0].items():
            delta[symbol] = nxt
            queue.append(nxt)
        while queue:
            state = queue.popleft()
            base = state * alphabet_size
            fail_base = fail[state] * alphabet_size
            for symbol in range(1, alphabet_size):
                nxt = goto[state].get(symbol)
                if nxt is None:
                    delta[base + symbol] = delta[fail_base + symbol]
                else:
                    fail[nxt] = delta[fail_base + symbol]
                    delta[base + symbol] = nxt
                    queue.append(nxt)

        # output links: nearest terminal in the fail chain
        emits = [0] * state_count
        out_next = [0] * state_count
        order = deque(goto[0].values())
        while order:  # BFS again so fail[state] is already resolved
            state = order.popleft()
            emits[state] = state if out_len[state] else emits[fail[state]]
            out_next[state] = emits[fail[state]]
            for nxt in goto[state].values():
                order.append(nxt)

        out_score = None
        if scores is not None:
            out_score = [0.0] * state_count
            for phrase in inventory:
                state = 0
                for term in phrase:
                    state = delta[
                        state * alphabet_size + sym[interner.id_of(term)]
                    ]
                out_score[state] = float(scores.get(phrase, 0.0))

        return cls(
            interner,
            delta,
            fail,
            out_len,
            emits,
            out_next,
            sym,
            phrase_count=len(inventory),
            out_score=out_score,
        )

    # -- serialization ---------------------------------------------------

    def columns(self) -> Dict[str, np.ndarray]:
        """The flat ``int32``/``float64`` columns (data-pack payloads)."""
        columns = {
            "delta": np.asarray(self._delta, dtype=np.int32),
            "fail": np.asarray(self._fail, dtype=np.int32),
            "out_len": np.asarray(self._out_len, dtype=np.int32),
            "emits": np.asarray(self._emits, dtype=np.int32),
            "out_next": np.asarray(self._out_next, dtype=np.int32),
            "sym": np.asarray(self._sym, dtype=np.int32),
        }
        if self._out_score is not None:
            columns["out_score"] = np.asarray(self._out_score, dtype=np.float64)
        return columns

    # -- inventory reconstruction ----------------------------------------

    def phrase_states(self) -> List[Tuple[Phrase, int]]:
        """Reconstruct ``(phrase, terminal state)`` pairs from the columns.

        The dense delta rows mix real trie edges with pre-resolved fail
        shortcuts, but a BFS from the root tells them apart: a shortcut
        from a depth-``d`` state lands at depth ``<= d`` (it goes through
        a fail ancestor), so the only transitions reaching an *unvisited*
        state are the trie edges.  This lets a kernel loaded from flat
        pack columns recover the exact phrase inventories — no extra
        serialized payload — e.g. to compile the combined scan automaton.
        """
        terms = self.interner.terms
        token_of: Dict[int, str] = {}
        for vid, symbol in enumerate(self._sym):
            if symbol and vid < len(terms):
                token_of[symbol] = terms[vid]

        delta = self._delta
        out_len = self._out_len
        alphabet = self.alphabet_size
        visited = [False] * self.state_count
        visited[0] = True
        pairs: List[Tuple[Phrase, int]] = []
        queue = deque([(0, ())])
        while queue:
            state, path = queue.popleft()
            base = state * alphabet
            for symbol in range(1, alphabet):
                nxt = delta[base + symbol]
                if nxt and not visited[nxt]:
                    visited[nxt] = True
                    extended = path + (token_of[symbol],)
                    if out_len[nxt]:
                        pairs.append((extended, nxt))
                    queue.append((nxt, extended))
        return pairs

    def terminal_of(self, phrase: Phrase) -> int:
        """The state reached by walking *phrase* from the root."""
        state = 0
        alphabet = self.alphabet_size
        for term in phrase:
            vid = self.interner.id_of(term)
            if vid is None:
                return 0
            state = self._delta[state * alphabet + self._sym[vid]]
        return state

    # -- matching --------------------------------------------------------

    def _scored_starts(self, ids: Sequence[int]) -> Dict[int, tuple]:
        """start token index -> (longest end, that match's score)."""
        delta = self._delta
        sym = self._sym
        emits = self._emits
        out_len = self._out_len
        out_next = self._out_next
        scores = self._out_score
        alphabet = self.alphabet_size
        best: Dict[int, tuple] = {}
        state = 0
        for position, vid in enumerate(ids):
            state = delta[state * alphabet + sym[vid]]
            terminal = emits[state]
            while terminal:
                end = position + 1
                start = end - out_len[terminal]
                found = best.get(start)
                if found is None or found[0] < end:
                    best[start] = (
                        end,
                        scores[terminal] if scores is not None else 0.0,
                    )
                terminal = out_next[terminal]
        return best

    def find_token_spans(self, ids: Sequence[int]) -> List[Tuple[int, int]]:
        """Leftmost-longest non-overlapping token spans (trie semantics).

        Reduces the automaton's full match set with the trie walk's
        greedy rule — take the longest match at the scan position, then
        resume past it — so the spans are exactly what
        ``PhraseMatcher.find_document_trie`` emits.
        """
        return [(s, e) for s, e, __ in self.find_scored_spans(ids)]

    def find_scored_spans(
        self, ids: Sequence[int]
    ) -> List[Tuple[int, int, float]]:
        """`find_token_spans` plus each span's terminal score column."""
        best = self._scored_starts(ids)
        if not best:
            return []
        spans: List[Tuple[int, int, float]] = []
        cursor = 0
        for start in sorted(best):
            if start >= cursor:
                end, score = best[start]
                spans.append((start, end, score))
                cursor = end
        return spans

    def find_phrases(
        self, document: TokenizedDocument
    ) -> List[Tuple[Phrase, int, int]]:
        """(phrase, char_start, char_end) matches — the matcher protocol."""
        ids = document.token_ids(self.interner)
        spans = self.find_token_spans(ids)
        if not spans:
            return []
        words = document.words
        starts = document.word_starts
        ends = document.word_ends
        return [
            (tuple(words[s:e]), starts[s], ends[e - 1]) for s, e in spans
        ]


TAG_CONCEPTS = 1
TAG_NAMED = 2
TAG_UNITS = 4


class CombinedAutomaton:
    """The three detector inventories fused into one tagged scan.

    Per-detector scans each pay a full pass over the document's id
    stream; fusing them into a single automaton over the *union*
    inventory makes the per-token work one delta step and one output
    probe total.  Each terminal state carries a tag bitmask saying which
    detectors own that phrase, so one pass yields the three per-detector
    ``{start: (longest end, score)}`` maps — per tag these are exactly
    what the individual automatons' ``_scored_starts`` would compute
    (same match sets, same update rule), so downstream greedy reductions
    are unchanged.

    Built in :class:`DetectionKernel.__init__` from the per-detector
    automatons' reconstructed inventories (:meth:`FlatAutomaton.
    phrase_states`); it is derived state, never serialized, so data-pack
    bytes are untouched.
    """

    __slots__ = ("base", "tags", "_delta_pm", "_emits_pm", "_sym_array")

    def __init__(self, base: FlatAutomaton, tags: Sequence[int]):
        self.base = base
        self.tags = [int(v) for v in tags]
        # Scan-loop precomputation: delta entries pre-multiplied by the
        # alphabet size (a state is represented by its row base, saving
        # the per-token multiply) with the output probe re-indexed to
        # match, and the symbol column as an array so a document's
        # symbol stream is one vectorized gather.
        alphabet = base.alphabet_size
        self._delta_pm = [v * alphabet for v in base._delta]
        emits_pm = [0] * (base.state_count * alphabet)
        if alphabet:
            emits_pm[::alphabet] = base._emits
        self._emits_pm = emits_pm
        self._sym_array = np.asarray(base._sym, dtype=np.int32)

    @classmethod
    def compile(
        cls, interner: TokenInterner, tagged: Sequence[Tuple[FlatAutomaton, int]]
    ) -> "CombinedAutomaton":
        """Fuse *(automaton, tag)* pairs into one tagged automaton."""
        tag_of: Dict[Phrase, int] = {}
        score_of: Dict[Phrase, float] = {}
        union: List[Phrase] = []
        for automaton, tag in tagged:
            scores = automaton._out_score
            for phrase, terminal in automaton.phrase_states():
                if phrase in tag_of:
                    tag_of[phrase] |= tag
                else:
                    tag_of[phrase] = tag
                    union.append(phrase)
                if scores is not None:
                    score_of[phrase] = scores[terminal]
        base = FlatAutomaton.compile(union, interner, scores=score_of)
        tags = [0] * base.state_count
        for phrase in union:
            tags[base.terminal_of(phrase)] = tag_of[phrase]
        return cls(base, tags)

    def scan(self, ids: Sequence[int]) -> Tuple[dict, dict, dict]:
        """One pass over *ids* -> (concepts, named, units) start maps.

        Symbol 0 (not in any phrase) always transitions to the root and
        the root emits nothing, so only the tokens with a nonzero symbol
        need walking: the state resets to the root wherever the nonzero
        positions are not contiguous.  Per tag the resulting maps equal
        the per-detector automatons' ``_scored_starts``.
        """
        base = self.base
        delta = self._delta_pm
        emits = self._emits_pm
        out_len = base._out_len
        out_next = base._out_next
        out_score = base._out_score
        tags = self.tags
        if not isinstance(ids, np.ndarray):
            ids = np.asarray(ids, dtype=np.int32)
        symbols = self._sym_array[ids]
        positions = symbols.nonzero()[0]
        best_concepts: Dict[int, tuple] = {}
        best_named: Dict[int, tuple] = {}
        best_units: Dict[int, tuple] = {}
        state = 0  # pre-multiplied row base
        previous = -2
        for position, symbol in zip(
            positions.tolist(), symbols[positions].tolist()
        ):
            if position != previous + 1:
                state = 0
            previous = position
            state = delta[state + symbol]
            terminal = emits[state]
            while terminal:
                end = position + 1
                start = end - out_len[terminal]
                tag = tags[terminal]
                # concept/named matches score 0.0 (their automatons have
                # no score column); unit matches read the score column.
                if tag & TAG_CONCEPTS:
                    found = best_concepts.get(start)
                    if found is None or found[0] < end:
                        best_concepts[start] = (end, 0.0)
                if tag & TAG_NAMED:
                    found = best_named.get(start)
                    if found is None or found[0] < end:
                        best_named[start] = (end, 0.0)
                if tag & TAG_UNITS:
                    found = best_units.get(start)
                    if found is None or found[0] < end:
                        best_units[start] = (
                            end,
                            out_score[terminal]
                            if out_score is not None
                            else 0.0,
                        )
                terminal = out_next[terminal]
        return best_concepts, best_named, best_units


def greedy_spans(best: Dict[int, tuple]) -> List[Tuple[int, int, float]]:
    """Reduce a ``{start: (end, score)}`` map to leftmost-longest spans.

    The same cursor sweep as ``FlatAutomaton.find_scored_spans`` — take
    the longest match at the scan position, resume past it.
    """
    if not best:
        return []
    spans: List[Tuple[int, int, float]] = []
    cursor = 0
    for start in sorted(best):
        if start >= cursor:
            end, score = best[start]
            spans.append((start, end, score))
            cursor = end
    return spans


class TaggedPhraseView:
    """Matcher-protocol adapter over the kernel's shared combined scan.

    Exposes the one method :class:`~repro.detection.matcher.
    PhraseMatcher` calls on an attached automaton (``find_phrases``)
    plus the attributes it validates against, but resolves matches from
    the kernel's cached per-document combined scan, so the concept and
    named detectors together trigger a single pass.  Falls back to the
    wrapped per-detector automaton when the kernel has no combined
    automaton (fewer than two inventories).
    """

    __slots__ = ("_kernel", "_slot", "automaton")

    def __init__(self, kernel: "DetectionKernel", slot: int, automaton):
        self._kernel = kernel
        self._slot = slot
        self.automaton = automaton

    @property
    def phrase_count(self) -> int:
        return self.automaton.phrase_count

    @property
    def interner(self) -> TokenInterner:
        return self.automaton.interner

    def find_token_spans(self, ids: Sequence[int]) -> List[Tuple[int, int]]:
        return self.automaton.find_token_spans(ids)

    def find_phrases(
        self, document: TokenizedDocument
    ) -> List[Tuple[Phrase, int, int]]:
        kernel = self._kernel
        if kernel._combined is None:
            return self.automaton.find_phrases(document)
        best = kernel.scan(document)[self._slot]
        if not best:
            return []
        words = document.words
        starts = document.word_starts
        ends = document.word_ends
        out: List[Tuple[Phrase, int, int]] = []
        cursor = 0
        for start in sorted(best):
            if start >= cursor:
                end = best[start][0]
                out.append(
                    (tuple(words[start:end]), starts[start], ends[end - 1])
                )
                cursor = end
        return out


class DetectionKernel:
    """The compiled per-document analysis bundle the pipeline attaches.

    One interner + stem table, shared by up to three automata:

    * ``concepts`` -- the concept detector's phrase inventory;
    * ``named``    -- the editorial dictionary's phrase inventory;
    * ``units``    -- the unit lexicon's *multi-term* units, with the
      normalized unit scores in the score column; single-term unit
      scores live in ``unit_single_scores`` (``float64[V + 1]``,
      OOV slot 0.0 — unit tokens are folded into the vocab, so an OOV
      word can never be a unit).
    """

    def __init__(
        self,
        interner: TokenInterner,
        stem_table: StemTable,
        concepts: Optional[FlatAutomaton] = None,
        named: Optional[FlatAutomaton] = None,
        units: Optional[FlatAutomaton] = None,
        unit_single_scores: Optional[Sequence[float]] = None,
    ):
        self.interner = interner
        self.stem_table = stem_table
        self.concepts = concepts
        self.named = named
        self.units = units
        if unit_single_scores is None:
            unit_single_scores = [0.0] * (len(interner) + 1)
        self.unit_single_scores = [float(v) for v in unit_single_scores]
        if len(self.unit_single_scores) != len(interner) + 1:
            raise ValueError("unit score column does not cover the vocabulary")
        # vectorized companion of the scores column: one fancy-index +
        # flatnonzero finds a document's singleton-unit positions
        self._unit_single_array = np.asarray(
            self.unit_single_scores, dtype=np.float64
        )
        # vectorized companion of the stem-table flags: True at content
        # vids (False at stopwords and the OOV slot), for term counting
        self._content_mask = (
            np.frombuffer(bytes(stem_table.flags), dtype=np.uint8) == 0
        )
        self._tid_cache = None  # (table identity+size, vid->TID column)
        self._idf_cache = None  # (table identity+version, vid->idf column)
        # Fuse the automatons into one tagged scan when two or more are
        # present (with a single automaton there is nothing to share).
        present = [
            (automaton, tag)
            for automaton, tag in (
                (concepts, TAG_CONCEPTS),
                (named, TAG_NAMED),
                (units, TAG_UNITS),
            )
            if automaton is not None
        ]
        self._combined = (
            CombinedAutomaton.compile(interner, present)
            if len(present) >= 2
            else None
        )
        self.concepts_view = (
            TaggedPhraseView(self, 0, concepts) if concepts is not None else None
        )
        self.named_view = (
            TaggedPhraseView(self, 1, named) if named is not None else None
        )

    @classmethod
    def build(
        cls,
        concept_phrases: Optional[Iterable[Phrase]] = None,
        named_phrases: Optional[Iterable[Phrase]] = None,
        lexicon=None,
        vocab_terms: Iterable[str] = (),
        stem_of: Optional[Dict[str, str]] = None,
    ) -> "DetectionKernel":
        """Compile a kernel from the pipeline's live inventories.

        The vocabulary is *vocab_terms* in iteration order (typically a
        corpus vocabulary) extended — sorted, for deterministic pack
        bytes — with any phrase/unit tokens it is missing.
        """
        concept_inventory = (
            [tuple(t.lower() for t in p) for p in concept_phrases if p]
            if concept_phrases is not None
            else None
        )
        named_inventory = (
            [tuple(t.lower() for t in p) for p in named_phrases if p]
            if named_phrases is not None
            else None
        )
        units = lexicon.units() if lexicon is not None else []

        vocab: Dict[str, None] = dict.fromkeys(vocab_terms)
        extra = set()
        for inventory in (concept_inventory or (), named_inventory or ()):
            for phrase in inventory:
                for term in phrase:
                    if term not in vocab:
                        extra.add(term)
        for unit in units:
            for term in unit.terms:
                if term not in vocab:
                    extra.add(term)
        terms = list(vocab) + sorted(extra)

        interner = TokenInterner(terms)
        stem_table = StemTable.build(terms, stem_of=stem_of)
        concepts = (
            FlatAutomaton.compile(concept_inventory, interner)
            if concept_inventory is not None
            else None
        )
        named = (
            FlatAutomaton.compile(named_inventory, interner)
            if named_inventory is not None
            else None
        )

        units_automaton = None
        unit_single_scores = None
        if lexicon is not None:
            multi = {
                tuple(u.terms): float(u.score)
                for u in units
                if len(u.terms) > 1
            }
            # sorted: the lexicon's dict order depends on mining
            # internals (seed vs vectorized miner), but the automaton
            # layout — and the pack bytes — must not
            units_automaton = FlatAutomaton.compile(
                sorted(multi), interner, scores=multi
            )
            unit_single_scores = [0.0] * (len(interner) + 1)
            for unit in units:
                if len(unit.terms) == 1:
                    vid = interner.id_of(unit.terms[0])
                    unit_single_scores[vid] = float(unit.score)

        return cls(
            interner,
            stem_table,
            concepts=concepts,
            named=named,
            units=units_automaton,
            unit_single_scores=unit_single_scores,
        )

    # -- per-document kernels --------------------------------------------

    def scan(self, document: TokenizedDocument) -> Tuple[dict, dict, dict]:
        """The document's combined-scan result, computed at most once.

        Cached on the document, so the concept detector, the named
        detector, and the unit segmentation share one pass over the id
        stream.  Only valid when a combined automaton exists.
        """
        cached = document._kernel_scan
        if cached is not None and cached[0] is self:
            return cached[1]
        result = self._combined.scan(document.token_id_array(self.interner))
        document._kernel_scan = (self, result)
        return result

    def stem_document(self, document: TokenizedDocument) -> TokenizedDocument:
        """The stemmer pass: stamp the kernel and intern the document.

        The interned id view is computed here (the stage's real work);
        the stem *strings* stay lazy — with the kernel stamped,
        ``document.stemmed_terms`` materializes through the stem table
        if a consumer asks, and the relevance context usually bypasses
        stem strings entirely via :meth:`tid_context`.
        """
        document._kernel = self
        document.token_ids(self.interner)
        return document

    def stemmed_document_terms(self, document: TokenizedDocument) -> List[str]:
        """Table-driven ``stemmed_terms`` for *document* (uncached)."""
        return self.stem_table.stemmed_terms(
            document.words, document.token_ids(self.interner)
        )

    def tid_context(self, document: TokenizedDocument, tid_table) -> np.ndarray:
        """Sorted unique TID array of the document's stemmed content terms.

        Stem-free for in-vocabulary text: a cached vid->TID column turns
        the ranking context into array ops over the interned id stream;
        only OOV words fall back to Porter + a table lookup.  Value-
        identical to ``tid_table.tid_context(stemmed_terms(document))``.
        """
        ids = document.token_id_array(self.interner)
        mapping = self._tid_mapping(tid_table)
        # one bincount replaces np.unique: shifting the sentinel values
        # (-2: the OOV slot, -1: stopword/untracked) into slots 0/1
        # makes nonzero counts[2:] exactly the sorted unique TIDs, and
        # slot 0 tells us OOV presence without another pass
        counts = np.bincount(mapping[ids] + 2, minlength=2)
        has_oov = bool(counts[0])
        unique = counts[2:].nonzero()[0]
        oov = self.interner.oov
        if has_oov:
            extra = set()
            words = document.words
            lookup = tid_table.lookup
            for position, vid in enumerate(document.token_ids(self.interner)):
                if vid == oov:
                    word = words[position]
                    if not is_stopword(word):
                        tid = lookup(stem(word))
                        if tid is not None:
                            extra.add(tid)
            if extra:
                unique = np.unique(
                    np.concatenate(
                        [unique, np.fromiter(extra, dtype=mapping.dtype)]
                    )
                )
        return unique.astype(np.uint32)

    def _tid_mapping(self, tid_table) -> np.ndarray:
        """vid -> TID column (-1: stopword/untracked, -2: the OOV slot).

        Cached against the table's identity and size; TID tables only
        ever grow, so a size change is exactly a content change.
        """
        key = (id(tid_table), len(tid_table))
        cached = self._tid_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        flags = self.stem_table.flags
        stems = self.stem_table.stems
        lookup = tid_table.lookup
        mapping = np.full(len(self.interner) + 1, -1, dtype=np.int64)
        mapping[len(self.interner)] = -2  # OOV sentinel slot
        for vid in range(len(self.interner)):
            if flags[vid] == 0:
                tid = lookup(stems[vid])
                if tid is not None:
                    mapping[vid] = tid
        self._tid_cache = (key, mapping)
        return mapping

    def term_counts(self, document: TokenizedDocument) -> Dict[str, int]:
        """Stopword-free term counts (the term-vector counting pass).

        In-vocabulary counting is one ``np.bincount`` over the cached id
        array; only OOV words fall back to the per-token Python loop.
        Counts are integer-identical to the seed loop (dict order may
        differ; every downstream weight is computed per-entry).
        """
        ids = document.token_id_array(self.interner)
        oov = self.interner.oov
        counts_by_id = np.bincount(ids, minlength=oov + 1)
        present = (counts_by_id.astype(bool) & self._content_mask).nonzero()[0]
        terms = self.interner.terms
        counts: Dict[str, int] = {
            terms[vid]: count
            for vid, count in zip(
                present.tolist(), counts_by_id[present].tolist()
            )
        }
        if counts_by_id[oov]:
            words = document.words
            for position, vid in enumerate(document.token_ids(self.interner)):
                if vid == oov:
                    word = words[position]
                    if not is_stopword(word):
                        counts[word] = counts.get(word, 0) + 1
        return counts

    def _idf_column(self, doc_frequency) -> np.ndarray:
        """vid -> idf column for *doc_frequency*, cached per version.

        Every mutation of the table goes through ``add_document``,
        which bumps ``total_documents`` — so (identity, total) is a
        version key.  Values come from the table's own ``idf``, so each
        entry is the exact double the per-term path would compute.
        """
        key = (id(doc_frequency), doc_frequency.total_documents)
        cached = self._idf_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        idf = doc_frequency.idf
        terms = self.interner.terms
        column = np.empty(len(terms) + 1, dtype=np.float64)
        column[-1] = 0.0  # the OOV slot; never read (content mask is False)
        for vid, term in enumerate(terms):
            column[vid] = idf(term)
        self._idf_cache = (key, column)
        return column

    def term_weights(
        self,
        document: TokenizedDocument,
        doc_frequency,
        punish_threshold: float,
        punish_factor: float,
        prune_threshold: float,
    ) -> Dict[str, float]:
        """Shaped tf*idf term weights, computed in id space.

        Fuses the term-vector chain (count -> tf*idf -> normalize ->
        punish -> prune) into array passes over the present vids: one
        ``bincount``, one idf-column multiply, one vectorized
        normalize/punish/prune.  Each per-entry float operation
        (``count * idf``, ``/ peak``, ``* punish_factor``, threshold
        compares) is the same IEEE double arithmetic the TermVector
        path applies per term, so surviving weights are
        float-identical; only OOV words run the per-token fallback.
        """
        ids = document.token_id_array(self.interner)
        oov = self.interner.oov
        counts_by_id = np.bincount(ids, minlength=oov + 1)
        present = (counts_by_id.astype(bool) & self._content_mask).nonzero()[0]
        weights = (
            counts_by_id[present].astype(np.float64)
            * self._idf_column(doc_frequency)[present]
        )

        oov_weights: Dict[str, float] = {}
        if counts_by_id[oov]:
            words = document.words
            counts: Dict[str, int] = {}
            for position, vid in enumerate(document.token_ids(self.interner)):
                if vid == oov:
                    word = words[position]
                    if not is_stopword(word):
                        counts[word] = counts.get(word, 0) + 1
            idf = doc_frequency.idf
            oov_weights = {
                word: count * idf(word) for word, count in counts.items()
            }

        peak = weights.max() if weights.size else 0.0
        if oov_weights:
            peak = max(peak, max(oov_weights.values()))
        terms = self.interner.terms
        if not weights.size and not oov_weights:
            return {}
        if peak <= 0.0:
            # degenerate table: normalized() pins every weight to 0.0
            value = 0.0 * punish_factor if 0.0 < punish_threshold else 0.0
            if value < prune_threshold:
                return {}
            out = {terms[vid]: value for vid in present.tolist()}
            for word in oov_weights:
                out[word] = value
            return out
        normalized = weights / peak
        shaped = np.where(
            normalized < punish_threshold,
            normalized * punish_factor,
            normalized,
        )
        keep = shaped >= prune_threshold
        out = {
            terms[vid]: value
            for vid, value in zip(
                present[keep].tolist(), shaped[keep].tolist()
            )
        }
        for word, weight in oov_weights.items():
            value = weight / peak
            if value < punish_threshold:
                value *= punish_factor
            if value >= prune_threshold:
                out[word] = value
        return out

    def unit_weights(self, document: TokenizedDocument) -> Dict[str, float]:
        """Greedy unit-segmentation weights (the unit-vector pass).

        Reproduces ``UnitLexicon.segment`` + scoring: multi-term units
        come from the unit automaton's leftmost-longest spans (score in
        the automaton's score column), every uncovered word is a
        singleton segment scored by the single-unit column.  Weight
        insertion order is document order, like the seed loop.
        """
        ids = document.token_ids(self.interner)
        if self.units is None:
            spans = []
        elif self._combined is not None:
            spans = greedy_spans(self.scan(document)[2])
        else:
            spans = self.units.find_scored_spans(ids)
        words = document.words
        singles = self.unit_single_scores
        weights: Dict[str, float] = {}

        # A given word always carries the same single-unit score and a
        # given multi-term phrase the same automaton score, so "keep the
        # max" degenerates to "insert once".  Positions with a nonzero
        # singleton score are found in one vectorized pass; the walk
        # below visits only those, in document order, skipping the ones
        # a multi-term span covers — exactly the seed segmentation.
        candidates = (
            self._unit_single_array[document.token_id_array(self.interner)]
            > 0.0
        ).nonzero()[0].tolist()
        count = len(candidates)
        index = 0
        for start, end, score in spans:
            while index < count:
                position = candidates[index]
                if position >= start:
                    break
                index += 1
                word = words[position]
                if word not in weights:
                    weights[word] = singles[ids[position]]
            if score > 0.0:
                phrase = " ".join(words[start:end])
                if phrase not in weights:
                    weights[phrase] = score
            while index < count and candidates[index] < end:
                index += 1
        for position in candidates[index:]:
            word = words[position]
            if word not in weights:
                weights[word] = singles[ids[position]]
        return weights
