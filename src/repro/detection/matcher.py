"""Phrase matching over token streams with character offsets.

Both the dictionary (named entity) and concept detectors reduce to the
same operation: find occurrences of a large phrase inventory in a
document.  The matcher stores the inventory in a token trie (the
"data-pack" hash tables of the paper's framework) and walks each
document position once, extending the match term by term and keeping
the deepest terminal node — longest-match-wins without materializing a
candidate tuple per inventory phrase per position.

When a compiled :class:`~repro.detection.kernel.FlatAutomaton` is
attached (see :meth:`PhraseMatcher.attach_automaton`), `find_document`
dispatches to its flat-table scan instead; the trie walk stays
available as :meth:`find_document_trie` and remains the reference
implementation the automaton is cross-checked against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.text.tokenized import DocumentLike, TokenizedDocument

Phrase = Tuple[str, ...]

# Trie terminal marker.  `None` cannot collide with a term key (terms
# are strings), and keeps node lookups to a single dict probe.
_END = None


class PhraseMatcher:
    """Longest-match detection of a fixed phrase inventory."""

    def __init__(self, phrases: Iterable[Phrase]):
        self._trie: Dict = {}
        self._inventory: List[Phrase] = []
        self.max_length = 0
        self._automaton = None
        for phrase in phrases:
            phrase = tuple(term.lower() for term in phrase)
            if not phrase:
                continue
            node = self._trie
            for term in phrase:
                node = node.setdefault(term, {})
            if _END not in node:  # deduplicate the inventory at insert
                node[_END] = phrase
                self._inventory.append(phrase)
                self.max_length = max(self.max_length, len(phrase))

    def __len__(self) -> int:
        """Number of distinct phrases in the inventory."""
        return len(self._inventory)

    def inventory(self) -> List[Phrase]:
        """The deduplicated phrase inventory, insertion order."""
        return list(self._inventory)

    # -- compiled kernel -------------------------------------------------

    def attach_automaton(self, automaton) -> None:
        """Route `find_document` through a compiled automaton.

        *automaton* must have been compiled from this matcher's
        inventory — the phrase count is checked as a cheap guard against
        attaching a pack built from a different inventory.  Pass None to
        restore the pure-Python trie path.
        """
        if automaton is not None and automaton.phrase_count != len(self._inventory):
            raise ValueError(
                f"automaton compiled for {automaton.phrase_count} phrases, "
                f"matcher holds {len(self._inventory)}"
            )
        self._automaton = automaton

    @property
    def automaton(self):
        """The attached compiled automaton, or None (trie path)."""
        return self._automaton

    # -- matching --------------------------------------------------------

    def find(self, text: DocumentLike) -> List[Tuple[Phrase, int, int]]:
        """All (phrase, char_start, char_end) matches, document order.

        Matches are non-overlapping: after a match the scan resumes past
        it (longest-match-wins, as in the production segmentation).
        Accepts either a raw string or a shared :class:`TokenizedDocument`.
        """
        return self.find_document(TokenizedDocument.of(text))

    def find_document(
        self, document: TokenizedDocument
    ) -> List[Tuple[Phrase, int, int]]:
        """`find` over an already-tokenized document (no re-tokenizing)."""
        if self._automaton is not None:
            return self._automaton.find_phrases(document)
        return self.find_document_trie(document)

    def find_document_trie(
        self, document: TokenizedDocument
    ) -> List[Tuple[Phrase, int, int]]:
        """The pure-Python trie walk (reference path for equivalence)."""
        words = document.words
        starts = document.word_starts
        ends = document.word_ends
        matches: List[Tuple[Phrase, int, int]] = []
        index = 0
        count = len(words)
        trie = self._trie
        while index < count:
            node = trie
            matched: Optional[Phrase] = None
            matched_end = index
            scan = index
            while scan < count:
                node = node.get(words[scan])
                if node is None:
                    break
                scan += 1
                phrase = node.get(_END)
                if phrase is not None:
                    matched = phrase
                    matched_end = scan
            if matched is None:
                index += 1
                continue
            matches.append((matched, starts[index], ends[matched_end - 1]))
            index = matched_end
        return matches
