"""Phrase matching over token streams with character offsets.

Both the dictionary (named entity) and concept detectors reduce to the
same operation: find occurrences of a large phrase inventory in a
document.  The matcher indexes phrases by first term (the "data-pack"
hash tables of the paper's framework) and takes the longest match at
each position.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.text.tokenizer import tokenize

Phrase = Tuple[str, ...]


class PhraseMatcher:
    """Longest-match detection of a fixed phrase inventory."""

    def __init__(self, phrases: Iterable[Phrase]):
        self._by_first: Dict[str, List[Phrase]] = {}
        self.max_length = 0
        for phrase in phrases:
            phrase = tuple(term.lower() for term in phrase)
            if not phrase:
                continue
            self._by_first.setdefault(phrase[0], []).append(phrase)
            self.max_length = max(self.max_length, len(phrase))
        # longest-first so the first hit at a position is the longest
        for candidates in self._by_first.values():
            candidates.sort(key=len, reverse=True)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_first.values())

    def find(self, text: str) -> List[Tuple[Phrase, int, int]]:
        """All (phrase, char_start, char_end) matches, document order.

        Matches are non-overlapping: after a match the scan resumes past
        it (longest-match-wins, as in the production segmentation).
        """
        word_tokens = [token for token in tokenize(text) if token.is_word()]
        words = [token.lower for token in word_tokens]
        matches: List[Tuple[Phrase, int, int]] = []
        index = 0
        count = len(words)
        while index < count:
            matched = None
            for phrase in self._by_first.get(words[index], ()):
                size = len(phrase)
                if index + size <= count and tuple(words[index : index + size]) == phrase:
                    matched = phrase
                    break
            if matched is None:
                index += 1
                continue
            start = word_tokens[index].start
            end = word_tokens[index + len(matched) - 1].end
            matches.append((matched, start, end))
            index += len(matched)
        return matches
