"""Phrase matching over token streams with character offsets.

Both the dictionary (named entity) and concept detectors reduce to the
same operation: find occurrences of a large phrase inventory in a
document.  The matcher stores the inventory in a token trie (the
"data-pack" hash tables of the paper's framework) and walks each
document position once, extending the match term by term and keeping
the deepest terminal node — longest-match-wins without materializing a
candidate tuple per inventory phrase per position.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.text.tokenized import DocumentLike, TokenizedDocument

Phrase = Tuple[str, ...]

# Trie terminal marker.  `None` cannot collide with a term key (terms
# are strings), and keeps node lookups to a single dict probe.
_END = None


class PhraseMatcher:
    """Longest-match detection of a fixed phrase inventory."""

    def __init__(self, phrases: Iterable[Phrase]):
        self._trie: Dict = {}
        self._size = 0
        self.max_length = 0
        for phrase in phrases:
            phrase = tuple(term.lower() for term in phrase)
            if not phrase:
                continue
            node = self._trie
            for term in phrase:
                node = node.setdefault(term, {})
            if _END not in node:  # deduplicate the inventory at insert
                node[_END] = phrase
                self._size += 1
                self.max_length = max(self.max_length, len(phrase))

    def __len__(self) -> int:
        """Number of distinct phrases in the inventory."""
        return self._size

    def find(self, text: DocumentLike) -> List[Tuple[Phrase, int, int]]:
        """All (phrase, char_start, char_end) matches, document order.

        Matches are non-overlapping: after a match the scan resumes past
        it (longest-match-wins, as in the production segmentation).
        Accepts either a raw string or a shared :class:`TokenizedDocument`.
        """
        return self.find_document(TokenizedDocument.of(text))

    def find_document(
        self, document: TokenizedDocument
    ) -> List[Tuple[Phrase, int, int]]:
        """`find` over an already-tokenized document (no re-tokenizing)."""
        word_tokens = document.word_tokens
        words = document.words
        matches: List[Tuple[Phrase, int, int]] = []
        index = 0
        count = len(words)
        trie = self._trie
        while index < count:
            node = trie
            matched: Phrase = ()
            matched_end = index
            scan = index
            while scan < count:
                node = node.get(words[scan])
                if node is None:
                    break
                scan += 1
                phrase = node.get(_END)
                if phrase is not None:
                    matched = phrase
                    matched_end = scan
            if not matched:
                index += 1
                continue
            start = word_tokens[index].start
            end = word_tokens[matched_end - 1].end
            matches.append((matched, start, end))
            index = matched_end
        return matches
