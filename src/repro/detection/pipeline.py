"""The Contextual Shortcuts detection pipeline.

Glues together the pre-processing and the three detectors, then applies
the paper's post-processing: "collision detection between overlapping
entities, disambiguation, filtering, and output annotation"
(Section II).  The pipeline output — candidate entities with concept-
vector scores — is exactly what the ranking layer consumes, and
ranking by the concept-vector score alone *is* the paper's baseline
production system.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.detection.base import KIND_PATTERN, Detection
from repro.detection.concepts import ConceptDetector
from repro.detection.conceptvector import ConceptVectorScorer
from repro.detection.named import NamedEntityDetector
from repro.detection.patterns import PatternDetector
from repro.text.html import strip_html
from repro.text.tokenized import DocumentLike, TokenizedDocument


@dataclass
class AnnotatedDocument:
    """Pipeline output: plain text plus scored, collision-free detections.

    *tokens* is the shared token stream the pipeline analysed, carried
    along so downstream consumers (the ranker's relevance context) can
    reuse it instead of re-tokenizing; it never affects equality.
    """

    text: str
    detections: List[Detection] = field(default_factory=list)
    tokens: Optional[TokenizedDocument] = field(
        default=None, repr=False, compare=False
    )

    def rankable(self) -> List[Detection]:
        """Detections subject to ranking (pattern entities are always shown)."""
        return [d for d in self.detections if d.kind != KIND_PATTERN]

    def by_concept_vector_score(self) -> List[Detection]:
        """Rankable detections ordered by the baseline score, descending."""
        return sorted(self.rankable(), key=lambda d: (-d.score, d.start))

    def annotate(self, marker: str = "[[{}]]") -> str:
        """The text with every detection wrapped (the "intelligent
        hyperlink" annotation step, rendered as plain markers)."""
        pieces: List[str] = []
        cursor = 0
        for detection in sorted(self.detections, key=lambda d: d.start):
            pieces.append(self.text[cursor : detection.start])
            pieces.append(marker.format(self.text[detection.start : detection.end]))
            cursor = detection.end
        pieces.append(self.text[cursor:])
        return "".join(pieces)


def resolve_collisions(detections: List[Detection]) -> List[Detection]:
    """Drop overlapping detections, keeping the higher-priority span.

    Priority: longer span first, then pattern > named > concept.

    The kept spans are pairwise non-overlapping, so ordered by
    ``(start, end)`` their end offsets are non-decreasing; a candidate
    then collides iff the last kept span starting before its end runs
    past its start.  That one bisect replaces the seed's O(n^2)
    all-pairs overlap scan.
    """
    ordered = sorted(
        detections, key=lambda d: (-d.priority()[0], -d.priority()[1], d.start)
    )
    kept: List[Detection] = []
    spans: List[tuple] = []  # kept (start, end), kept sorted
    for candidate in ordered:
        # spans with start < candidate.end are the only overlap risks
        before = bisect_left(spans, (candidate.end,))
        if before and spans[before - 1][1] > candidate.start:
            continue
        insort(spans, (candidate.start, candidate.end))
        kept.append(candidate)
    kept.sort(key=lambda d: d.start)
    return kept


def deduplicate(detections: List[Detection]) -> List[Detection]:
    """Keep only the first occurrence of each phrase.

    An entity is annotated once per page; views/clicks are counted per
    entity, not per occurrence (Section III).
    """
    seen: Dict[str, Detection] = {}
    for detection in detections:
        if detection.phrase not in seen:
            seen[detection.phrase] = detection
    return sorted(seen.values(), key=lambda d: d.start)


class ShortcutsPipeline:
    """End-to-end detection: HTML -> candidates with baseline scores.

    *kernel* selects the per-document execution path:

    * ``"auto"`` (default) — compile a
      :class:`~repro.detection.kernel.DetectionKernel` from the live
      inventories the first time a document is processed, then run the
      compiled path;
    * ``"off"`` / ``None`` — pure-Python path (the trie walk, the
      Porter stemmer pass, the lexicon segmentation);
    * a :class:`~repro.detection.kernel.DetectionKernel` — attach a
      prebuilt kernel (typically loaded from a data pack).

    Both paths produce byte-identical output; the equivalence is
    enforced by ``benchmarks/bench_hotpath.py`` and the automaton tests.
    """

    def __init__(
        self,
        concept_detector: ConceptDetector,
        scorer: ConceptVectorScorer,
        named_detector: Optional[NamedEntityDetector] = None,
        pattern_detector: Optional[PatternDetector] = None,
        kernel="auto",
    ):
        self._concepts = concept_detector
        self._scorer = scorer
        self._named = named_detector
        self._patterns = pattern_detector or PatternDetector()
        self._kernel = None
        self._kernel_auto = False
        if kernel == "auto":
            self._kernel_auto = True
        elif kernel not in (None, "off"):
            self.attach_kernel(kernel)

    # -- compiled kernel -------------------------------------------------

    @property
    def kernel(self):
        """The attached compiled kernel, or None (pure-Python path)."""
        return self._kernel

    def compile_kernel(self, vocab_terms=(), stem_of=None):
        """Compile a kernel from the live inventories and attach it.

        *vocab_terms*/*stem_of* seed the vocabulary and stem table
        (typically a corpus vocabulary with its precomputed stems);
        phrase and unit tokens the vocabulary is missing are folded in
        by the builder.  Returns the attached kernel.
        """
        from repro.detection.kernel import DetectionKernel

        if not vocab_terms:
            doc_frequency = getattr(self._scorer, "_doc_frequency", None)
            if doc_frequency is not None:
                vocab_terms = list(getattr(doc_frequency, "_doc_freq", {}))
        kernel = DetectionKernel.build(
            concept_phrases=self._concepts.inventory(),
            named_phrases=(
                self._named.inventory() if self._named is not None else None
            ),
            lexicon=self._scorer.lexicon,
            vocab_terms=vocab_terms,
            stem_of=stem_of,
        )
        self.attach_kernel(kernel)
        return kernel

    def attach_kernel(self, kernel) -> None:
        """Attach (or with None, detach) a compiled detection kernel."""
        # The views route matching through the kernel's shared combined
        # scan (one pass serves both detectors + unit segmentation).
        self._concepts.attach_automaton(
            kernel.concepts_view if kernel is not None else None
        )
        if self._named is not None:
            self._named.attach_automaton(
                kernel.named_view if kernel is not None else None
            )
        self._scorer.attach_kernel(kernel)
        self._kernel = kernel
        self._kernel_auto = False

    def _ensure_kernel(self) -> None:
        if self._kernel_auto:
            self.compile_kernel()

    def stem_document(self, document: TokenizedDocument):
        """The stemmer pass for *document* (table-driven when compiled).

        This is the runtime service's stemmer stage: with a kernel it
        runs off the precomputed vocab->stem table (Porter only for OOV
        words); without one it is exactly ``document.stemmed_terms``.
        """
        self._ensure_kernel()
        if self._kernel is not None:
            return self._kernel.stem_document(document)
        return document.stemmed_terms

    def process(self, document: DocumentLike, is_html: bool = False) -> AnnotatedDocument:
        """Run the full pipeline on *document* (a string or shared tokens)."""
        if is_html:
            document = strip_html(
                document.text
                if isinstance(document, TokenizedDocument)
                else document
            )
        return self.process_document(TokenizedDocument.of(document))

    def process_document(self, document: TokenizedDocument) -> AnnotatedDocument:
        """The single-pass pipeline: every stage reads *document*'s
        shared token stream; the document is tokenized at most once."""
        self._ensure_kernel()
        text = document.text

        candidates: List[Detection] = []
        candidates.extend(self._patterns.detect(text))
        if self._named is not None:
            candidates.extend(self._named.detect_document(document))
        candidates.extend(self._concepts.detect_document(document))

        resolved = deduplicate(resolve_collisions(candidates))

        vector = self._scorer.concept_vector(document)
        scored = [
            d
            if d.kind == KIND_PATTERN
            else d.with_score(self._scorer.score_phrase(vector, d.phrase))
            for d in resolved
        ]
        return AnnotatedDocument(text=text, detections=scored, tokens=document)
