"""Shared detection data model.

The Contextual Shortcuts platform distinguishes three entity kinds
(paper Section II-A): pattern-based entities, named entities, and
concepts.  A :class:`Detection` records the surface span, the kind, the
taxonomy/pattern type, and later the concept-vector score assigned by
the baseline ranker.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

KIND_PATTERN = "pattern"
KIND_NAMED = "named"
KIND_CONCEPT = "concept"

# collision priority: higher wins when spans overlap and lengths tie
_KIND_PRIORITY = {KIND_PATTERN: 3, KIND_NAMED: 2, KIND_CONCEPT: 1}


@dataclass(frozen=True)
class Detection:
    """One detected entity occurrence in a document."""

    text: str
    start: int
    end: int
    kind: str
    entity_type: Optional[str] = None
    terms: Tuple[str, ...] = field(default=())
    score: float = 0.0

    @property
    def phrase(self) -> str:
        """Normalized phrase key (lower-case surface text)."""
        return self.text.lower()

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Detection") -> bool:
        return self.start < other.end and other.start < self.end

    def with_score(self, score: float) -> "Detection":
        return replace(self, score=score)

    def priority(self) -> Tuple[int, int]:
        """Collision priority: longer spans win, then kind priority."""
        return (self.length, _KIND_PRIORITY.get(self.kind, 0))
