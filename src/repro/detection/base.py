"""Shared detection data model.

The Contextual Shortcuts platform distinguishes three entity kinds
(paper Section II-A): pattern-based entities, named entities, and
concepts.  A :class:`Detection` records the surface span, the kind, the
taxonomy/pattern type, and later the concept-vector score assigned by
the baseline ranker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

KIND_PATTERN = "pattern"
KIND_NAMED = "named"
KIND_CONCEPT = "concept"

# collision priority: higher wins when spans overlap and lengths tie
_KIND_PRIORITY = {KIND_PATTERN: 3, KIND_NAMED: 2, KIND_CONCEPT: 1}


@dataclass(frozen=True)
class Detection:
    """One detected entity occurrence in a document."""

    text: str
    start: int
    end: int
    kind: str
    entity_type: Optional[str] = None
    terms: Tuple[str, ...] = field(default=())
    score: float = 0.0

    @classmethod
    def make(
        cls,
        text: str,
        start: int,
        end: int,
        kind: str,
        entity_type: Optional[str] = None,
        terms: Tuple[str, ...] = (),
        score: float = 0.0,
    ) -> "Detection":
        """Fast construction for per-match hot paths.

        The frozen-dataclass ``__init__`` pays one ``object.__setattr__``
        per field; installing the instance dict wholesale builds the
        same instance (``__eq__``/``__hash__`` read the fields, not the
        construction route) in a single dict literal.
        """
        self = object.__new__(cls)
        object.__setattr__(
            self,
            "__dict__",
            {
                "text": text,
                "start": start,
                "end": end,
                "kind": kind,
                "entity_type": entity_type,
                "terms": terms,
                "score": score,
            },
        )
        return self

    @property
    def phrase(self) -> str:
        """Normalized phrase key (lower-case surface text)."""
        return self.text.lower()

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Detection") -> bool:
        return self.start < other.end and other.start < self.end

    def with_score(self, score: float) -> "Detection":
        # direct construction: `dataclasses.replace` re-runs field
        # introspection per call, which is measurable at per-detection
        # frequency on the single-document hot path
        return Detection.make(
            self.text,
            self.start,
            self.end,
            self.kind,
            self.entity_type,
            self.terms,
            score,
        )

    def priority(self) -> Tuple[int, int]:
        """Collision priority: longer spans win, then kind priority."""
        # inline of `self.length`: priority() is a per-detection sort key
        return (self.end - self.start, _KIND_PRIORITY.get(self.kind, 0))
