"""Named-entity detection from editorial dictionaries.

"Named entities are detected with the help of editorially reviewed
dictionaries ... It is possible that a named entity can be a member of
multiple types, such as the term jaguar, in which case the entity is
disambiguated" (Section II-A).  Disambiguation here is contextual: the
type whose other dictionary entities also occur in the document wins;
failing that, the dictionary's primary type is used.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.corpus.dictionaries import EditorialDictionary
from repro.detection.base import KIND_NAMED, Detection
from repro.detection.matcher import PhraseMatcher
from repro.text.tokenized import TokenizedDocument


class NamedEntityDetector:
    """Dictionary-driven detector with type disambiguation."""

    def __init__(self, dictionary: EditorialDictionary):
        self._dictionary = dictionary
        self._matcher = PhraseMatcher(
            tuple(phrase.split()) for phrase in dictionary.phrases()
        )

    def detect(self, text: str) -> List[Detection]:
        """All dictionary entities in *text* with resolved types."""
        return self.detect_document(TokenizedDocument.of(text))

    def detect_document(self, document: TokenizedDocument) -> List[Detection]:
        """`detect` over a shared token stream (no re-tokenizing)."""
        text = document.text
        matches = self._matcher.find_document(document)
        # first pass: count unambiguous types in the document as context
        context_types: Counter = Counter()
        for phrase, __, __end in matches:
            key = " ".join(phrase)
            if not self._dictionary.is_ambiguous(key):
                entity_type = self._dictionary.high_level_type(key)
                if entity_type:
                    context_types[entity_type] += 1

        detections: List[Detection] = []
        for phrase, start, end in matches:
            key = " ".join(phrase)
            entity_type = self._resolve_type(key, context_types)
            detections.append(
                Detection(
                    text=text[start:end],
                    start=start,
                    end=end,
                    kind=KIND_NAMED,
                    entity_type=entity_type,
                    terms=phrase,
                )
            )
        return detections

    def _resolve_type(self, phrase: str, context_types: Counter) -> str:
        entries = self._dictionary.lookup(phrase)
        types = [entry.high_level_type for entry in entries]
        if len(set(types)) <= 1:
            return types[0]
        # ambiguous: prefer the candidate type most supported by context
        best = max(types, key=lambda t: (context_types.get(t, 0), -types.index(t)))
        return best
