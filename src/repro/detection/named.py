"""Named-entity detection from editorial dictionaries.

"Named entities are detected with the help of editorially reviewed
dictionaries ... It is possible that a named entity can be a member of
multiple types, such as the term jaguar, in which case the entity is
disambiguated" (Section II-A).  Disambiguation here is contextual: the
type whose other dictionary entities also occur in the document wins;
failing that, the dictionary's primary type is used.

All dictionary lookups are hoisted to construction time: the detector
compiles one record per phrase (ambiguity, context type, candidate
types in preference order) so the per-document passes are pure dict
probes — no `lookup`/`is_ambiguous` calls on the hot path.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.corpus.dictionaries import EditorialDictionary
from repro.detection.base import KIND_NAMED, Detection
from repro.detection.matcher import PhraseMatcher

Phrase = Tuple[str, ...]

from repro.text.tokenized import TokenizedDocument


class _PhraseRecord(NamedTuple):
    """Construction-time-compiled dictionary facts for one phrase key."""

    context_type: Optional[str]  # counted as context when unambiguous
    resolved_type: Optional[str]  # the type, when no disambiguation needed
    candidates: Tuple[Tuple[str, int], ...]  # (type, -first_index) prefs


class NamedEntityDetector:
    """Dictionary-driven detector with type disambiguation."""

    def __init__(self, dictionary: EditorialDictionary):
        self._dictionary = dictionary
        self._matcher = PhraseMatcher(
            tuple(phrase.split()) for phrase in dictionary.phrases()
        )
        # Hoist every per-match dictionary call the detect loop used to
        # make (`is_ambiguous`, `high_level_type`, `lookup`, and the
        # `types.index` preference order) into one record per phrase.
        self._records: Dict[str, _PhraseRecord] = {}
        for key in dictionary.phrases():
            types = [
                entry.high_level_type for entry in dictionary.lookup(key)
            ]
            ambiguous = dictionary.is_ambiguous(key)
            context_type = (
                dictionary.high_level_type(key) if not ambiguous else None
            )
            if len(set(types)) <= 1:
                resolved: Optional[str] = types[0]
                candidates: Tuple[Tuple[str, int], ...] = ()
            else:
                resolved = None
                firsts: Dict[str, int] = {}
                for index, entity_type in enumerate(types):
                    firsts.setdefault(entity_type, index)
                candidates = tuple(
                    (entity_type, -index) for entity_type, index in firsts.items()
                )
            self._records[key] = _PhraseRecord(
                context_type=context_type or None,
                resolved_type=resolved,
                candidates=candidates,
            )

    def inventory(self) -> List[Phrase]:
        """The deduplicated dictionary inventory (kernel compilation)."""
        return self._matcher.inventory()

    def attach_automaton(self, automaton) -> None:
        """Route matching through a compiled automaton (None restores
        the pure-Python trie path)."""
        self._matcher.attach_automaton(automaton)

    def detect(self, text: str) -> List[Detection]:
        """All dictionary entities in *text* with resolved types."""
        return self.detect_document(TokenizedDocument.of(text))

    def detect_document(self, document: TokenizedDocument) -> List[Detection]:
        """`detect` over a shared token stream (no re-tokenizing)."""
        text = document.text
        matches = self._matcher.find_document(document)
        if not matches:
            return []
        records = self._records
        # first pass: count unambiguous types in the document as context
        context_types: Counter = Counter()
        for phrase, __, __end in matches:
            context_type = records[" ".join(phrase)].context_type
            if context_type is not None:
                context_types[context_type] += 1

        detections: List[Detection] = []
        for phrase, start, end in matches:
            record = records[" ".join(phrase)]
            if record.resolved_type is not None:
                entity_type = record.resolved_type
            else:
                # ambiguous: prefer the type most supported by context,
                # dictionary order breaking ties (same key the seed's
                # `max(types, ...)` computed per document)
                entity_type = max(
                    record.candidates,
                    key=lambda pair: (context_types.get(pair[0], 0), pair[1]),
                )[0]
            detections.append(
                Detection.make(
                    text[start:end], start, end, KIND_NAMED, entity_type, phrase
                )
            )
        return detections
