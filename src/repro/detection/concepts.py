"""Concept detection from query-log units.

"Concepts are detected using data from search engine query logs, thus
allowing the system to detect things of interest that go beyond
editorially reviewed terms" (Section II-A).  Following Section III, the
detectable inventory is "a large, but finite set of entities, namely
the set of named entities in our dictionaries plus a large subset of
all the concepts available to us from query logs": a concept phrase is
detectable when the unit miner validated it (multi-term) or when its
single term clears a query-frequency floor.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.detection.base import KIND_CONCEPT, Detection
from repro.detection.matcher import PhraseMatcher
from repro.querylog.log import QueryLog
from repro.querylog.units import UnitLexicon
from repro.text.tokenized import TokenizedDocument

Phrase = Tuple[str, ...]


def detectable_concept_phrases(
    candidate_phrases: Iterable[Phrase],
    lexicon: UnitLexicon,
    query_log: QueryLog,
    min_single_term_frequency: int = 5,
) -> Set[Phrase]:
    """Filter the candidate inventory to query-log-supported phrases."""
    detectable: Set[Phrase] = set()
    for phrase in candidate_phrases:
        phrase = tuple(phrase)
        if len(phrase) > 1:
            if phrase in lexicon:
                detectable.add(phrase)
        elif query_log.freq_phrase_contained(phrase) >= min_single_term_frequency:
            detectable.add(phrase)
    return detectable


class ConceptDetector:
    """Detects occurrences of the detectable concept inventory."""

    def __init__(self, phrases: Iterable[Phrase], lexicon: UnitLexicon):
        self._phrases = {tuple(p) for p in phrases}
        self._lexicon = lexicon
        self._matcher = PhraseMatcher(self._phrases)

    @property
    def inventory_size(self) -> int:
        return len(self._phrases)

    @property
    def lexicon(self) -> UnitLexicon:
        """The unit lexicon backing `unit_score` (kernel compilation)."""
        return self._lexicon

    def inventory(self) -> List[Phrase]:
        """The deduplicated detectable inventory (kernel compilation)."""
        return self._matcher.inventory()

    def attach_automaton(self, automaton) -> None:
        """Route detection through a compiled automaton (None restores
        the pure-Python trie path)."""
        self._matcher.attach_automaton(automaton)

    def detect(self, text: str) -> List[Detection]:
        """All concept occurrences in *text*."""
        return self.detect_document(TokenizedDocument.of(text))

    def detect_document(self, document: TokenizedDocument) -> List[Detection]:
        """`detect` over a shared token stream (no re-tokenizing)."""
        text = document.text
        make = Detection.make
        return [
            make(text[start:end], start, end, KIND_CONCEPT, None, phrase)
            for phrase, start, end in self._matcher.find_document(document)
        ]

    def unit_score(self, phrase: Sequence[str]) -> float:
        """The mined unit score for *phrase* (0.0 if not a unit)."""
        return self._lexicon.score(tuple(phrase))
