"""Pattern-based entity detectors (emails, URLs, phone numbers).

"Pattern based entities are primarily detected by regular expressions.
To provide a level of consistent behavior to the end user, pattern
based entities are not subject to any relevance calculations [and] are
always annotated and shown to the user" (Section II-A).  The ranking
experiments therefore exclude them; the pipeline still detects and
annotates them for completeness.
"""

from __future__ import annotations

import re
from typing import List

from repro.detection.base import KIND_PATTERN, Detection

_EMAIL_RE = re.compile(r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b")
_URL_RE = re.compile(
    r"\b(?:https?://|www\.)[A-Za-z0-9.-]+\.[A-Za-z]{2,}(?:/[^\s<>\"')\]]*)?",
)
_PHONE_RE = re.compile(
    r"""
    (?<![\w.])
    (?:\+?1[-.\s])?          # optional country code
    (?:\(\d{3}\)\s?|\d{3}[-.\s])  # area code
    \d{3}[-.\s]\d{4}
    (?![\w-])
    """,
    re.VERBOSE,
)

_DIGIT_RE = re.compile(r"[0-9]")


def _has_email_marker(text: str) -> bool:
    return "@" in text


def _has_url_marker(text: str) -> bool:
    return "://" in text or "www." in text


def _has_digit(text: str) -> bool:
    return _DIGIT_RE.search(text) is not None


# Each gate is a necessary condition of its regex (every email match
# contains "@", every URL match "://" or "www.", every phone match a
# digit), so skipping a scan when the gate fails cannot drop a match —
# it just spares prose documents three full regex passes.
_PATTERNS = (
    ("email", _EMAIL_RE, _has_email_marker),
    ("url", _URL_RE, _has_url_marker),
    ("phone", _PHONE_RE, _has_digit),
)


class PatternDetector:
    """Regex detector for emails, URLs, and phone numbers."""

    def detect(self, text: str) -> List[Detection]:
        """All pattern entities in *text*, in document order."""
        detections: List[Detection] = []
        for pattern_type, regex, gate in _PATTERNS:
            if not gate(text):
                continue
            for match in regex.finditer(text):
                detections.append(
                    Detection(
                        text=match.group(),
                        start=match.start(),
                        end=match.end(),
                        kind=KIND_PATTERN,
                        entity_type=pattern_type,
                        terms=tuple(match.group().lower().split()),
                    )
                )
        detections.sort(key=lambda d: (d.start, -d.length))
        return detections
