"""Related-query suggestion service.

Stands in for the Yahoo! Developer Network suggestion API the paper
queries (Section IV-B): "we submit the concept ci to this service and
obtain up to 300 suggestions.  We also obtain the query frequencies of
the suggestions."  Suggestions are simply the query-log queries that
contain the concept phrase, ranked by submission frequency — which is
how such services are built from logs in practice.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.querylog.log import QueryLog
from repro.text.tokenizer import tokenize_lower


class SuggestionService:
    """Query-log-backed related-query suggestions."""

    def __init__(self, query_log: QueryLog, max_suggestions: int = 300):
        self._log = query_log
        self.max_suggestions = max_suggestions

    def suggest(self, phrase: str) -> List[Tuple[str, int]]:
        """Related queries containing *phrase*, with their frequencies.

        The exact query itself is excluded (it is not a *related*
        suggestion), matching the service the paper describes.
        """
        terms = tuple(tokenize_lower(phrase))
        if not terms:
            return []
        hits = [
            (" ".join(query), frequency)
            for query, frequency in self._log.queries_containing(terms)
            if query != terms
        ]
        hits.sort(key=lambda kv: (-kv[1], kv[0]))
        return hits[: self.max_suggestions]
