"""The synthetic search engine.

Stands in for Yahoo! Search wherever the paper consumes it:

* phrase-query **result counts** — interestingness feature 4
  ("searchengine phrase": "we submit the concept to the search engine
  as a phrase query, and use the number of result pages returned");
* ranked **results with snippets** — the primary resource for mining
  relevant keywords (Section IV-B);
* free-text retrieval for the Prisma pseudo-relevance-feedback tool.

Scoring is BM25 (free queries) or summed phrase tf*idf (phrase
queries); both only use index statistics, exactly like a real engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs import get_registry
from repro.search.frozen import FrozenInvertedIndex
from repro.search.index import InvertedIndex
from repro.text.tokenizer import tokenize_lower


@dataclass(frozen=True)
class SearchResult:
    """One ranked result."""

    doc_id: int
    score: float


class SearchEngine:
    """BM25 search over tokenized documents, with phrase support.

    Documents are staged into the mutable dict-backed
    :class:`InvertedIndex`; calling :meth:`freeze` snapshots it into CSR
    numpy columns (:class:`FrozenInvertedIndex`) after which every query
    runs through the vectorized scorers.  Frozen and staged engines
    return identical results, bit-for-bit — the vectorized paths
    replicate the seed arithmetic in the seed's accumulation order.
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self._index = InvertedIndex()
        self._tokens: Dict[int, List[str]] = {}
        self._frozen: Optional[FrozenInvertedIndex] = None
        self._length_norm: Optional[np.ndarray] = None
        registry = get_registry()
        self._m_queries = {
            kind: registry.counter(
                "search_queries_total",
                help="search engine queries by kind",
                kind=kind,
            )
            for kind in ("free", "phrase", "count", "phrase_count")
        }

    @property
    def index(self):
        """The active index: the frozen snapshot once one exists."""
        return self._frozen if self._frozen is not None else self._index

    @property
    def frozen(self) -> Optional[FrozenInvertedIndex]:
        return self._frozen

    @property
    def is_frozen(self) -> bool:
        return self._frozen is not None

    @property
    def document_count(self) -> int:
        return self.index.document_count

    def add_document(self, doc_id: int, text: str) -> None:
        """Tokenize and index one document."""
        self.add_document_tokens(doc_id, tokenize_lower(text))

    def add_document_tokens(self, doc_id: int, tokens: List[str]) -> None:
        """Index an already tokenized document (offline fast path)."""
        if self._frozen is not None:
            raise RuntimeError("engine is frozen; cannot add documents")
        self._index.add_document(doc_id, tokens)
        self._tokens[doc_id] = tokens

    def freeze(self) -> FrozenInvertedIndex:
        """Snapshot the staged index into CSR columns (idempotent)."""
        if self._frozen is None:
            self._adopt(FrozenInvertedIndex.from_index(self._index))
        return self._frozen

    def _adopt(self, frozen: FrozenInvertedIndex) -> None:
        self._frozen = frozen
        avg_len = frozen.average_document_length or 1.0
        lengths = frozen.doc_lengths.astype(np.float64)
        # Same association order as the scalar path:
        # 1 - b + (b * doc_length) / avg_length, left to right.
        self._length_norm = 1 - self.b + self.b * lengths / avg_len

    def tokens(self, doc_id: int) -> List[str]:
        """The indexed token sequence of a document."""
        return self._tokens[doc_id]

    @classmethod
    def from_frozen(
        cls,
        frozen: FrozenInvertedIndex,
        tokens: Dict[int, List[str]],
        k1: float = 1.2,
        b: float = 0.75,
    ) -> "SearchEngine":
        """Wrap a pre-built CSR index (skips the dict staging form)."""
        engine = cls(k1=k1, b=b)
        engine._tokens = tokens
        engine._adopt(frozen)
        return engine

    # -- scoring ---------------------------------------------------------

    def _idf(self, term: str) -> float:
        df = self.index.document_frequency(term)
        n = self.index.document_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def _bm25(self, terms: Sequence[str], doc_id: int) -> float:
        index = self.index
        avg_len = index.average_document_length or 1.0
        length_norm = 1 - self.b + self.b * index.doc_length(doc_id) / avg_len
        score = 0.0
        for term in set(terms):
            tf = index.term_frequency(term, doc_id)
            if tf == 0:
                continue
            score += self._idf(term) * tf * (self.k1 + 1) / (tf + self.k1 * length_norm)
        return score

    def _ranked_results(
        self, rows: np.ndarray, scores: np.ndarray, limit: int
    ) -> List[SearchResult]:
        """Sort (-score, doc_id) and materialise the top *limit*."""
        doc_ids = self._frozen.doc_ids[rows]
        order = np.lexsort((doc_ids, -scores))[:limit]
        return [
            SearchResult(doc_id, score)
            for doc_id, score in zip(
                doc_ids[order].tolist(), scores[order].tolist()
            )
        ]

    def _search_frozen(self, terms: Sequence[str], limit: int) -> List[SearchResult]:
        """Vectorized BM25: one gather-accumulate per distinct term.

        Per-posting arithmetic mirrors :meth:`_bm25` exactly — same
        operand order, same float64 ops — so scores are bit-identical.
        """
        frozen = self._frozen
        scores = np.zeros(frozen.document_count)
        touched = np.zeros(frozen.document_count, dtype=bool)
        k1 = self.k1
        for term in set(terms):
            slot = frozen.slot(term)
            if slot is None:
                continue
            rows, tfs = frozen.posting_slice(slot)
            tf = tfs.astype(np.float64)
            contribution = (
                self._idf(term) * tf * (k1 + 1) / (tf + k1 * self._length_norm[rows])
            )
            scores[rows] += contribution
            touched[rows] = True
        rows = np.flatnonzero(touched)
        if not rows.size:
            return []
        return self._ranked_results(rows, scores[rows], limit)

    # -- queries ---------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> List[SearchResult]:
        """Free-text BM25 search."""
        self._m_queries["free"].inc()
        terms = tokenize_lower(query)
        if not terms:
            return []
        if self._frozen is not None:
            return self._search_frozen(terms, limit)
        candidates = set()
        for term in set(terms):
            candidates.update(self._index.postings(term))
        scored = [
            SearchResult(doc_id, self._bm25(terms, doc_id)) for doc_id in candidates
        ]
        scored.sort(key=lambda r: (-r.score, r.doc_id))
        return scored[:limit]

    def phrase_search(self, phrase: str, limit: int = 10) -> List[SearchResult]:
        """Exact-phrase search, scored by phrase frequency * idf."""
        self._m_queries["phrase"].inc()
        terms = tokenize_lower(phrase)
        if not terms:
            return []
        idf = sum(self._idf(term) for term in terms)
        if self._frozen is not None:
            rows, counts, __ = self._frozen.phrase_occurrences(terms)
            if not rows.size:
                return []
            return self._ranked_results(rows, counts * idf, limit)
        matches = self._index.phrase_postings(terms)
        scored = [
            SearchResult(doc_id, count * idf) for doc_id, count in matches.items()
        ]
        scored.sort(key=lambda r: (-r.score, r.doc_id))
        return scored[:limit]

    def phrase_result_count(self, phrase: str) -> int:
        """Feature 4: total number of pages matching the phrase query."""
        self._m_queries["phrase_count"].inc()
        terms = tokenize_lower(phrase)
        if not terms:
            return 0
        return self.index.phrase_document_count(terms)

    def result_count(self, query: str) -> int:
        """Total number of pages matching the free query (any term)."""
        self._m_queries["count"].inc()
        terms = tokenize_lower(query)
        if self._frozen is not None:
            frozen = self._frozen
            touched = np.zeros(frozen.document_count, dtype=bool)
            for term in set(terms):
                slot = frozen.slot(term)
                if slot is not None:
                    rows, __ = frozen.posting_slice(slot)
                    touched[rows] = True
            return int(touched.sum())
        candidates = set()
        for term in set(terms):
            candidates.update(self._index.postings(term))
        return len(candidates)

    @classmethod
    def from_corpus(cls, documents, k1: float = 1.2, b: float = 0.75) -> "SearchEngine":
        """Index an iterable of objects with ``doc_id`` and ``text``."""
        engine = cls(k1=k1, b=b)
        for document in documents:
            engine.add_document(document.doc_id, document.text)
        return engine
