"""The synthetic search engine.

Stands in for Yahoo! Search wherever the paper consumes it:

* phrase-query **result counts** — interestingness feature 4
  ("searchengine phrase": "we submit the concept to the search engine
  as a phrase query, and use the number of result pages returned");
* ranked **results with snippets** — the primary resource for mining
  relevant keywords (Section IV-B);
* free-text retrieval for the Prisma pseudo-relevance-feedback tool.

Scoring is BM25 (free queries) or summed phrase tf*idf (phrase
queries); both only use index statistics, exactly like a real engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.search.index import InvertedIndex
from repro.text.tokenizer import tokenize_lower


@dataclass(frozen=True)
class SearchResult:
    """One ranked result."""

    doc_id: int
    score: float


class SearchEngine:
    """BM25 search over tokenized documents, with phrase support."""

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self._index = InvertedIndex()
        self._tokens: Dict[int, List[str]] = {}

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def document_count(self) -> int:
        return self._index.document_count

    def add_document(self, doc_id: int, text: str) -> None:
        """Tokenize and index one document."""
        tokens = tokenize_lower(text)
        self._index.add_document(doc_id, tokens)
        self._tokens[doc_id] = tokens

    def tokens(self, doc_id: int) -> List[str]:
        """The indexed token sequence of a document."""
        return self._tokens[doc_id]

    # -- scoring ---------------------------------------------------------

    def _idf(self, term: str) -> float:
        df = self._index.document_frequency(term)
        n = self._index.document_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def _bm25(self, terms: Sequence[str], doc_id: int) -> float:
        avg_len = self._index.average_document_length or 1.0
        length_norm = 1 - self.b + self.b * self._index.doc_length(doc_id) / avg_len
        score = 0.0
        for term in set(terms):
            tf = self._index.term_frequency(term, doc_id)
            if tf == 0:
                continue
            score += self._idf(term) * tf * (self.k1 + 1) / (tf + self.k1 * length_norm)
        return score

    # -- queries ---------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> List[SearchResult]:
        """Free-text BM25 search."""
        terms = tokenize_lower(query)
        if not terms:
            return []
        candidates = set()
        for term in set(terms):
            candidates.update(self._index.postings(term))
        scored = [
            SearchResult(doc_id, self._bm25(terms, doc_id)) for doc_id in candidates
        ]
        scored.sort(key=lambda r: (-r.score, r.doc_id))
        return scored[:limit]

    def phrase_search(self, phrase: str, limit: int = 10) -> List[SearchResult]:
        """Exact-phrase search, scored by phrase frequency * idf."""
        terms = tokenize_lower(phrase)
        if not terms:
            return []
        matches = self._index.phrase_postings(terms)
        idf = sum(self._idf(term) for term in terms)
        scored = [
            SearchResult(doc_id, count * idf) for doc_id, count in matches.items()
        ]
        scored.sort(key=lambda r: (-r.score, r.doc_id))
        return scored[:limit]

    def phrase_result_count(self, phrase: str) -> int:
        """Feature 4: total number of pages matching the phrase query."""
        terms = tokenize_lower(phrase)
        if not terms:
            return 0
        return self._index.phrase_document_count(terms)

    def result_count(self, query: str) -> int:
        """Total number of pages matching the free query (any term)."""
        terms = tokenize_lower(query)
        candidates = set()
        for term in set(terms):
            candidates.update(self._index.postings(term))
        return len(candidates)

    @classmethod
    def from_corpus(cls, documents, k1: float = 1.2, b: float = 0.75) -> "SearchEngine":
        """Index an iterable of objects with ``doc_id`` and ``text``."""
        engine = cls(k1=k1, b=b)
        for document in documents:
            engine.add_document(document.doc_id, document.text)
        return engine
