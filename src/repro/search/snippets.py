"""Search-result snippet generation.

"These short text strings are constructed from the result pages by the
engine, and they usually provide a good summary of the target page"
(Section IV-B).  We produce query-biased snippets: a token window
centred on the first query match, which is how production engines build
them and is what gives the relevance miner topically focused text.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.search.engine import SearchEngine
from repro.text.tokenizer import tokenize_lower


def _first_match_position(tokens: Sequence[str], terms: Sequence[str]) -> Optional[int]:
    size = len(terms)
    if size == 0:
        return None
    for start in range(len(tokens) - size + 1):
        if list(tokens[start : start + size]) == list(terms):
            return start
    term_set = set(terms)
    for position, token in enumerate(tokens):
        if token in term_set:
            return position
    return None


def make_snippet(
    tokens: Sequence[str], query_terms: Sequence[str], window: int = 48
) -> str:
    """A ~*window*-token snippet centred on the first query match."""
    anchor = _first_match_position(tokens, query_terms)
    if anchor is None:
        anchor = 0
    half = window // 2
    start = max(0, anchor - half)
    end = min(len(tokens), start + window)
    start = max(0, end - window)
    return " ".join(tokens[start:end])


class SnippetService:
    """Phrase-search + snippet extraction, as the Yahoo! BOSS-style API.

    ``snippets_for_phrase`` mirrors the paper's usage: "We submit the
    concept to this API and use the snippets retrieved for the first
    hundred results."
    """

    def __init__(self, engine: SearchEngine, window: int = 48):
        self._engine = engine
        self._window = window

    def snippets_for_phrase(self, phrase: str, limit: int = 100) -> List[str]:
        """Snippets of the top *limit* phrase-query results."""
        terms = tokenize_lower(phrase)
        results = self._engine.phrase_search(phrase, limit=limit)
        return [
            make_snippet(self._engine.tokens(result.doc_id), terms, self._window)
            for result in results
        ]
