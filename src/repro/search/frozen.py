"""Frozen CSR inverted index: the immutable offline-build form.

The dict-of-dicts :class:`~repro.search.index.InvertedIndex` stays the
mutable *staging* form; once a corpus is fully indexed, the offline
builder freezes it into compressed-sparse-row numpy columns:

* ``terms``               sorted term table (lexicographic);
* ``term_offsets``        int64[T+1] — postings of term slot ``t`` live in
                          ``posting_docs[term_offsets[t]:term_offsets[t+1]]``;
* ``posting_docs``        uint32[P] — document *row* of each posting
                          (rows follow indexing order; ``doc_ids[row]``
                          maps back to the external id);
* ``position_offsets``    int64[P+1] — positions of posting ``p`` live in
                          ``positions[position_offsets[p]:position_offsets[p+1]]``;
* ``positions``           uint32[Q] — token offsets, ascending per posting.

Postings within a term are ordered by ascending document row and the
position runs of one term are contiguous, so phrase intersection and
BM25 scoring both reduce to flat array arithmetic.  Phrase matching
encodes every occurrence of term *i* as the stride key
``doc_row * stride + (position - i)`` — an occurrence of the full
phrase starting at ``s`` in document ``d`` appears as the key
``d * stride + s`` in *every* term's key set, so the match set is a
chain of ``np.intersect1d`` calls and per-document counts fall out of
``np.unique``.  All answers are integer-exact matches for the dict
implementation (golden-tested in tests/test_frozen_index.py).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_registry
from repro.search.index import InvertedIndex

_EMPTY_I64 = np.zeros(0, dtype=np.int64)


class FrozenInvertedIndex:
    """Read-only CSR snapshot of an :class:`InvertedIndex`."""

    __slots__ = (
        "terms",
        "term_offsets",
        "posting_docs",
        "position_offsets",
        "positions",
        "doc_ids",
        "doc_lengths",
        "tf_counts",
        "_slots",
        "_doc_rows",
        "_average_length",
        "_stride",
        "_m_phrase",
    )

    def __init__(
        self,
        terms: Sequence[str],
        term_offsets: np.ndarray,
        posting_docs: np.ndarray,
        position_offsets: np.ndarray,
        positions: np.ndarray,
        doc_ids: np.ndarray,
        doc_lengths: np.ndarray,
    ):
        self.terms: List[str] = list(terms)
        self.term_offsets = np.ascontiguousarray(term_offsets, dtype=np.int64)
        self.posting_docs = np.ascontiguousarray(posting_docs, dtype=np.uint32)
        self.position_offsets = np.ascontiguousarray(position_offsets, dtype=np.int64)
        self.positions = np.ascontiguousarray(positions, dtype=np.uint32)
        self.doc_ids = np.ascontiguousarray(doc_ids, dtype=np.int64)
        self.doc_lengths = np.ascontiguousarray(doc_lengths, dtype=np.int64)
        self.tf_counts = np.diff(self.position_offsets)
        self._slots: Dict[str, int] = {term: i for i, term in enumerate(self.terms)}
        self._doc_rows: Dict[int, int] = {
            int(doc_id): row for row, doc_id in enumerate(self.doc_ids.tolist())
        }
        # Same arithmetic as the dict index: python-int sum / count.
        count = len(self.doc_ids)
        self._average_length = (
            int(self.doc_lengths.sum()) / count if count else 0.0
        )
        # Phrase-key stride: strictly larger than any token position.
        self._stride = int(self.doc_lengths.max()) + 1 if count else 1
        self._m_phrase = get_registry().counter(
            "index_phrase_intersections_total",
            help="phrase-occurrence intersections on the frozen index",
        )

    # -- document statistics (dict-index API parity) ---------------------

    @property
    def document_count(self) -> int:
        return len(self.doc_ids)

    @property
    def average_document_length(self) -> float:
        return self._average_length

    def __contains__(self, term: str) -> bool:
        return term in self._slots

    def slot(self, term: str) -> Optional[int]:
        """Row of *term* in the sorted term table (None if unseen)."""
        return self._slots.get(term)

    def doc_row(self, doc_id: int) -> int:
        return self._doc_rows[doc_id]

    def doc_length(self, doc_id: int) -> int:
        return int(self.doc_lengths[self._doc_rows[doc_id]])

    def doc_items(self) -> List[Tuple[int, int]]:
        """(doc_id, length) pairs in indexing order."""
        return list(zip(self.doc_ids.tolist(), self.doc_lengths.tolist()))

    def document_frequency(self, term: str) -> int:
        slot = self._slots.get(term)
        if slot is None:
            return 0
        return int(self.term_offsets[slot + 1] - self.term_offsets[slot])

    def posting_slice(self, slot: int) -> Tuple[np.ndarray, np.ndarray]:
        """(doc rows, term frequencies) views for one term slot."""
        lo = self.term_offsets[slot]
        hi = self.term_offsets[slot + 1]
        return self.posting_docs[lo:hi], self.tf_counts[lo:hi]

    def term_frequency(self, term: str, doc_id: int) -> int:
        slot = self._slots.get(term)
        row = self._doc_rows.get(doc_id)
        if slot is None or row is None:
            return 0
        rows, tfs = self.posting_slice(slot)
        at = int(np.searchsorted(rows, row))
        if at < len(rows) and rows[at] == row:
            return int(tfs[at])
        return 0

    def postings(self, term: str) -> Mapping[int, List[int]]:
        """doc_id -> positions, rebuilt as fresh python containers."""
        slot = self._slots.get(term)
        if slot is None:
            return {}
        lo = int(self.term_offsets[slot])
        hi = int(self.term_offsets[slot + 1])
        doc_ids = self.doc_ids[self.posting_docs[lo:hi].astype(np.int64)].tolist()
        out: Dict[int, List[int]] = {}
        for at, doc_id in zip(range(lo, hi), doc_ids):
            p0 = int(self.position_offsets[at])
            p1 = int(self.position_offsets[at + 1])
            out[doc_id] = self.positions[p0:p1].tolist()
        return out

    # -- phrase machinery ------------------------------------------------

    def _occurrence_keys(self, slot: int, term_index: int) -> np.ndarray:
        """Stride keys ``doc_row * stride + (position - term_index)``."""
        lo = self.term_offsets[slot]
        hi = self.term_offsets[slot + 1]
        pos = self.positions[
            self.position_offsets[lo] : self.position_offsets[hi]
        ].astype(np.int64)
        docs = np.repeat(
            self.posting_docs[lo:hi].astype(np.int64), self.tf_counts[lo:hi]
        )
        starts = pos - term_index
        if term_index:
            valid = starts >= 0
            docs = docs[valid]
            starts = starts[valid]
        return docs * self._stride + starts

    def phrase_occurrences(
        self, terms: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(doc rows, occurrence counts, first start position) per doc.

        Documents appear in ascending row order; ``first start`` is the
        position of the earliest exact occurrence — exactly the anchor
        :func:`repro.search.snippets.make_snippet` would find.
        """
        self._m_phrase.inc()
        empty = (_EMPTY_I64, _EMPTY_I64, _EMPTY_I64)
        if not terms:
            return empty
        slots = [self._slots.get(term) for term in terms]
        if any(slot is None for slot in slots):
            return empty
        if len(terms) == 1:
            lo = self.term_offsets[slots[0]]
            hi = self.term_offsets[slots[0] + 1]
            rows = self.posting_docs[lo:hi].astype(np.int64)
            counts = self.tf_counts[lo:hi].astype(np.int64)
            firsts = self.positions[self.position_offsets[lo:hi]].astype(np.int64)
            return rows, counts, firsts
        key_sets = [
            self._occurrence_keys(slot, i) for i, slot in enumerate(slots)
        ]
        key_sets.sort(key=len)  # rarest term first keeps intersections small
        keys = key_sets[0]
        for other in key_sets[1:]:
            if not keys.size:
                return empty
            keys = np.intersect1d(keys, other, assume_unique=True)
        if not keys.size:
            return empty
        rows, first_at, counts = np.unique(
            keys // self._stride, return_index=True, return_counts=True
        )
        firsts = keys[first_at] - rows * self._stride
        return rows, counts, firsts

    def phrase_postings(self, terms: Sequence[str]) -> Dict[int, int]:
        """doc_id -> number of exact contiguous occurrences of *terms*."""
        rows, counts, __ = self.phrase_occurrences(terms)
        if not rows.size:
            return {}
        doc_ids = self.doc_ids[rows].tolist()
        return dict(zip(doc_ids, counts.tolist()))

    def phrase_document_count(self, terms: Sequence[str]) -> int:
        rows, __, __ = self.phrase_occurrences(terms)
        return int(rows.size)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_index(cls, index: InvertedIndex) -> "FrozenInvertedIndex":
        """Freeze a fully built dict index."""
        doc_items = index.doc_items()
        doc_ids = np.asarray([doc for doc, __ in doc_items], dtype=np.int64)
        doc_lengths = np.asarray([length for __, length in doc_items], dtype=np.int64)
        rows = {int(doc): row for row, doc in enumerate(doc_ids.tolist())}
        terms = sorted(index.terms())
        term_offsets = [0]
        posting_docs: List[int] = []
        position_offsets = [0]
        positions: List[int] = []
        for term in terms:
            for doc_id, plist in index.postings(term).items():
                posting_docs.append(rows[doc_id])
                positions.extend(plist)
                position_offsets.append(len(positions))
            term_offsets.append(len(posting_docs))
        return cls(
            terms=terms,
            term_offsets=np.asarray(term_offsets, dtype=np.int64),
            posting_docs=np.asarray(posting_docs, dtype=np.uint32),
            position_offsets=np.asarray(position_offsets, dtype=np.int64),
            positions=np.asarray(positions, dtype=np.uint32),
            doc_ids=doc_ids,
            doc_lengths=doc_lengths,
        )

    @classmethod
    def from_token_streams(
        cls,
        doc_ids: Sequence[int],
        id_arrays: Sequence[np.ndarray],
        vocab_terms: Sequence[str],
    ) -> "FrozenInvertedIndex":
        """Build the CSR columns directly from interned token streams.

        ``id_arrays[i]`` holds document i's tokens as indices into
        ``vocab_terms``.  Produces byte-identical columns to
        ``from_index(InvertedIndex.from_documents(...))`` without ever
        materialising the dict-of-dicts staging form: one stable sort of
        the flat (term-rank, doc-row, position) stream yields postings
        grouped by term and ordered by document row, with positions
        ascending.
        """
        vocab_size = len(vocab_terms)
        sorted_vids = sorted(range(vocab_size), key=vocab_terms.__getitem__)
        rank = np.empty(vocab_size, dtype=np.int64)
        rank[sorted_vids] = np.arange(vocab_size, dtype=np.int64)
        lengths = np.asarray([len(ids) for ids in id_arrays], dtype=np.int64)
        total = int(lengths.sum())
        if total == 0:
            empty_vocab = not vocab_size
            return cls(
                terms=[] if empty_vocab else [vocab_terms[v] for v in sorted_vids],
                term_offsets=np.zeros(vocab_size + 1, dtype=np.int64),
                posting_docs=np.zeros(0, dtype=np.uint32),
                position_offsets=np.zeros(1, dtype=np.int64),
                positions=np.zeros(0, dtype=np.uint32),
                doc_ids=np.asarray(doc_ids, dtype=np.int64),
                doc_lengths=lengths,
            )
        flat_ranks = np.concatenate(
            [rank[np.asarray(ids, dtype=np.int64)] for ids in id_arrays]
        )
        flat_rows = np.repeat(np.arange(len(id_arrays), dtype=np.int64), lengths)
        flat_positions = np.concatenate(
            [np.arange(n, dtype=np.int64) for n in lengths.tolist()]
        )
        order = np.argsort(flat_ranks, kind="stable")
        term_col = flat_ranks[order]
        doc_col = flat_rows[order]
        pos_col = flat_positions[order]
        boundary = np.empty(total, dtype=bool)
        boundary[0] = True
        boundary[1:] = (term_col[1:] != term_col[:-1]) | (doc_col[1:] != doc_col[:-1])
        posting_starts = np.flatnonzero(boundary)
        posting_terms = term_col[posting_starts]
        term_offsets = np.searchsorted(
            posting_terms, np.arange(vocab_size + 1, dtype=np.int64)
        ).astype(np.int64)
        return cls(
            terms=[vocab_terms[v] for v in sorted_vids],
            term_offsets=term_offsets,
            posting_docs=doc_col[posting_starts].astype(np.uint32),
            position_offsets=np.append(posting_starts, total).astype(np.int64),
            positions=pos_col.astype(np.uint32),
            doc_ids=np.asarray(doc_ids, dtype=np.int64),
            doc_lengths=lengths,
        )
