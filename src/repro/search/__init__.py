"""Search-engine substrate: index, engine, snippets, Prisma, suggestions."""

from repro.search.engine import SearchEngine, SearchResult
from repro.search.frozen import FrozenInvertedIndex
from repro.search.index import InvertedIndex
from repro.search.prisma import PrismaTool
from repro.search.snippets import SnippetService, make_snippet
from repro.search.suggestions import SuggestionService

__all__ = [
    "SearchEngine",
    "SearchResult",
    "InvertedIndex",
    "FrozenInvertedIndex",
    "PrismaTool",
    "SnippetService",
    "make_snippet",
    "SuggestionService",
]
