"""Positional inverted index.

Backs the synthetic search engine that stands in for Yahoo! Search: the
feature space needs phrase-query result counts (feature 4), and the
relevance miner needs ranked results with snippets, so the index stores
token positions to support exact phrase matching.
"""

from __future__ import annotations

from collections import defaultdict
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

_EMPTY_POSTINGS: Mapping[int, List[int]] = MappingProxyType({})


class InvertedIndex:
    """Term -> {doc_id -> [positions]} with document statistics."""

    def __init__(self):
        self._postings: Dict[str, Dict[int, List[int]]] = defaultdict(dict)
        self._doc_lengths: Dict[int, int] = {}

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def average_document_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    def add_document(self, doc_id: int, tokens: Sequence[str]) -> None:
        """Index one document's token sequence."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"doc_id {doc_id} already indexed")
        self._doc_lengths[doc_id] = len(tokens)
        for position, term in enumerate(tokens):
            self._postings[term].setdefault(doc_id, []).append(position)

    def doc_length(self, doc_id: int) -> int:
        return self._doc_lengths[doc_id]

    def doc_items(self) -> List[Tuple[int, int]]:
        """(doc_id, length) pairs in indexing order."""
        return list(self._doc_lengths.items())

    def terms(self) -> List[str]:
        """Every indexed term, in first-seen order."""
        return list(self._postings)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing *term*."""
        return len(self._postings.get(term, ()))

    def postings(self, term: str) -> Mapping[int, List[int]]:
        """doc_id -> sorted positions for *term* (empty mapping if unseen).

        The mapping is a read-only view of index internals; treat the
        position lists as read-only too.
        """
        found = self._postings.get(term)
        return MappingProxyType(found) if found is not None else _EMPTY_POSTINGS

    def term_frequency(self, term: str, doc_id: int) -> int:
        return len(self._postings.get(term, {}).get(doc_id, ()))

    def phrase_postings(self, terms: Sequence[str]) -> Dict[int, int]:
        """doc_id -> number of exact contiguous occurrences of *terms*.

        Positional intersection: start from the rarest term's postings
        and verify each candidate start offset.
        """
        if not terms:
            return {}
        if len(terms) == 1:
            return {
                doc_id: len(positions)
                for doc_id, positions in self.postings(terms[0]).items()
            }
        per_term = [self.postings(term) for term in terms]
        if any(not postings for postings in per_term):
            return {}
        # iterate docs containing the rarest term
        anchor = min(range(len(terms)), key=lambda i: len(per_term[i]))
        candidates = set(per_term[anchor])
        for postings in per_term:
            candidates &= set(postings)
            if not candidates:
                return {}
        matches: Dict[int, int] = {}
        for doc_id in candidates:
            first_positions = per_term[0][doc_id]
            later = [set(per_term[i][doc_id]) for i in range(1, len(terms))]
            count = sum(
                1
                for start in first_positions
                if all(start + offset + 1 in later[offset] for offset in range(len(later)))
            )
            if count:
                matches[doc_id] = count
        return matches

    def phrase_document_count(self, terms: Sequence[str]) -> int:
        """Number of documents containing the exact phrase."""
        return len(self.phrase_postings(terms))

    @classmethod
    def from_documents(
        cls, documents: Iterable[Tuple[int, Sequence[str]]]
    ) -> "InvertedIndex":
        index = cls()
        for doc_id, tokens in documents:
            index.add_document(doc_id, tokens)
        return index
