"""Prisma: the query-refinement / pseudo-relevance-feedback tool.

Per the paper (Section IV-B, citing Anick and Xu & Croft): "The feedback
terms are generated using a pseudo-relevance feedback approach by
considering the top 50 documents in a large collection, based on factors
such as count and position of the terms in the documents, document
rank, occurrence of query terms within the input phrase, etc.  When
Prisma is queried, it returns top twenty feedback concepts for the
submitted query" — a hard cap the paper itself identifies as the reason
Prisma-based relevance mining underperforms snippets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.search.engine import SearchEngine
from repro.text.stopwords import is_stopword
from repro.text.tokenizer import tokenize_lower


class PrismaTool:
    """Pseudo-relevance feedback over the synthetic engine."""

    def __init__(
        self,
        engine: SearchEngine,
        feedback_documents: int = 50,
        feedback_terms: int = 20,
    ):
        self._engine = engine
        self.feedback_documents = feedback_documents
        self.feedback_terms = feedback_terms

    def feedback(self, query: str) -> List[Tuple[str, float]]:
        """Top feedback terms with scores for *query*.

        Term score aggregates, over the top-ranked documents:
        term count, an early-position bonus, and a document-rank decay;
        query terms themselves are excluded.
        """
        query_terms = set(tokenize_lower(query))
        results = self._engine.search(query, limit=self.feedback_documents)
        scores: Dict[str, float] = defaultdict(float)
        for rank, result in enumerate(results):
            rank_weight = 1.0 / (1.0 + rank)
            tokens = self._engine.tokens(result.doc_id)
            length = max(1, len(tokens))
            for position, token in enumerate(tokens):
                if token in query_terms or is_stopword(token):
                    continue
                position_bonus = 1.0 + (1.0 - position / length) * 0.5
                scores[token] += rank_weight * position_bonus
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[: self.feedback_terms]
