"""repro — reproduction of "Contextual Ranking of Keywords Using Click Data"
(Irmak, von Brzeski, Kraft; ICDE 2009).

The package implements the full Contextual Shortcuts stack — entity
detection, concept-vector baseline, the interestingness/relevance
feature space, click-trained ranking SVM, and the production runtime —
together with a synthetic substrate (web corpus, query logs, search
engine, Wikipedia, editorial dictionaries, user click model) standing
in for the paper's proprietary Yahoo! resources.

Quickstart::

    from repro import Environment, EnvironmentConfig, WorldConfig

    env = Environment.build(EnvironmentConfig(world=WorldConfig(seed=7)))
    story = env.stories(1)[0]
    annotated = env.pipeline.process(story.text)
    for detection in annotated.by_concept_vector_score()[:5]:
        print(detection.phrase, detection.score)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.corpus import SyntheticWorld, WorldConfig
from repro.detection import (
    AnnotatedDocument,
    ConceptDetector,
    ConceptVectorScorer,
    Detection,
    NamedEntityDetector,
    PatternDetector,
    ShortcutsPipeline,
)
from repro.eval import (
    Environment,
    EnvironmentConfig,
    RankingExperiment,
    collect_dataset,
    train_combined_ranker,
)
from repro.ranking import ConceptRanker, FeatureAssembler, RankSVM

__version__ = "1.0.0"

__all__ = [
    "SyntheticWorld",
    "WorldConfig",
    "AnnotatedDocument",
    "ConceptDetector",
    "ConceptVectorScorer",
    "Detection",
    "NamedEntityDetector",
    "PatternDetector",
    "ShortcutsPipeline",
    "Environment",
    "EnvironmentConfig",
    "RankingExperiment",
    "collect_dataset",
    "train_combined_ranker",
    "ConceptRanker",
    "FeatureAssembler",
    "RankSVM",
    "__version__",
]
