"""Score explanations: exact per-feature decomposition of ranked scores.

The deployed ranking model is a linear RankSVM over standardized
features, so every decision score is an exact sum of per-feature terms
``w_j * (x_j - mean_j) / scale_j``.  :class:`ExplainableRanker` runs
the very same scoring path as :class:`~repro.ranking.model.ConceptRanker`
(same feature matrix, same decision function, same relevance
tie-break, same stable argsort) and additionally materializes one
:class:`RankExplanation` per ranked concept:

* a :class:`FeatureContribution` per model column — raw model-space
  value, standardized value, learned weight, and the additive
  contribution — with the Table I feature-group attribution
  (``query_logs`` / ``search_results`` / ``text_based`` / ``taxonomy``
  / ``other`` / ``relevance``);
* the relevance tie-break term (Section V-A.6), kept separate so
  ``decision_score + tie_break`` reproduces the detection's final
  score exactly;
* JSON serialization (``to_dict``) for traces and the ``/explain``
  endpoint of the telemetry server.

Exactness is part of the contract: the ranked order is identical to
the non-explaining path, and the contribution sum reproduces the
RankSVM decision score to float precision (tests enforce 1e-9).  The
RBF random-features kernel mixes every input into every component, so
explanation requests against an RBF model raise ``ValueError``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.detection.base import Detection
from repro.detection.pipeline import AnnotatedDocument
from repro.features.interestingness import FEATURE_GROUPS
from repro.ranking.baselines import tie_break_by_relevance
from repro.ranking.model import FeatureAssembler
from repro.ranking.ranksvm import RankSVM
from repro.text.tokenized import DocumentLike

__all__ = [
    "FeatureContribution",
    "RankExplanation",
    "ExplainableRanker",
    "feature_group_of",
]

_GROUP_BY_FEATURE: Dict[str, str] = {
    name: group for group, names in FEATURE_GROUPS.items() for name in names
}


def feature_group_of(name: str) -> str:
    """Table I group of one model column name.

    One-hot taxonomy columns are spelled ``type:<t>``; the appended
    relevance column is its own group (the paper treats contextual
    relevance as a separate signal from interestingness).
    """
    if name.startswith("type:"):
        return "taxonomy"
    if name == "relevance":
        return "relevance"
    return _GROUP_BY_FEATURE.get(name, "other")


@dataclass(frozen=True)
class FeatureContribution:
    """One model column's exact additive share of a decision score."""

    name: str
    group: str
    value: float  # model-space input (log1p'ed counts, one-hot, ...)
    standardized: float  # (value - train mean) / train scale
    weight: float  # learned RankSVM weight
    contribution: float  # standardized * weight

    def to_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "group": self.group,
            "value": self.value,
            "standardized": self.standardized,
            "weight": self.weight,
            "contribution": self.contribution,
        }


@dataclass
class RankExplanation:
    """Why one concept landed where it did in a ranked document.

    ``score`` is the detection's final score:
    ``decision_score + tie_break``, where ``decision_score`` is exactly
    the sum of ``contributions`` and ``tie_break`` is the epsilon-scaled
    relevance preference that only reorders ties.
    """

    phrase: str
    rank: int  # 0-based position in the ranked output
    score: float
    decision_score: float
    tie_break: float
    relevance: float  # raw (pre-log1p) relevance summation
    contributions: List[FeatureContribution]

    def contribution_sum(self) -> float:
        return float(sum(c.contribution for c in self.contributions))

    def group_contributions(self) -> Dict[str, float]:
        """Contribution totals folded to Table I feature groups."""
        totals: Dict[str, float] = {}
        for contribution in self.contributions:
            totals[contribution.group] = (
                totals.get(contribution.group, 0.0) + contribution.contribution
            )
        return totals

    def to_dict(self) -> Dict[str, object]:
        return {
            "phrase": self.phrase,
            "rank": self.rank,
            "score": self.score,
            "decision_score": self.decision_score,
            "tie_break": self.tie_break,
            "relevance": self.relevance,
            "groups": self.group_contributions(),
            "contributions": [c.to_dict() for c in self.contributions],
        }


class ExplainableRanker:
    """The ranking path with the decomposition attached.

    Scores are computed with the same operations (and therefore the
    same floats) as :class:`~repro.ranking.model.ConceptRanker`:
    context stems, one batched ``matrix_and_relevance`` lookup, the
    RankSVM decision function, the relevance tie-break, and a stable
    descending argsort.  ``explain=True`` can never reorder anything.
    """

    def __init__(
        self,
        assembler: FeatureAssembler,
        model: RankSVM,
        tie_break_with_relevance: bool = True,
    ):
        self._assembler = assembler
        self._model = model
        self.tie_break_with_relevance = tie_break_with_relevance
        self.feature_observer = None  # same tap as ConceptRanker's

    def explain_phrases(
        self, phrases: List[str], text: DocumentLike
    ) -> Tuple[np.ndarray, List[RankExplanation], float]:
        """(final scores, unordered explanations, feature seconds).

        Explanations come back in *phrases* order with ``rank=-1``;
        :meth:`explain_document` assigns ranks after sorting.
        """
        if not phrases:
            return np.zeros(0), [], 0.0
        started = time.perf_counter()
        context = self._assembler.context_of(text)
        features, relevance = self._assembler.matrix_and_relevance(
            phrases, context
        )
        feature_seconds = time.perf_counter() - started
        if self.feature_observer is not None:
            self.feature_observer(features)
        decision = self._model.decision_function(features)
        if self.tie_break_with_relevance:
            scores = tie_break_by_relevance(decision, relevance)
        else:
            scores = decision
        contributions = self._model.feature_contributions(features)
        names = self._assembler.feature_names()
        if len(names) != features.shape[1]:  # pragma: no cover - config bug
            raise ValueError(
                f"feature name count {len(names)} != matrix width "
                f"{features.shape[1]}"
            )
        groups = [feature_group_of(name) for name in names]
        weights = self._model.weights_
        standardized = self._model.standardize(features)
        explanations = [
            RankExplanation(
                phrase=phrases[row],
                rank=-1,
                score=float(scores[row]),
                decision_score=float(decision[row]),
                tie_break=float(scores[row] - decision[row]),
                relevance=float(relevance[row]),
                contributions=[
                    FeatureContribution(
                        name=names[column],
                        group=groups[column],
                        value=float(features[row, column]),
                        standardized=float(standardized[row, column]),
                        weight=float(weights[column]),
                        contribution=float(contributions[row, column]),
                    )
                    for column in range(features.shape[1])
                ],
            )
            for row in range(len(phrases))
        ]
        return scores, explanations, feature_seconds

    def explain_document_timed(
        self, annotated: AnnotatedDocument
    ) -> Tuple[List[Detection], List[RankExplanation], float]:
        """``rank_document_timed`` plus one explanation per detection.

        The returned explanations align with the ranked detections
        (``explanations[i]`` explains ``ranked[i]``, ``rank == i``).
        """
        rankable = annotated.rankable()
        if not rankable:
            return [], [], 0.0
        phrases = [d.phrase for d in rankable]
        tokens = getattr(annotated, "tokens", None)
        source: DocumentLike = tokens if tokens is not None else annotated.text
        scores, explanations, feature_seconds = self.explain_phrases(
            phrases, source
        )
        order = np.argsort(-scores, kind="stable")
        ranked: List[Detection] = []
        ordered: List[RankExplanation] = []
        for rank, index in enumerate(order):
            index = int(index)
            ranked.append(rankable[index].with_score(float(scores[index])))
            explanation = explanations[index]
            explanation.rank = rank
            ordered.append(explanation)
        return ranked, ordered, feature_seconds

    def explain_document(
        self, annotated: AnnotatedDocument, top: Optional[int] = None
    ) -> Tuple[List[Detection], List[RankExplanation]]:
        ranked, explanations, __ = self.explain_document_timed(annotated)
        if top is not None:
            ranked = ranked[:top]
            explanations = explanations[:top]
        return ranked, explanations
