"""Continuous profiling: sampling stack profiler + heap/GC telemetry.

Three independent instruments, all stdlib-only and cheap enough to run
under production traffic:

* :class:`StackSampler` — a daemon thread that walks
  ``sys._current_frames()`` at a configurable rate (default 97 hz, a
  prime so the cadence cannot alias with common loop periods), interns
  each code frame once, and folds the observed stacks into a call
  tree.  Samples are attributed per thread *and* per stage: the tracer
  (:mod:`repro.obs.trace`) publishes a thread→stage map while a
  sampler is running, so the CPU breakdown joins directly against the
  ``span_seconds{stage=...}`` histograms from PR 4 — the same stage
  names, now with per-frame attribution behind them.  Exports: the
  collapsed-stack text format (``a;b;c 42`` — pipe straight into
  ``flamegraph.pl``), a JSON call tree, and top-N stacks.

* :class:`GcMonitor` — hooks ``gc.callbacks`` and turns collector runs
  into registry telemetry: ``gc_pause_seconds`` (histogram),
  ``gc_collections_total{generation=...}``, collected/uncollectable
  counters, plus an on-demand :meth:`GcMonitor.snapshot` for
  ``GET /debug/gc``.

* :class:`HeapProfiler` — tracemalloc start/stop with net-allocation
  attribution keyed by stage (:meth:`HeapProfiler.stage` — the offline
  builder brackets every build stage with it), labeled snapshots with
  top-allocation diffs, and ``heap_current_bytes``/``heap_peak_bytes``
  gauges.

:func:`resident_bytes` and :func:`record_resident_bytes` complete the
memory picture for the *frozen* side: they walk an object graph for
numpy arrays / byte buffers and fold the totals into
``resident_bytes{component=...}`` gauges (the serving stores' arenas
and decode caches — see ``RankerService.observe_resident_bytes``).

The sampler's overhead contract is enforced by
``benchmarks/bench_profile.py``: ≤ 2% throughput cost at 97 hz on the
automaton hot path, ranked output byte-identical.
"""

from __future__ import annotations

import gc
import sys
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.trace import active_stages, set_stage_tracking

__all__ = [
    "GcMonitor",
    "HeapProfiler",
    "StackSampler",
    "active_heap_profiler",
    "heap_stage",
    "record_resident_bytes",
    "resident_bytes",
]

DEFAULT_HZ = 97  # prime: never phase-locks with ms-aligned loop periods

# Samples that hit a thread no span/stage has claimed.
UNTRACKED_STAGE = "untracked"

# GC pauses are short; reuse the latency buckets (10 us .. 10 s).
_GC_PAUSE_BUCKETS = DEFAULT_LATENCY_BUCKETS


def _default_registry() -> MetricsRegistry:
    from repro.obs import get_registry

    return get_registry()


# ---------------------------------------------------------------------------
# sampling stack profiler
# ---------------------------------------------------------------------------


def _frame_label(code) -> str:
    """``func (dir/file.py:firstlineno)`` — short, stable, ';'-free."""
    filename = code.co_filename.replace("\\", "/")
    parts = filename.rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{code.co_name} ({short}:{code.co_firstlineno})".replace(";", ",")


class StackSampler:
    """Low-overhead sampling profiler over ``sys._current_frames()``.

    One daemon thread wakes every ``1/hz`` seconds, snapshots every
    thread's current frame stack, and folds each stack (root-first) into
    an interned tuple of frame ids — the walk allocates nothing per
    frame beyond the first sighting of a code object.  All mutation
    happens on the sampler thread; exports take the same lock the
    sampler holds per tick, so they see consistent counts while it
    runs.

    *track_stages* joins samples against the tracer's thread→stage map
    (enabled for the duration of the run, restored on stop); stage
    sample counts are also folded into the *registry* as
    ``profile_samples_total{stage=...}`` so the CPU breakdown lands
    next to the ``span_seconds`` histograms it explains.

    Use as a context manager (``with StackSampler() as sampler:``) or
    via explicit :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        registry: Optional[MetricsRegistry] = None,
        track_stages: bool = True,
        max_stack_depth: int = 256,
    ):
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = float(hz)
        self.max_stack_depth = int(max_stack_depth)
        self._track_stages = bool(track_stages)
        self._registry = (
            registry if registry is not None else _default_registry()
        )
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._previous_tracking: Optional[bool] = None
        # frame interning: code object -> id, id -> rendered label
        self._frame_ids: Dict[object, int] = {}
        self._frame_labels: List[str] = []
        # (stage, root-first frame-id tuple) -> sample count
        self._counts: Dict[Tuple[str, Tuple[int, ...]], int] = {}
        self._thread_names: Dict[int, str] = {}  # ident -> name cache
        self._thread_counts: Dict[str, int] = {}
        self._stage_counts: Dict[str, int] = {}
        self.sample_ticks = 0  # sampler wake-ups
        self.sample_count = 0  # thread stacks folded
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._m_ticks = self._registry.counter(
            "profile_sample_ticks_total", help="stack-sampler wake-ups"
        )
        self._m_stage_samples: Dict[str, object] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        if self._track_stages:
            self._previous_tracking = set_stage_tracking(True)
        self._stop_event.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        if self._thread is None:
            return self
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.stopped_at = time.perf_counter()
        if self._track_stages and self._previous_tracking is not None:
            set_stage_tracking(self._previous_tracking)
            self._previous_tracking = None
        return self

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def duration_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        end = (
            self.stopped_at
            if self.stopped_at is not None
            else time.perf_counter()
        )
        return end - self.started_at

    # -- the sampling loop -------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        next_tick = time.perf_counter() + interval
        # Event.wait gives both the cadence and prompt shutdown; the
        # absolute-deadline arithmetic keeps the average rate at hz even
        # when one tick runs long.
        while not self._stop_event.wait(
            max(0.0, next_tick - time.perf_counter())
        ):
            next_tick += interval
            self._sample_once(own_ident)
            behind = time.perf_counter() - next_tick
            if behind > interval:  # fell behind: drop missed ticks
                next_tick += interval * int(behind / interval)

    def _sample_once(self, own_ident: int) -> None:
        stages = active_stages() if self._track_stages else {}
        frames = sys._current_frames()
        # threading.enumerate() walks a lock-guarded list and allocates;
        # at ~100 hz that is real overhead, so names are cached by ident
        # and the walk only happens when an unseen thread appears
        names = self._thread_names
        if any(ident not in names for ident in frames):
            for thread in threading.enumerate():
                if thread.ident is not None:
                    names[thread.ident] = thread.name
        with self._lock:
            self.sample_ticks += 1
            self._m_ticks.inc()
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                stack = self._fold(frame)
                if not stack:
                    continue
                stage = stages.get(ident, UNTRACKED_STAGE)
                key = (stage, stack)
                self._counts[key] = self._counts.get(key, 0) + 1
                name = names.get(ident, f"thread-{ident}")
                self._thread_counts[name] = (
                    self._thread_counts.get(name, 0) + 1
                )
                self._stage_counts[stage] = (
                    self._stage_counts.get(stage, 0) + 1
                )
                counter = self._m_stage_samples.get(stage)
                if counter is None:
                    counter = self._registry.counter(
                        "profile_samples_total",
                        help="CPU samples by active tracer stage",
                        stage=stage,
                    )
                    self._m_stage_samples[stage] = counter
                counter.inc()
                self.sample_count += 1

    def _fold(self, frame) -> Tuple[int, ...]:
        """Intern one thread's stack, root-first."""
        ids: List[int] = []
        depth = 0
        frame_ids = self._frame_ids
        while frame is not None and depth < self.max_stack_depth:
            code = frame.f_code
            frame_id = frame_ids.get(code)
            if frame_id is None:
                frame_id = len(self._frame_labels)
                self._frame_labels.append(_frame_label(code))
                frame_ids[code] = frame_id
            ids.append(frame_id)
            frame = frame.f_back
            depth += 1
        ids.reverse()
        return tuple(ids)

    # -- exports -----------------------------------------------------------

    def _snapshot_counts(
        self, stage: Optional[str]
    ) -> Dict[Tuple[int, ...], int]:
        """Folded counts (optionally one stage's), under the lock."""
        with self._lock:
            items = list(self._counts.items())
        merged: Dict[Tuple[int, ...], int] = {}
        for (sample_stage, stack), count in items:
            if stage is not None and sample_stage != stage:
                continue
            merged[stack] = merged.get(stack, 0) + count
        return merged

    def collapsed(self, stage: Optional[str] = None) -> str:
        """flamegraph.pl collapsed-stack text: ``frame;frame;... count``.

        Lines are sorted by count (desc) then stack (asc), so the
        output is deterministic for a given set of samples.  *stage*
        restricts to samples attributed to that tracer stage.
        """
        labels = self._frame_labels
        rows = [
            (";".join(labels[fid] for fid in stack), count)
            for stack, count in self._snapshot_counts(stage).items()
        ]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return "\n".join(f"{stack} {count}" for stack, count in rows) + (
            "\n" if rows else ""
        )

    def top_stacks(
        self, limit: int = 10, stage: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """The *limit* hottest whole stacks, as JSON-ready dicts."""
        lines = self.collapsed(stage).splitlines()[: max(0, int(limit))]
        out = []
        for line in lines:
            stack, __, count = line.rpartition(" ")
            out.append({"stack": stack, "samples": int(count)})
        return out

    def top_functions(self, limit: int = 10) -> List[Dict[str, object]]:
        """Hottest leaf frames (self samples), JSON-ready."""
        leaf_counts: Dict[int, int] = {}
        for stack, count in self._snapshot_counts(None).items():
            leaf_counts[stack[-1]] = leaf_counts.get(stack[-1], 0) + count
        rows = sorted(
            leaf_counts.items(),
            key=lambda item: (-item[1], self._frame_labels[item[0]]),
        )
        return [
            {"function": self._frame_labels[fid], "self_samples": count}
            for fid, count in rows[: max(0, int(limit))]
        ]

    def call_tree(self) -> Dict[str, object]:
        """The folded samples as one JSON call tree.

        Every node: ``{"name", "value" (total samples through the
        node), "self" (samples with the node on top), "children"}`` —
        children sorted by value desc, name asc (deterministic).
        """
        root = {"name": "root", "value": 0, "self": 0, "children": {}}
        labels = self._frame_labels
        for stack, count in self._snapshot_counts(None).items():
            root["value"] += count
            node = root
            for fid in stack:
                name = labels[fid]
                child = node["children"].get(name)
                if child is None:
                    child = {
                        "name": name, "value": 0, "self": 0, "children": {}
                    }
                    node["children"][name] = child
                child["value"] += count
                node = child
            node["self"] += count

        def _finalize(node):
            children = sorted(
                node["children"].values(),
                key=lambda child: (-child["value"], child["name"]),
            )
            node["children"] = [_finalize(child) for child in children]
            return node

        return _finalize(root)

    def stage_samples(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stage_counts)

    def thread_samples(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._thread_counts)

    def stats(self) -> Dict[str, object]:
        """One JSON-ready summary block (the /debug/profile envelope)."""
        return {
            "hz": self.hz,
            "duration_seconds": round(self.duration_seconds, 6),
            "sample_ticks": self.sample_ticks,
            "samples": self.sample_count,
            "distinct_stacks": len(self._snapshot_counts(None)),
            "stages": self.stage_samples(),
            "threads": self.thread_samples(),
        }

    def write_collapsed(self, path, stage: Optional[str] = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed(stage))


# ---------------------------------------------------------------------------
# GC telemetry
# ---------------------------------------------------------------------------


class GcMonitor:
    """``gc.callbacks`` → pause histogram + per-generation counters.

    CPython invokes the callbacks synchronously around every collector
    run on whichever thread triggered it, so pairing the ``start`` and
    ``stop`` phases per thread ident yields exact pause durations.
    Registry families: ``gc_pause_seconds`` (histogram),
    ``gc_collections_total{generation}``, ``gc_collected_objects_total``
    and ``gc_uncollectable_objects_total``.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        registry = registry if registry is not None else _default_registry()
        self._m_pauses = registry.histogram(
            "gc_pause_seconds",
            help="stop-the-world GC pause durations",
            buckets=_GC_PAUSE_BUCKETS,
        )
        self._m_collections = {
            generation: registry.counter(
                "gc_collections_total",
                help="collector runs by generation",
                generation=generation,
            )
            for generation in (0, 1, 2)
        }
        self._m_collected = registry.counter(
            "gc_collected_objects_total", help="objects freed by the GC"
        )
        self._m_uncollectable = registry.counter(
            "gc_uncollectable_objects_total",
            help="objects the GC found uncollectable",
        )
        self._starts: Dict[int, float] = {}
        self._installed = False
        self.pause_count = 0
        self.total_pause_seconds = 0.0
        self.max_pause_seconds = 0.0

    def start(self) -> "GcMonitor":
        if not self._installed:
            gc.callbacks.append(self._callback)
            self._installed = True
        return self

    def stop(self) -> "GcMonitor":
        if self._installed:
            try:
                gc.callbacks.remove(self._callback)
            except ValueError:  # someone cleared the list underneath us
                pass
            self._installed = False
        return self

    def __enter__(self) -> "GcMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _callback(self, phase: str, info: Dict[str, int]) -> None:
        ident = threading.get_ident()
        if phase == "start":
            self._starts[ident] = time.perf_counter()
            return
        started = self._starts.pop(ident, None)
        if started is None:  # monitor attached mid-collection
            return
        seconds = time.perf_counter() - started
        self._m_pauses.observe(seconds)
        counter = self._m_collections.get(info.get("generation"))
        if counter is not None:
            counter.inc()
        collected = info.get("collected", 0)
        if collected:
            self._m_collected.inc(collected)
        uncollectable = info.get("uncollectable", 0)
        if uncollectable:
            self._m_uncollectable.inc(uncollectable)
        self.pause_count += 1
        self.total_pause_seconds += seconds
        if seconds > self.max_pause_seconds:
            self.max_pause_seconds = seconds

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time GC state for ``GET /debug/gc`` (JSON-ready)."""
        return {
            "enabled": gc.isenabled(),
            "monitoring": self._installed,
            "counts": list(gc.get_count()),
            "thresholds": list(gc.get_threshold()),
            "per_generation": gc.get_stats(),
            "tracked_objects": len(gc.get_objects()),
            "pauses": {
                "count": self.pause_count,
                "total_seconds": round(self.total_pause_seconds, 9),
                "max_seconds": round(self.max_pause_seconds, 9),
            },
        }


# ---------------------------------------------------------------------------
# heap telemetry (tracemalloc)
# ---------------------------------------------------------------------------

_ACTIVE_HEAP_LOCK = threading.Lock()
_ACTIVE_HEAP: Optional["HeapProfiler"] = None


def active_heap_profiler() -> Optional["HeapProfiler"]:
    """The process's running :class:`HeapProfiler`, if any."""
    return _ACTIVE_HEAP


@contextmanager
def heap_stage(stage: str):
    """Attribute a block's net allocations to *stage* — no-op when no
    :class:`HeapProfiler` is active, so permanent instrumentation
    (the offline builder brackets every stage with this) costs one
    global read on the common path.
    """
    profiler = _ACTIVE_HEAP
    if profiler is None:
        yield None
        return
    with profiler.stage(stage) as measurement:
        yield measurement


class HeapProfiler:
    """tracemalloc telemetry: stage attribution, snapshots, gauges.

    ``start()`` begins tracing (unless something already did) and
    registers the instance as the process-wide active profiler so
    :func:`heap_stage` blocks — the offline builder's stage clock, the
    serving path when wired — attribute their net allocations to it.
    Per stage the profiler keeps net bytes and peak-traced bytes and
    folds them into ``heap_stage_net_bytes_total{stage}`` counters plus
    ``heap_current_bytes``/``heap_peak_bytes`` gauges.

    Labeled :meth:`snapshot` calls keep full tracemalloc snapshots so
    :meth:`diff_top` can report the top allocation-site deltas between
    any two labels (the ``/debug/heap`` drill-down).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        frames: int = 8,
    ):
        self.frames = int(frames)
        registry = registry if registry is not None else _default_registry()
        self._registry = registry
        self._m_current = registry.gauge(
            "heap_current_bytes", help="tracemalloc current traced bytes"
        )
        self._m_peak = registry.gauge(
            "heap_peak_bytes", help="tracemalloc peak traced bytes"
        )
        self._m_stage_net: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._snapshots: Dict[str, tracemalloc.Snapshot] = {}
        self.stage_bytes: Dict[str, int] = {}
        self.stage_peaks: Dict[str, int] = {}
        self._owns_tracing = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "HeapProfiler":
        global _ACTIVE_HEAP
        if self._started:
            return self
        if not tracemalloc.is_tracing():
            tracemalloc.start(self.frames)
            self._owns_tracing = True
        with _ACTIVE_HEAP_LOCK:
            _ACTIVE_HEAP = self
        self._started = True
        return self

    def stop(self) -> "HeapProfiler":
        global _ACTIVE_HEAP
        if not self._started:
            return self
        with _ACTIVE_HEAP_LOCK:
            if _ACTIVE_HEAP is self:
                _ACTIVE_HEAP = None
        if self._owns_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracing = False
        self._started = False
        return self

    def __enter__(self) -> "HeapProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- stage attribution -------------------------------------------------

    @contextmanager
    def stage(self, stage: str):
        """Measure a block's net traced allocation under *stage*."""
        if not tracemalloc.is_tracing():
            yield None
            return
        before, __ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        measurement: Dict[str, int] = {"stage": stage}
        try:
            yield measurement
        finally:
            current, peak = tracemalloc.get_traced_memory()
            net = current - before
            measurement["net_bytes"] = net
            measurement["peak_bytes"] = peak
            with self._lock:
                self.stage_bytes[stage] = (
                    self.stage_bytes.get(stage, 0) + net
                )
                if peak > self.stage_peaks.get(stage, 0):
                    self.stage_peaks[stage] = peak
                counter = self._m_stage_net.get(stage)
                if counter is None:
                    counter = self._registry.counter(
                        "heap_stage_net_bytes_total",
                        help="net traced bytes allocated per stage",
                        stage=stage,
                    )
                    self._m_stage_net[stage] = counter
            counter.inc(net)
            self._m_current.set(current)
            self._m_peak.set(peak)

    # -- snapshots & reporting ---------------------------------------------

    def snapshot(self, label: str) -> Dict[str, int]:
        """Keep a full snapshot under *label*; returns current/peak."""
        snapshot = tracemalloc.take_snapshot()
        with self._lock:
            self._snapshots[label] = snapshot
        current, peak = tracemalloc.get_traced_memory()
        self._m_current.set(current)
        self._m_peak.set(peak)
        return {"current_bytes": current, "peak_bytes": peak}

    def diff_top(
        self, label_before: str, label_after: str, limit: int = 15
    ) -> List[Dict[str, object]]:
        """Top allocation-site deltas between two labeled snapshots."""
        with self._lock:
            before = self._snapshots.get(label_before)
            after = self._snapshots.get(label_after)
        if before is None or after is None:
            missing = label_before if before is None else label_after
            raise KeyError(f"no heap snapshot labeled {missing!r}")
        stats = after.compare_to(before, "lineno")
        return [
            {
                "site": str(stat.traceback),
                "size_diff_bytes": stat.size_diff,
                "size_bytes": stat.size,
                "count_diff": stat.count_diff,
            }
            for stat in stats[: max(0, int(limit))]
        ]

    @staticmethod
    def top_allocations(limit: int = 15) -> List[Dict[str, object]]:
        """Top live allocation sites right now (requires tracing on)."""
        if not tracemalloc.is_tracing():
            return []
        snapshot = tracemalloc.take_snapshot()
        return [
            {
                "site": str(stat.traceback),
                "size_bytes": stat.size,
                "count": stat.count,
            }
            for stat in snapshot.statistics("lineno")[: max(0, int(limit))]
        ]

    def stats(self) -> Dict[str, object]:
        """JSON-ready heap state (the /debug/heap envelope)."""
        tracing = tracemalloc.is_tracing()
        current, peak = (
            tracemalloc.get_traced_memory() if tracing else (0, 0)
        )
        with self._lock:
            stage_bytes = dict(self.stage_bytes)
            stage_peaks = dict(self.stage_peaks)
        return {
            "tracing": tracing,
            "current_bytes": current,
            "peak_bytes": peak,
            "stage_net_bytes": stage_bytes,
            "stage_peak_bytes": stage_peaks,
        }


# ---------------------------------------------------------------------------
# resident-byte accounting for the frozen stores
# ---------------------------------------------------------------------------

_LEAF_BUFFER_TYPES = (bytes, bytearray, memoryview)


def resident_bytes(obj, max_depth: int = 4) -> int:
    """Bytes held in numpy arrays / byte buffers reachable from *obj*.

    A bounded, cycle-safe walk over ``__dict__``/``__slots__`` and the
    builtin containers; every distinct ``ndarray``/``bytes`` buffer is
    counted once.  This deliberately measures the *payload* (the arena
    columns, decode-cache entries, packed sections) and not python
    object overhead — the number a capacity plan actually needs.
    """
    import numpy as np

    seen: set = set()
    counted: set = set()
    total = 0

    def walk(value, depth: int) -> None:
        nonlocal total
        if value is None or depth > max_depth:
            return
        marker = id(value)
        if marker in seen:
            return
        seen.add(marker)
        if isinstance(value, np.ndarray):
            base = value.base if value.base is not None else value
            if id(base) not in counted:
                counted.add(id(base))
                total += int(base.nbytes)
            return
        if isinstance(value, _LEAF_BUFFER_TYPES):
            if marker not in counted:
                counted.add(marker)
                total += len(value)
            return
        if isinstance(value, (str, int, float, bool, complex)):
            return
        if isinstance(value, dict):
            for child in value.values():
                walk(child, depth + 1)
            return
        if isinstance(value, (list, tuple, set, frozenset)):
            for child in value:
                walk(child, depth + 1)
            return
        child_dict = getattr(value, "__dict__", None)
        if isinstance(child_dict, dict):
            for child in child_dict.values():
                walk(child, depth + 1)
        for slot_name in getattr(type(value), "__slots__", ()):
            child = getattr(value, slot_name, None)
            if child is not None:
                walk(child, depth + 1)

    walk(obj, 0)
    return total


def record_resident_bytes(
    components: Dict[str, object],
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, int]:
    """Measure each component and set ``resident_bytes{component=...}``.

    Returns the measured {component: bytes} map (also JSON-ready for
    the ``/debug/heap`` response).
    """
    registry = registry if registry is not None else _default_registry()
    measured: Dict[str, int] = {}
    for name, component in components.items():
        size = resident_bytes(component)
        measured[name] = size
        registry.gauge(
            "resident_bytes",
            help="payload bytes resident per serving component",
            component=name,
        ).set(size)
    return measured
