"""Lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.

The serving hot path cannot afford a lock (or even a dict mutation)
per event, so every counter/histogram keeps one small float64 numpy
cell array *per writing thread*.  A thread's first event allocates its
shard under the registry lock; after that, recording an event is ~one
numpy array increment with no locking at all.  Readers merge the shards
on demand (``value`` / ``snapshot``), which is where exactness comes
from: no two threads ever read-modify-write the same cell, so totals
are exact under arbitrary concurrency — a single shared cell would
lose updates whenever two threads interleave inside ``x += 1``.

Metric families are addressed by name plus optional label key/values
(``registry.counter("search_queries_total", kind="phrase")``); the
same (name, labels) pair always returns the same metric object, so
instrumented code fetches its metrics once at construction and holds
them.  A disabled registry hands out shared no-op metrics instead, so
instrumentation sites never need an ``if enabled`` branch.

Exposition: :meth:`MetricsRegistry.snapshot` returns a plain nested
dict (JSON-ready) and :meth:`MetricsRegistry.render_prometheus`
renders the Prometheus text format (histograms as cumulative ``le``
buckets).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "escape_label_value",
    "render_snapshot",
    "unescape_label_value",
]

# Prometheus-style inclusive upper bounds (an implicit +Inf bucket is
# always appended).  Latencies in seconds, 10 us .. 10 s.
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
# Batch/cardinality sizes (documents per batch, phrases per lookup...).
DEFAULT_SIZE_BUCKETS = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


class _Sharded:
    """A per-thread family of float64 cell arrays, merged on read."""

    __slots__ = ("_width", "_lock", "_local", "_shards")

    def __init__(self, width: int, lock: threading.Lock):
        self._width = width
        self._lock = lock
        self._local = threading.local()
        self._shards: List[np.ndarray] = []

    def cells(self) -> np.ndarray:
        """The calling thread's cell array (allocated on first use)."""
        cells = getattr(self._local, "cells", None)
        if cells is None:
            cells = np.zeros(self._width)
            with self._lock:
                self._shards.append(cells)
            self._local.cells = cells
        return cells

    def merged(self) -> np.ndarray:
        with self._lock:
            if not self._shards:
                return np.zeros(self._width)
            # np.add over the stacked shards: one pass, exact for counts
            return np.sum(np.stack(self._shards), axis=0)

    def zero(self) -> None:
        with self._lock:
            for shard in self._shards:
                shard[:] = 0.0

    def set_total(self, values: np.ndarray) -> None:
        """Zero every shard and write *values* into the caller's one.

        Only meaningful when a single thread owns the metric (the
        legacy :class:`~repro.runtime.framework.TimingStats` view);
        concurrent writers racing a ``set_total`` may be dropped.
        """
        cells = self.cells()
        with self._lock:
            for shard in self._shards:
                shard[:] = 0.0
            cells[:] = values


class Counter:
    """Monotonic accumulator (float increments allowed)."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "_cells")

    def __init__(self, name: str, labels: LabelItems, help: str,
                 lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.help = help
        self._cells = _Sharded(1, lock)

    def inc(self, amount: float = 1.0) -> None:
        self._cells.cells()[0] += amount

    @property
    def value(self) -> float:
        return float(self._cells.merged()[0])

    def _set_total(self, value: float) -> None:
        self._cells.set_total(np.asarray([float(value)]))

    def _reset(self) -> None:
        self._cells.zero()

    def _series(self) -> Dict[str, object]:
        return {"labels": dict(self.labels), "value": self.value}


class Gauge:
    """Last-written value (low-frequency: sizes, capacities, configs)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems, help: str,
                 lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self.set(0.0)

    def _series(self) -> Dict[str, object]:
        return {"labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket distribution; two array increments per observation.

    Cell layout per shard: one non-cumulative count per bucket bound,
    one overflow (+Inf) count, and the running value sum — observing is
    a bisect plus two ``+=`` on the thread's own array.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "bounds", "_cells")

    def __init__(self, name: str, labels: LabelItems, help: str,
                 lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be increasing and non-empty")
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = bounds
        self._cells = _Sharded(len(bounds) + 2, lock)

    def observe(self, value: float) -> None:
        cells = self._cells.cells()
        cells[bisect_left(self.bounds, value)] += 1.0
        cells[-1] += value

    @property
    def count(self) -> int:
        return int(self._cells.merged()[:-1].sum())

    @property
    def sum(self) -> float:
        return float(self._cells.merged()[-1])

    def bucket_counts(self) -> List[int]:
        """Non-cumulative per-bucket counts (+Inf overflow last)."""
        return [int(c) for c in self._cells.merged()[:-1]]

    def cumulative(self) -> List[Tuple[str, int]]:
        """Prometheus-style (le, cumulative count) pairs, +Inf last."""
        merged = self._cells.merged()[:-1]
        running = np.cumsum(merged)
        pairs = [
            (_format_value(bound), int(total))
            for bound, total in zip(self.bounds, running[:-1])
        ]
        pairs.append(("+Inf", int(running[-1])))
        return pairs

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile (0 <= q <= 1).

        An empty histogram has no quantiles: the answer is ``nan``
        ("no data"), never 0.0 — a zero reads as "zero latency" on a
        dashboard, which is the opposite of "we have seen nothing".
        """
        counts = self._cells.merged()[:-1]
        total = counts.sum()
        if total <= 0:
            return float("nan")
        target = q * total
        running = 0.0
        for index, count in enumerate(counts.tolist()):
            running += count
            # `running > 0` keeps q=0.0 from answering with an empty
            # leading bucket's bound — the minimum observed value can
            # only live in the first *populated* bucket.
            if running >= target and running > 0:
                return self.bounds[index] if index < len(self.bounds) else float("inf")
        return float("inf")

    def _reset(self) -> None:
        self._cells.zero()

    def _series(self) -> Dict[str, object]:
        return {
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "buckets": [[le, count] for le, count in self.cumulative()],
        }


class NullCounter:
    """No-op stand-in handed out by a disabled registry."""

    kind = "counter"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def _set_total(self, value: float) -> None:
        pass

    def _reset(self) -> None:
        pass


class NullGauge:
    kind = "gauge"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float = 1.0) -> None:
        pass

    def _reset(self) -> None:
        pass


class NullHistogram:
    kind = "histogram"
    count = 0
    sum = 0.0
    bounds = ()

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> List[int]:
        return []

    def cumulative(self) -> List[Tuple[str, int]]:
        return []

    def quantile(self, q: float) -> float:
        return float("nan")  # a null histogram never has data

    def _reset(self) -> None:
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Get-or-create metric families keyed by (name, sorted labels).

    One registry is the unit of exposition: everything registered here
    appears in :meth:`snapshot` and :meth:`render_prometheus`.  The
    registry lock guards registration and shard creation only — the
    event path is lock-free (see module docstring).
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        # RLock, not Lock: a GC callback (GcMonitor) can fire on an
        # allocation made *while holding* this lock — e.g. inside
        # _get_or_create — and the callback observes into a histogram
        # of the same registry, re-entering cells() on the same
        # thread.  A plain Lock self-deadlocks there.
        self._lock = threading.RLock()
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._families: Dict[str, str] = {}  # name -> kind

    @property
    def enabled(self) -> bool:
        return self._enabled

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Dict[str, object], **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                kind = self._families.get(name)
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a {kind}"
                    )
                metric = cls(name, key[1], help, self._lock, **kwargs)
                self._metrics[key] = metric
                self._families[name] = cls.kind
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as a {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        if not self._enabled:
            return _NULL_COUNTER
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        if not self._enabled:
            return _NULL_GAUGE
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        if not self._enabled:
            return _NULL_HISTOGRAM
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # -- exposition --------------------------------------------------------

    def _grouped(self) -> Dict[str, List[object]]:
        with self._lock:
            metrics = list(self._metrics.values())
        grouped: Dict[str, List[object]] = {}
        for metric in metrics:
            grouped.setdefault(metric.name, []).append(metric)
        return grouped

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested JSON-ready dict: name -> {type, help, series: [...]}."""
        out: Dict[str, Dict[str, object]] = {}
        for name, metrics in sorted(self._grouped().items()):
            out[name] = {
                "type": metrics[0].kind,
                "help": metrics[0].help,
                "series": [metric._series() for metric in metrics],
            }
        return out

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """The Prometheus text exposition format for every family."""
        return render_snapshot(self.snapshot(), prefix=prefix)

    def reset(self) -> None:
        """Zero every registered metric (families stay registered)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()


def render_snapshot(
    snapshot: Dict[str, Dict[str, object]], prefix: str = "repro_"
) -> str:
    """Prometheus text for a :meth:`MetricsRegistry.snapshot` dict.

    Works on any snapshot-shaped payload, not just a live registry —
    ``python -m repro stats --snapshot FILE`` and ``--url`` render
    metrics captured by another process (or fetched over HTTP) through
    this same path, so the output is identical to what the originating
    process would have printed.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        full = prefix + name
        if family.get("help"):
            lines.append(f"# HELP {full} {family['help']}")
        lines.append(f"# TYPE {full} {family['type']}")
        for series in family.get("series", []):
            items = _label_items(series.get("labels", {}))
            base = _render_labels(items)
            if family["type"] == "histogram":
                for le, count in series.get("buckets", []):
                    labelset = _render_labels(items + (("le", str(le)),))
                    lines.append(f"{full}_bucket{labelset} {int(count)}")
                lines.append(
                    f"{full}_sum{base} {_format_value(float(series['sum']))}"
                )
                lines.append(f"{full}_count{base} {int(series['count'])}")
            else:
                lines.append(
                    f"{full}{base} {_format_value(float(series['value']))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Inside a label value exactly three characters are escaped:
    backslash (``\\``), double-quote (``\"``), and line-feed (``\n``)
    — backslash first, so the other escapes are unambiguous and the
    encoding round-trips through :func:`unescape_label_value`.
    """
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (for tests and scrapers)."""
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            follower = value[index + 1]
            if follower in ('"', "\\"):
                out.append(follower)
                index += 2
                continue
            if follower == "n":
                out.append("\n")
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in items
    )
    return "{" + body + "}"
