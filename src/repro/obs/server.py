"""Telemetry HTTP server: the network exposition surface.

PR 4 left the registry trapped in-process (``python -m repro stats``
can only print its *own* registry).  :class:`TelemetryServer` puts the
observability surfaces on the wire with nothing but the stdlib
(``http.server.ThreadingHTTPServer`` — one thread per request, which
the lock-free registry read path handles exactly):

========================  ====================================================
``GET /metrics``          Prometheus text exposition of the registry
``GET /healthz``          liveness: 200 once the server loop is up
``GET /readyz``           readiness: 503 until a service is attached;
                          body carries the drift-detector state
``POST /explain``         rank a document with explanations — body is raw
                          text or ``{"text": ..., "top": N}`` JSON
``GET /traces/recent``    the tracer's bounded ring of sampled traces
``GET /debug/profile``    run the sampling stack profiler for
                          ``?seconds=N`` (default 2, cap 60) at
                          ``?hz=H`` and return collapsed stacks
                          (``?format=json`` for the call tree)
``GET /debug/heap``       tracemalloc state, per-stage net allocations,
                          store resident bytes; ``?tracemalloc=on|off``
                          toggles tracing, ``?top=N`` adds allocation
                          sites
``GET /debug/gc``         collector counts/thresholds + observed pauses
========================  ====================================================

The server instruments itself into the same registry it exposes:
``http_requests_total{path,method,status}`` and
``http_request_seconds{path}`` (paths normalized to the route table so
label cardinality stays bounded).

Use :meth:`TelemetryServer.start` for a daemon-thread server (tests,
embedding) or :meth:`serve_forever` to own the main thread
(``python -m repro serve``).  Port 0 binds an ephemeral port,
re-readable via :attr:`port`/:attr:`url`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs

from repro.obs.profile import GcMonitor, HeapProfiler, StackSampler
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["TelemetryServer", "ROUTES"]

ROUTES = (
    "/metrics",
    "/healthz",
    "/readyz",
    "/explain",
    "/traces/recent",
    "/debug/profile",
    "/debug/heap",
    "/debug/gc",
)

_MAX_EXPLAIN_BYTES = 4 * 1024 * 1024  # refuse absurd request bodies
_MAX_PROFILE_SECONDS = 60.0
_MAX_PROFILE_HZ = 997.0


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    telemetry: "TelemetryServer" = None  # set by TelemetryServer


class TelemetryServer:
    """Serves a registry/tracer (and optionally a ranking service).

    *service* is a :class:`~repro.runtime.framework.RankerService` (or
    anything with ``process(text, top=..., explain=True)``); without
    one the server still exposes ``/metrics``, ``/healthz``, and
    ``/traces/recent`` but reports not-ready and refuses ``/explain``
    with 503.  *drift* and *quality* ride along for ``/readyz``.
    """

    def __init__(
        self,
        service=None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        drift=None,
        quality=None,
        host: str = "127.0.0.1",
        port: int = 0,
        default_top: int = 10,
    ):
        if registry is None or tracer is None:
            from repro.obs import get_registry, get_tracer

            registry = registry if registry is not None else get_registry()
            tracer = tracer if tracer is not None else get_tracer()
        self.service = service
        self.drift = drift
        self.quality = quality
        self.registry = registry
        self.tracer = tracer
        self.default_top = default_top
        self.started_at = time.time()
        self._thread: Optional[threading.Thread] = None
        self._m_requests: Dict = {}
        self._m_seconds: Dict = {}
        # /debug surfaces: GC pauses are monitored for the server's whole
        # life (the callbacks are nearly free); tracemalloc stays off
        # until a /debug/heap?tracemalloc=on asks for it; at most one
        # /debug/profile run at a time (two samplers would fight over
        # the stage-tracking flag).
        self.gc_monitor = GcMonitor(registry=registry).start()
        self.heap = HeapProfiler(registry=registry)
        self._profile_lock = threading.Lock()
        self._httpd = _TelemetryHTTPServer((host, port), _TelemetryHandler)
        self._httpd.telemetry = self

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="telemetry", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` / interrupt."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self.gc_monitor.stop()
        self.heap.stop()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request accounting ------------------------------------------------

    def _observe_request(
        self, route: str, method: str, status: int, seconds: float
    ) -> None:
        key = (route, method, status)
        counter = self._m_requests.get(key)
        if counter is None:
            counter = self.registry.counter(
                "http_requests_total",
                help="telemetry server requests",
                path=route,
                method=method,
                status=status,
            )
            self._m_requests[key] = counter
        counter.inc()
        histogram = self._m_seconds.get(route)
        if histogram is None:
            histogram = self.registry.histogram(
                "http_request_seconds",
                help="telemetry server request latency",
                buckets=DEFAULT_LATENCY_BUCKETS,
                path=route,
            )
            self._m_seconds[route] = histogram
        histogram.observe(seconds)

    # -- endpoint bodies ---------------------------------------------------

    def health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }

    def readiness(self) -> Dict[str, object]:
        ready = self.service is not None
        body: Dict[str, object] = {
            "ready": ready,
            "service_loaded": self.service is not None,
        }
        if self.drift is not None:
            body["drift"] = self.drift.status()
        if self.quality is not None:
            body["quality"] = {
                "ctr_by_position": [
                    round(self.quality.ctr_at(p), 6)
                    for p in range(self.quality.positions)
                ],
            }
        return body

    def explain(self, text: str, top: Optional[int]) -> Dict[str, object]:
        if self.service is None:
            raise _ServiceUnavailable("no ranking service attached")
        ranked, explanations = self.service.process(
            text, top=top if top is not None else self.default_top, explain=True
        )
        return {
            "ranked": [
                {
                    "phrase": d.phrase,
                    "start": d.start,
                    "end": d.end,
                    "kind": d.kind,
                    "score": d.score,
                }
                for d in ranked
            ],
            "explanations": [e.to_dict() for e in explanations],
        }

    # -- /debug surfaces ---------------------------------------------------

    def profile(
        self,
        seconds: float,
        hz: float,
        fmt: str = "collapsed",
    ):
        """Run the stack sampler for *seconds*; returns (payload, type).

        The request thread sleeps while the sampler's daemon thread
        walks the other threads — exactly the production use: profile
        the serving traffic without stopping it.
        """
        seconds = min(max(float(seconds), 0.05), _MAX_PROFILE_SECONDS)
        hz = min(max(float(hz), 1.0), _MAX_PROFILE_HZ)
        if fmt not in ("collapsed", "json", "top"):
            raise ValueError(f"unknown profile format {fmt!r}")
        if not self._profile_lock.acquire(blocking=False):
            raise _Conflict("a /debug/profile run is already in progress")
        try:
            with StackSampler(hz=hz, registry=self.registry) as sampler:
                time.sleep(seconds)
            if fmt == "collapsed":
                return (
                    sampler.collapsed().encode("utf-8"),
                    "text/plain; charset=utf-8",
                )
            body = {
                "profile": sampler.stats(),
                "top_stacks": sampler.top_stacks(10),
                "top_functions": sampler.top_functions(10),
            }
            if fmt == "json":
                body["call_tree"] = sampler.call_tree()
            return (
                (json.dumps(body, sort_keys=True) + "\n").encode("utf-8"),
                "application/json",
            )
        finally:
            self._profile_lock.release()

    def heap_debug(
        self, top: int = 0, tracemalloc_toggle: Optional[str] = None
    ) -> Dict[str, object]:
        """The /debug/heap body: heap state + store resident bytes."""
        if tracemalloc_toggle == "on":
            self.heap.start()
        elif tracemalloc_toggle == "off":
            self.heap.stop()
        elif tracemalloc_toggle is not None:
            raise ValueError("tracemalloc must be 'on' or 'off'")
        body: Dict[str, object] = {"heap": self.heap.stats()}
        if top:
            body["top_allocations"] = self.heap.top_allocations(top)
        if self.service is not None and hasattr(
            self.service, "observe_resident_bytes"
        ):
            body["resident_bytes"] = self.service.observe_resident_bytes()
        return body

    def gc_debug(self) -> Dict[str, object]:
        return self.gc_monitor.snapshot()


class _ServiceUnavailable(RuntimeError):
    pass


class _Conflict(RuntimeError):
    pass


class _TelemetryHandler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request metrics replace stderr chatter

    @property
    def _telemetry(self) -> TelemetryServer:
        return self.server.telemetry

    def _route(self) -> str:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        return path if path in ROUTES else "other"

    def _query(self) -> Dict[str, list]:
        parts = self.path.split("?", 1)
        return parse_qs(parts[1]) if len(parts) == 2 else {}

    def _observe(self, status: int) -> None:
        if self._observed:
            return
        self._observed = True
        self._telemetry._observe_request(
            self._route_name,
            self._method,
            status,
            time.perf_counter() - self._started,
        )

    def _reply(self, status: int, payload: bytes, content_type: str) -> None:
        # record the request before the client can see the response, so a
        # completed request is always visible to the next /metrics scrape
        self._observe(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_json(self, status: int, body: Dict) -> None:
        self._reply(
            status,
            (json.dumps(body, sort_keys=True) + "\n").encode("utf-8"),
            "application/json",
        )

    def _handle(self, method: str) -> None:
        self._started = time.perf_counter()
        self._method = method
        self._route_name = self._route()
        self._observed = False
        try:
            self._dispatch(method, self._route_name)
        except _ServiceUnavailable as error:
            self._reply_json(503, {"error": str(error)})
        except _Conflict as error:
            self._reply_json(409, {"error": str(error)})
        except (ValueError, KeyError, TypeError) as error:
            self._reply_json(400, {"error": str(error)})
        except BrokenPipeError:  # client went away mid-response
            self._observe(499)
        except Exception as error:  # pragma: no cover - defensive
            self._reply_json(500, {"error": f"internal error: {error}"})

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST")

    def _dispatch(self, method: str, route: str) -> int:
        telemetry = self._telemetry
        if method == "GET" and route == "/metrics":
            payload = telemetry.registry.render_prometheus().encode("utf-8")
            self._reply(
                200, payload, "text/plain; version=0.0.4; charset=utf-8"
            )
            return 200
        if method == "GET" and route == "/healthz":
            self._reply_json(200, telemetry.health())
            return 200
        if method == "GET" and route == "/readyz":
            body = telemetry.readiness()
            status = 200 if body["ready"] else 503
            self._reply_json(status, body)
            return status
        if method == "GET" and route == "/traces/recent":
            self._reply_json(200, {"traces": list(telemetry.tracer.recent)})
            return 200
        if method == "GET" and route == "/debug/profile":
            query = self._query()
            payload, content_type = telemetry.profile(
                seconds=float(query.get("seconds", ["2"])[0]),
                hz=float(query.get("hz", ["97"])[0]),
                fmt=query.get("format", ["collapsed"])[0],
            )
            self._reply(200, payload, content_type)
            return 200
        if method == "GET" and route == "/debug/heap":
            query = self._query()
            toggle = query.get("tracemalloc", [None])[0]
            self._reply_json(
                200,
                telemetry.heap_debug(
                    top=int(query.get("top", ["0"])[0]),
                    tracemalloc_toggle=toggle,
                ),
            )
            return 200
        if method == "GET" and route == "/debug/gc":
            self._reply_json(200, telemetry.gc_debug())
            return 200
        if method == "POST" and route == "/explain":
            text, top = self._explain_request()
            self._reply_json(200, telemetry.explain(text, top))
            return 200
        if route == "/explain" or (
            method == "POST" and route in ("/metrics", "/healthz", "/readyz",
                                           "/traces/recent", "/debug/profile",
                                           "/debug/heap", "/debug/gc")
        ):
            self._reply_json(405, {"error": f"{method} not allowed on {route}"})
            return 405
        self._reply_json(404, {"error": f"unknown path {self.path!r}"})
        return 404

    def _explain_request(self):
        """(text, top) from an /explain body: JSON object or raw text."""
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("empty /explain body")
        if length > _MAX_EXPLAIN_BYTES:
            raise ValueError("/explain body too large")
        raw = self.rfile.read(length).decode("utf-8")
        content_type = (self.headers.get("Content-Type") or "").lower()
        stripped = raw.lstrip()
        if "json" in content_type or stripped.startswith("{"):
            body = json.loads(raw)
            if not isinstance(body, dict) or "text" not in body:
                raise ValueError('/explain JSON body needs a "text" field')
            top = body.get("top")
            return str(body["text"]), (None if top is None else int(top))
        return raw, None
