"""Stage spans and request traces with optional 1-in-N sampling.

A :class:`Trace` is one request's (or one offline build's) tree of
nested :class:`Span` timings, clocked with ``time.perf_counter`` (a
monotonic clock — wall-clock adjustments never corrupt durations; the
single ``time.time`` stamp on the trace itself is presentation only).

The :class:`Tracer` is the cheap front door the instrumented code
talks to:

* ``tracer.start(kind)`` / ``tracer.finish(trace)`` — bracket one
  request.  Sampling happens at ``start``: with ``sample_every=N``
  only every N-th request gets a real :class:`Trace`; the rest get the
  shared :data:`NULL_TRACE` whose methods are no-ops, so the unsampled
  hot path pays one counter increment and nothing else.
* ``tracer.trace(kind)`` — context-manager form of the same, which
  also makes the trace *current* for the thread so that…
* ``tracer.span(stage)`` — a context manager **and** decorator that
  times a stage, records the duration into the registry histogram
  ``span_seconds{stage=...}`` (always, sampled or not — histograms are
  the cheap aggregate view), and attaches a span to the thread's
  current trace when one is being kept.

Finished sampled traces go to the *sink* (``JsonLinesTraceSink`` for
``--trace-out``) and into a small ``recent`` ring buffer for ad-hoc
inspection (``python -m repro stats``).
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

__all__ = [
    "JsonLinesTraceSink",
    "NULL_TRACE",
    "Span",
    "Trace",
    "Tracer",
    "active_stages",
    "mark_stage",
    "set_stage_tracking",
    "stage_tracking_enabled",
]


# -- thread -> stage map (for the sampling profiler) -----------------------
#
# The stack sampler (repro.obs.profile) attributes CPU samples to the
# stage the sampled thread was executing.  Spans and the serving path
# publish their current stage here — but only while a sampler has
# switched tracking on, so the instrumented hot path pays exactly one
# module-global bool check per stage boundary when nothing is
# profiling.  The map is a flat {thread ident -> stage name} dict:
# writers save/restore the previous value around nested spans, and the
# GIL makes the int-keyed set/get/delete atomic enough for a sampler
# that only ever *reads*.

_STAGE_TRACKING = False
_THREAD_STAGES: Dict[int, str] = {}


def set_stage_tracking(enabled: bool) -> bool:
    """Turn the thread->stage map on/off; returns the previous state.

    Off also clears the map, so a finished profiling session never
    leaves stale attributions behind.
    """
    global _STAGE_TRACKING
    previous = _STAGE_TRACKING
    _STAGE_TRACKING = bool(enabled)
    if not _STAGE_TRACKING:
        _THREAD_STAGES.clear()
    return previous


def stage_tracking_enabled() -> bool:
    return _STAGE_TRACKING


def mark_stage(stage: Optional[str]) -> Optional[str]:
    """Set (None: clear) the calling thread's stage; returns the old one.

    No-op unless stage tracking is enabled.  Callers that nest restore
    the returned previous value on exit.
    """
    if not _STAGE_TRACKING:
        return None
    ident = threading.get_ident()
    previous = _THREAD_STAGES.get(ident)
    if stage is None:
        _THREAD_STAGES.pop(ident, None)
    else:
        _THREAD_STAGES[ident] = stage
    return previous


def active_stages() -> Dict[int, str]:
    """A point-in-time copy of {thread ident -> current stage}."""
    return dict(_THREAD_STAGES)


class Span:
    """One timed stage inside a trace (children are sub-stages)."""

    __slots__ = ("name", "start", "duration", "children")

    def __init__(self, name: str, start: float):
        self.name = name
        self.start = start  # perf_counter seconds, relative clock
        self.duration = 0.0
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
        }
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _TraceSpanContext:
    """``with trace.span(name):`` — nested span bracketing."""

    __slots__ = ("_trace", "_name", "_span")

    def __init__(self, trace: "Trace", name: str):
        self._trace = trace
        self._name = name

    def __enter__(self) -> Span:
        self._span = self._trace._open_span(self._name)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._trace._close_span(self._span)


class Trace:
    """One sampled request: a kind, a span tree, and free-form meta."""

    sampled = True
    __slots__ = ("kind", "timestamp", "started", "duration", "meta",
                 "spans", "_stack")

    def __init__(self, kind: str):
        self.kind = kind
        self.timestamp = time.time()  # wall-clock stamp for the sink only
        self.started = time.perf_counter()
        self.duration = 0.0
        self.meta: Dict[str, object] = {}
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str) -> _TraceSpanContext:
        """Open a nested span as a context manager."""
        return _TraceSpanContext(self, name)

    def record(self, name: str, start: float, end: float) -> Span:
        """Attach an already-measured stage (the zero-extra-clock path).

        *start*/*end* are ``perf_counter`` readings the caller already
        took for its own accounting; recording reuses them instead of
        sampling the clock again.
        """
        span = Span(name, start - self.started)
        span.duration = end - start
        self._attach(span)
        return span

    def record_duration(self, name: str, start: float, seconds: float) -> Span:
        """Attach a stage known only by (start, duration)."""
        return self.record(name, start, start + seconds)

    def _attach(self, span: Span) -> None:
        parent = self._stack[-1].children if self._stack else self.spans
        parent.append(span)

    def _open_span(self, name: str) -> Span:
        span = Span(name, time.perf_counter() - self.started)
        self._attach(span)
        self._stack.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self.started) - span.start
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def finish(self) -> None:
        self.duration = time.perf_counter() - self.started

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "timestamp": round(self.timestamp, 6),
            "duration": round(self.duration, 9),
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _NullTrace:
    """Shared stand-in for unsampled requests; every method no-ops."""

    sampled = False
    meta: Dict[str, object] = {}

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def record(self, name: str, start: float, end: float) -> None:
        return None

    def record_duration(self, name: str, start: float, seconds: float) -> None:
        return None

    def finish(self) -> None:
        pass

    def to_dict(self) -> None:
        return None


NULL_TRACE = _NullTrace()


class JsonLinesTraceSink:
    """Appends one JSON object per finished trace to a file.

    With *max_bytes* set, the file rotates before a write would push it
    past the limit: ``path`` moves to ``path.1`` (older generations
    shift to ``path.2`` … ``path.<keep>``, the oldest is dropped) and a
    fresh ``path`` is opened.  Long-running servers with trace sampling
    on can therefore never fill a disk with one unbounded file.  A
    single record larger than *max_bytes* still gets written whole —
    rotation bounds file growth, it never truncates a record.
    """

    def __init__(self, path, max_bytes: Optional[int] = None, keep: int = 3):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self._path = str(path)
        self.max_bytes = max_bytes
        self.keep = int(keep)
        self._lock = threading.Lock()
        self._handle = open(self._path, "a", encoding="utf-8")
        self._size = self._handle.tell()  # append mode: current file size

    @property
    def path(self) -> str:
        return self._path

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            if (
                self.max_bytes is not None
                and self._size > 0
                and self._size + encoded > self.max_bytes
            ):
                try:
                    self._rotate()
                except OSError:
                    # A failed shift (permissions, a vanished directory,
                    # a crash-recovery race) must not drop the record:
                    # _rotate's finally clause re-opened the live file,
                    # so appending there keeps the stream ordered and a
                    # later write retries the rotation.
                    pass
            self._handle.write(line)
            self._handle.flush()
            self._size += encoded

    def _rotate(self) -> None:
        """Shift path -> path.1 -> ... -> path.keep (caller holds lock).

        The live file is fsynced *before* any rename: once ``path``
        shows up as ``path.1`` its records are durably on disk, so a
        crash in the middle of the shift can only leave a gap between
        generations, never two files whose records interleave.  The
        shift runs oldest-first for the same reason — at every
        intermediate state generation numbers still increase with age.
        """
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        try:
            oldest = Path(f"{self._path}.{self.keep}")
            if oldest.exists():
                oldest.unlink()
            for generation in range(self.keep - 1, 0, -1):
                source = Path(f"{self._path}.{generation}")
                if source.exists():
                    source.rename(f"{self._path}.{generation + 1}")
            Path(self._path).rename(f"{self._path}.1")
        finally:
            # Reopen whatever `path` now is: a fresh file after a
            # completed rotation, or the still-live one after a failed
            # shift.  A mid-rotation error therefore never leaves the
            # sink without a handle, and appends always land in the
            # newest generation.
            self._handle = open(self._path, "a", encoding="utf-8")
            self._size = self._handle.tell()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonLinesTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _TracerSpan:
    """``tracer.span(stage)`` — context manager and decorator."""

    __slots__ = ("_tracer", "_stage", "_started", "_span", "_context",
                 "_previous_stage", "_marked")

    def __init__(self, tracer: "Tracer", stage: str):
        self._tracer = tracer
        self._stage = stage

    def __enter__(self) -> Span:
        self._marked = _STAGE_TRACKING
        if self._marked:
            self._previous_stage = mark_stage(self._stage)
        trace = self._tracer.current()
        self._context = trace.span(self._stage)
        self._span = self._context.__enter__()
        self._started = time.perf_counter()
        if self._span is None:  # unsampled: still time for the histogram
            self._span = Span(self._stage, 0.0)
        return self._span

    def __exit__(self, *exc_info) -> None:
        seconds = time.perf_counter() - self._started
        self._context.__exit__(*exc_info)
        if not self._span.duration:
            self._span.duration = seconds
        if self._marked:
            mark_stage(self._previous_stage)
        self._tracer._observe_stage(self._stage, seconds)

    def __call__(self, fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _TracerSpan(self._tracer, self._stage):
                return fn(*args, **kwargs)

        return wrapper


class Tracer:
    """Sampling front door: per-request traces + always-on histograms.

    *sample_every*: keep the full span tree of every N-th ``start``;
    0/None disables trace retention entirely (stage histograms still
    record).  *sink* receives finished sampled traces as dicts;
    *keep_last* bounds the in-memory ring of recent traces.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sample_every: Optional[int] = 1,
        sink=None,
        keep_last: int = 8,
    ):
        self._registry = registry if registry is not None else MetricsRegistry(
            enabled=False
        )
        self.sample_every = int(sample_every or 0)
        self.sink = sink
        self.recent: List[Dict[str, object]] = []
        self._keep_last = max(0, int(keep_last))
        self._requests = itertools.count()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._m_requests = self._registry.counter(
            "trace_requests_total", help="requests seen by the tracer"
        )
        self._m_sampled = self._registry.counter(
            "trace_sampled_total", help="requests that kept a full trace"
        )
        self._stage_histograms: Dict[str, object] = {}

    # -- sampling ----------------------------------------------------------

    def start(self, kind: str):
        """A :class:`Trace` for every N-th request, NULL_TRACE otherwise."""
        self._m_requests.inc()
        if self.sample_every <= 0:
            return NULL_TRACE
        if next(self._requests) % self.sample_every:
            return NULL_TRACE
        self._m_sampled.inc()
        return Trace(kind)

    def finish(self, trace) -> None:
        """Close a trace from :meth:`start`; ship it if it was sampled."""
        if not trace.sampled:
            return
        trace.finish()
        record = trace.to_dict()
        if self._keep_last:
            with self._lock:
                self.recent.append(record)
                del self.recent[: -self._keep_last]
        if self.sink is not None:
            self.sink.write(record)

    # -- ambient trace (context-manager form) ------------------------------

    def _stack(self) -> List:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self):
        """The thread's innermost active trace (NULL_TRACE if none)."""
        stack = self._stack()
        return stack[-1] if stack else NULL_TRACE

    def trace(self, kind: str):
        """``with tracer.trace(kind) as t:`` — start/finish + ambient."""
        return _TracerTraceContext(self, kind)

    def span(self, stage: str) -> _TracerSpan:
        """Time a stage: histogram always, span when a trace is kept."""
        return _TracerSpan(self, stage)

    def _observe_stage(self, stage: str, seconds: float) -> None:
        histogram = self._stage_histograms.get(stage)
        if histogram is None:
            histogram = self._registry.histogram(
                "span_seconds",
                help="tracer span durations by stage",
                buckets=DEFAULT_LATENCY_BUCKETS,
                stage=stage,
            )
            self._stage_histograms[stage] = histogram
        histogram.observe(seconds)


class _TracerTraceContext:
    __slots__ = ("_tracer", "_kind", "_trace")

    def __init__(self, tracer: Tracer, kind: str):
        self._tracer = tracer
        self._kind = kind

    def __enter__(self):
        self._trace = self._tracer.start(self._kind)
        self._tracer._stack().append(self._trace)
        return self._trace

    def __exit__(self, *exc_info) -> None:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._trace:
            stack.pop()
        self._tracer.finish(self._trace)
