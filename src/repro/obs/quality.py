"""Model-quality observability: CTR, rank churn, and feature drift.

PR 4's runtime layer answers "is the service healthy?"; this module
answers "is the *model* healthy?" — the paper's own yardstick is live
click behavior (Section VII trains and evaluates on CTR), so serving
needs quality signals, not just latency histograms:

* :class:`QualityMonitor` folds click-tracking reports
  (:class:`~repro.clicks.tracking.StoryClickRecord`, duck-typed) and
  served rankings into the metrics registry: sliding-window CTR per
  rank position (``ctr_by_position{position}``), rank churn between
  consecutive rankings (normalized Kendall distance over the shared
  top concepts), and the served score distribution.  Hand it an
  :class:`~repro.clicks.online.OnlineCtrTracker` to keep the
  decayed-CTR view in the same place.
* :class:`DriftBaseline` captures per-feature first/second moments of
  the model feature columns at :class:`~repro.offline.builder.
  OfflineBuilder` time; the builder bakes them into the datapack
  manifest (``feature_baselines`` section — optional, old packs load
  unchanged).
* :class:`DriftDetector` taps the serving-time feature matrices
  (``ConceptRanker.feature_observer``), keeps traffic-decayed running
  moments, and compares them against the baseline: the gauge
  ``feature_drift_zscore{feature}`` tracks how many baseline standard
  deviations the serving mean has moved, and crossing the threshold
  increments ``feature_drift_alerts_total{feature}`` exactly once per
  excursion (state-change semantics, not once per observation).

Everything here is observation-only: no result path reads these
objects, and a document costs one deque append / a few numpy adds.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.registry import MetricsRegistry

__all__ = [
    "SCORE_BUCKETS",
    "CHURN_BUCKETS",
    "QualityMonitor",
    "DriftBaseline",
    "DriftDetector",
    "baseline_from_manifest",
    "load_baseline",
]

# RankSVM margins live on a small symmetric scale; churn is a [0, 1]
# fraction of discordant pairs.
SCORE_BUCKETS = (
    -10.0, -5.0, -2.5, -1.0, -0.5, -0.25, -0.1,
    0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
CHURN_BUCKETS = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)

MANIFEST_BASELINE_KEY = "feature_baselines"


def _registry_or_default(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    if registry is not None:
        return registry
    from repro.obs import get_registry

    return get_registry()


class QualityMonitor:
    """Sliding-window ranking-quality gauges over the registry.

    *tracker* is an optional :class:`~repro.clicks.online.OnlineCtrTracker`
    that every report is folded into (so serving keeps one live decayed
    CTR view); *positions* bounds the per-rank CTR gauges; *window* is
    the number of recent reports each position's CTR is computed over;
    *churn_depth* caps the pairwise churn comparison (top-K).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracker=None,
        positions: int = 10,
        window: int = 256,
        churn_depth: int = 20,
    ):
        if positions <= 0 or window <= 0 or churn_depth <= 1:
            raise ValueError("positions/window must be >= 1, churn_depth >= 2")
        registry = _registry_or_default(registry)
        self._registry = registry
        self.tracker = tracker
        self.positions = positions
        self.churn_depth = churn_depth
        self._windows: List[Deque[Tuple[float, float]]] = [
            deque(maxlen=window) for __ in range(positions)
        ]
        self._m_reports = registry.counter(
            "quality_reports_total", help="click-tracking reports observed"
        )
        self._m_views = registry.counter(
            "quality_views_total", help="entity views across reports"
        )
        self._m_clicks = registry.counter(
            "quality_clicks_total", help="entity clicks across reports"
        )
        self._m_ctr_position = [
            registry.gauge(
                "ctr_by_position",
                help="sliding-window CTR by rank position",
                position=index,
            )
            for index in range(positions)
        ]
        self._m_global_ctr = registry.gauge(
            "quality_ctr", help="sliding-window CTR over all positions"
        )
        self._m_rankings = registry.counter(
            "quality_rankings_total", help="served rankings observed"
        )
        self._m_scores = registry.histogram(
            "rank_score",
            help="served RankSVM score distribution",
            buckets=SCORE_BUCKETS,
        )
        self._m_churn = registry.histogram(
            "rank_churn",
            help="pairwise-order churn vs the previous served ranking",
            buckets=CHURN_BUCKETS,
        )
        self._m_churn_last = registry.gauge(
            "rank_churn_last", help="churn of the most recent ranking"
        )
        self._last_order: Dict[str, int] = {}

    # -- click reports -----------------------------------------------------

    def observe_report(self, record) -> None:
        """Fold one click-tracking report (entities by rank position).

        *record* is duck-typed against
        :class:`~repro.clicks.tracking.StoryClickRecord`: it needs
        ``entities`` whose items expose ``phrase`` / ``baseline_score``
        / ``views`` / ``clicks``.  Rank position is by decreasing
        production score, matching what users actually saw.
        """
        if self.tracker is not None:
            self.tracker.observe_report(record)
        entities = sorted(
            record.entities, key=lambda e: -float(e.baseline_score)
        )
        self._m_reports.inc()
        for position, entity in enumerate(entities[: self.positions]):
            window = self._windows[position]
            window.append((float(entity.views), float(entity.clicks)))
            views = sum(v for v, __ in window)
            clicks = sum(c for __, c in window)
            self._m_ctr_position[position].set(
                clicks / views if views > 0 else 0.0
            )
        for entity in entities:
            self._m_views.inc(entity.views)
            self._m_clicks.inc(entity.clicks)
        total_views = sum(v for window in self._windows for v, __ in window)
        total_clicks = sum(c for window in self._windows for __, c in window)
        self._m_global_ctr.set(
            total_clicks / total_views if total_views > 0 else 0.0
        )

    def ctr_at(self, position: int) -> float:
        """The current sliding-window CTR of one rank position."""
        return self._m_ctr_position[position].value

    # -- served rankings ---------------------------------------------------

    def observe_ranking(
        self, phrases: Sequence[str], scores: Sequence[float]
    ) -> None:
        """One served ranking: score distribution + churn vs the last.

        Churn is the fraction of discordant pairs among the phrases the
        two consecutive rankings share (a normalized Kendall distance
        over the top ``churn_depth``): 0.0 means the shared concepts
        kept their relative order, 1.0 means it fully reversed.
        """
        self._m_rankings.inc()
        for score in scores:
            self._m_scores.observe(float(score))
        current = {
            phrase: index
            for index, phrase in enumerate(phrases[: self.churn_depth])
        }
        churn = self._churn(self._last_order, current)
        if churn is not None:
            self._m_churn.observe(churn)
            self._m_churn_last.set(churn)
        self._last_order = current

    @staticmethod
    def _churn(
        previous: Dict[str, int], current: Dict[str, int]
    ) -> Optional[float]:
        shared = [phrase for phrase in current if phrase in previous]
        if len(shared) < 2:
            return None  # nothing comparable yet
        discordant = total = 0
        for a_pos, a in enumerate(shared):
            for b in shared[a_pos + 1 :]:
                total += 1
                if (previous[a] - previous[b]) * (current[a] - current[b]) < 0:
                    discordant += 1
        return discordant / total


@dataclass(frozen=True)
class DriftBaseline:
    """Per-feature moments of the model columns at pack-build time."""

    names: Tuple[str, ...]
    mean: np.ndarray
    std: np.ndarray
    count: int

    @classmethod
    def from_matrix(
        cls, names: Sequence[str], matrix: np.ndarray
    ) -> "DriftBaseline":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(names):
            raise ValueError("matrix must be (rows, len(names))")
        return cls(
            names=tuple(names),
            mean=matrix.mean(axis=0),
            std=matrix.std(axis=0),
            count=int(matrix.shape[0]),
        )

    @classmethod
    def from_store(cls, store, names: Optional[Sequence[str]] = None):
        """Moments over a quantized interestingness store's vectors.

        Uses the *dequantized* serving-side values (``extract(...).
        numeric(())``) so the baseline measures exactly what the
        serving feature matrix will contain.
        """
        from repro.features.interestingness import numeric_feature_names

        if names is None:
            names = numeric_feature_names(())
        phrases = store.phrases()
        if not phrases:
            raise ValueError("cannot baseline an empty store")
        matrix = np.vstack(
            [store.extract(phrase).numeric(()) for phrase in phrases]
        )
        return cls.from_matrix(names, matrix)

    def as_dict(self) -> Dict[str, object]:
        return {
            "names": list(self.names),
            "mean": [round(float(v), 12) for v in self.mean],
            "std": [round(float(v), 12) for v in self.std],
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict]) -> Optional["DriftBaseline"]:
        if not payload:
            return None
        return cls(
            names=tuple(payload["names"]),
            mean=np.asarray(payload["mean"], dtype=float),
            std=np.asarray(payload["std"], dtype=float),
            count=int(payload.get("count", 0)),
        )


def baseline_from_manifest(manifest: Optional[Dict]) -> Optional[DriftBaseline]:
    """The drift baseline of a build manifest (None for pre-PR-5 packs)."""
    if not manifest:
        return None
    return DriftBaseline.from_dict(manifest.get(MANIFEST_BASELINE_KEY))


def load_baseline(pack_dir) -> Optional[DriftBaseline]:
    """Read ``manifest.json`` in *pack_dir*; None if absent/sectionless."""
    path = Path(pack_dir) / "manifest.json"
    if not path.exists():
        return None
    return baseline_from_manifest(json.loads(path.read_text()))


class DriftDetector:
    """Serving-vs-baseline feature-distribution comparison.

    Call :meth:`bind` with the serving feature column names (the
    service does this when handed a detector); columns without a
    baseline (the context-dependent relevance feature, or features a
    newer model added) are skipped and listed in ``unmonitored``.

    :meth:`observe` accumulates traffic-decayed per-column sums (decay
    is row-driven like :class:`~repro.clicks.online.OnlineCtrTracker`,
    so quiet periods don't erase evidence); every *check_every* rows
    the running means are z-scored against the baseline
    (``|running_mean - baseline_mean| / baseline_std``).  A feature
    whose score crosses *z_threshold* with at least *min_observations*
    rows of evidence enters the alert state and increments
    ``feature_drift_alerts_total{feature}`` once; it must fall back
    below the threshold before it can alert again.
    """

    def __init__(
        self,
        baseline: DriftBaseline,
        feature_names: Optional[Sequence[str]] = None,
        registry: Optional[MetricsRegistry] = None,
        z_threshold: float = 3.0,
        min_observations: int = 64,
        half_life_rows: float = 4096.0,
        check_every: int = 256,
    ):
        if z_threshold <= 0 or half_life_rows <= 0 or check_every <= 0:
            raise ValueError("thresholds must be positive")
        self.baseline = baseline
        self.z_threshold = float(z_threshold)
        self.min_observations = int(min_observations)
        self.half_life_rows = float(half_life_rows)
        self.check_every = int(check_every)
        self._registry = _registry_or_default(registry)
        self._m_rows = self._registry.counter(
            "feature_drift_rows_total", help="feature rows observed for drift"
        )
        self._m_checks = self._registry.counter(
            "feature_drift_checks_total", help="drift comparisons performed"
        )
        self._columns: List[Tuple[int, int]] = []  # (serving col, baseline col)
        self.unmonitored: Tuple[str, ...] = ()
        self._names: Tuple[str, ...] = ()
        self._sum = np.zeros(0)
        self._count = 0.0
        self._serving_cols = np.zeros(0, dtype=int)
        self._base_mean = np.zeros(0)
        self._base_scale = np.ones(0)
        self._monitored_names: List[str] = []
        self._since_check = 0
        self._in_alert: Dict[str, bool] = {}
        self._zscores: Dict[str, float] = {}
        self._m_z: Dict[str, object] = {}
        self._m_alerts: Dict[str, object] = {}
        if feature_names is not None:
            self.bind(feature_names)

    def bind(self, feature_names: Sequence[str]) -> "DriftDetector":
        """Map serving feature columns onto baseline columns by name."""
        base_index = {name: i for i, name in enumerate(self.baseline.names)}
        columns: List[Tuple[int, int]] = []
        skipped: List[str] = []
        for column, name in enumerate(feature_names):
            if name in base_index:
                columns.append((column, base_index[name]))
            else:
                skipped.append(name)
        self._columns = columns
        self.unmonitored = tuple(skipped)
        self._names = tuple(feature_names)
        self._sum = np.zeros(len(feature_names))
        self._count = 0.0
        # vectorized views for check(): z for every monitored column in
        # one numpy expression instead of a python loop
        self._serving_cols = np.asarray(
            [col for col, __ in columns], dtype=int
        )
        self._base_mean = np.asarray(
            [self.baseline.mean[base] for __, base in columns], dtype=float
        )
        self._base_scale = np.maximum(
            np.asarray(
                [self.baseline.std[base] for __, base in columns],
                dtype=float,
            ),
            1e-9,
        )
        self._monitored_names = [
            self.baseline.names[base] for __, base in columns
        ]
        for __, base_col in columns:
            name = self.baseline.names[base_col]
            self._in_alert.setdefault(name, False)
            self._m_z[name] = self._registry.gauge(
                "feature_drift_zscore",
                help="serving mean shift in baseline standard deviations",
                feature=name,
            )
            self._m_alerts[name] = self._registry.counter(
                "feature_drift_alerts_total",
                help="threshold crossings by feature",
                feature=name,
            )
        return self

    def observe(self, matrix: np.ndarray) -> None:
        """Fold one serving feature matrix (rows are concepts)."""
        if not self._columns:
            return
        matrix = np.asarray(matrix, dtype=float)
        rows = matrix.shape[0]
        if rows == 0:
            return
        decay = 0.5 ** (rows / self.half_life_rows)
        self._sum = self._sum * decay + matrix.sum(axis=0)
        self._count = self._count * decay + rows
        self._m_rows.inc(rows)
        self._since_check += rows
        if self._since_check >= self.check_every:
            self._since_check = 0
            self.check()

    def check(self) -> Dict[str, float]:
        """Compare running means to the baseline; update gauges/alerts."""
        if not self._columns or self._count <= 0:
            return {}
        self._m_checks.inc()
        means = self._sum[self._serving_cols] / self._count
        zscores = (means - self._base_mean) / self._base_scale
        ready = self._count >= self.min_observations
        for name, z in zip(self._monitored_names, zscores.tolist()):
            self._zscores[name] = z
            self._m_z[name].set(z)
            drifted = abs(z) > self.z_threshold
            if drifted and ready and not self._in_alert[name]:
                self._in_alert[name] = True
                self._m_alerts[name].inc()
            elif not drifted and self._in_alert[name]:
                self._in_alert[name] = False
        return dict(self._zscores)

    def drifted_features(self) -> List[str]:
        """Features currently in the alert state, sorted."""
        return sorted(name for name, hot in self._in_alert.items() if hot)

    def status(self) -> Dict[str, object]:
        """JSON-ready drift state for ``/readyz``."""
        return {
            "baseline_count": self.baseline.count,
            "rows_observed": round(self._count, 3),
            "monitored": [
                self.baseline.names[base] for __, base in self._columns
            ],
            "unmonitored": list(self.unmonitored),
            "zscores": {
                name: round(z, 6) for name, z in sorted(self._zscores.items())
            },
            "drifted": self.drifted_features(),
        }
