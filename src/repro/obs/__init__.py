"""Runtime observability: metrics registry, stage spans, trace sinks.

The package keeps one process-wide default pair — a
:class:`MetricsRegistry` (enabled) and a :class:`Tracer` (histograms
on, trace retention off) — that the instrumented layers pick up when
no explicit registry/tracer is handed to them:

* the serving layer (:class:`~repro.runtime.framework.RankerService`,
  the relevance/interestingness stores, :class:`MappedPack`),
* the search engine (query counters by kind),
* the offline builder (per-stage spans).

``configure(...)`` swaps in a fresh pair — call it **before**
constructing services or stores, because instrumented objects fetch
their metric handles at construction (that is what keeps the hot path
to ~one array increment per event).  ``python -m repro stats`` renders
the default registry after a sample workload; ``--trace-out`` on the
CLI verbs wires a :class:`JsonLinesTraceSink` into the default tracer.

The model-quality layer lives in explicit submodules — import
``repro.obs.explain`` (score decompositions), ``repro.obs.quality``
(CTR/churn monitors, drift detection), and ``repro.obs.server`` (the
telemetry HTTP server) directly; re-exporting them here would pull the
ranking stack into every ``repro.obs`` import and cycle back into the
instrumented layers.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
    escape_label_value,
    render_snapshot,
    unescape_label_value,
)
from repro.obs.trace import (
    NULL_TRACE,
    JsonLinesTraceSink,
    Span,
    Trace,
    Tracer,
    active_stages,
    mark_stage,
    set_stage_tracking,
    stage_tracking_enabled,
)
from repro.obs.profile import (  # noqa: E402 - needs trace/registry first
    GcMonitor,
    HeapProfiler,
    StackSampler,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "GcMonitor",
    "HeapProfiler",
    "Histogram",
    "JsonLinesTraceSink",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "Span",
    "StackSampler",
    "Trace",
    "Tracer",
    "active_stages",
    "configure",
    "escape_label_value",
    "get_registry",
    "get_tracer",
    "mark_stage",
    "render_snapshot",
    "set_registry",
    "set_stage_tracking",
    "set_tracer",
    "stage_tracking_enabled",
    "unescape_label_value",
]

_STATE_LOCK = threading.Lock()
_registry = MetricsRegistry(enabled=True)
_tracer = Tracer(registry=_registry, sample_every=0)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the default; returns the previous one."""
    global _registry
    with _STATE_LOCK:
        previous, _registry = _registry, registry
    return previous


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the default; returns the previous one."""
    global _tracer
    with _STATE_LOCK:
        previous, _tracer = _tracer, tracer
    return previous


def configure(
    enabled: bool = True,
    sample_every: Optional[int] = 0,
    sink=None,
    keep_last: int = 8,
) -> Tuple[MetricsRegistry, Tracer]:
    """Replace the default registry/tracer pair with a fresh one.

    *enabled* turns the metrics surface on/off (off hands out no-op
    metrics); *sample_every* keeps every N-th request's full trace
    (0 disables retention; histograms still record when enabled);
    *sink* receives sampled traces (e.g. a JsonLinesTraceSink).
    Returns the new (registry, tracer) pair.  Construct services and
    stores *after* calling this.
    """
    registry = MetricsRegistry(enabled=enabled)
    tracer = Tracer(
        registry=registry,
        sample_every=sample_every,
        sink=sink,
        keep_last=keep_last,
    )
    set_registry(registry)
    set_tracer(tracer)
    return registry, tracer
