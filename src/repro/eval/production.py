"""The production deployment analysis (paper Section V-C).

"Under this setup, we annotate much fewer entities and concepts in News
articles, and make sure they are ranked at top ... the number of
average weekly views was reduced by 52.5%, and yet the number of
average weekly clicks received was down by only 2.0%.  This translates
to an increase of 100.1% in CTR."

We reproduce the A/B structure: a *before* period annotating every
baseline candidate, and an *after* period annotating only the learned
ranker's top-k.  Entity views = story views x annotated entities;
clicks come from the latent click model, so dropping dull/irrelevant
annotations sheds views without shedding many clicks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.clicks.tracking import ClickTracker, StoryClickRecord


@dataclass(frozen=True)
class PeriodStats:
    """Aggregated tracking numbers over one deployment period."""

    weeks: int
    views: int  # total entity impressions
    clicks: int

    @property
    def weekly_views(self) -> float:
        return self.views / self.weeks if self.weeks else 0.0

    @property
    def weekly_clicks(self) -> float:
        return self.clicks / self.weeks if self.weeks else 0.0

    @property
    def ctr(self) -> float:
        return self.clicks / self.views if self.views else 0.0


@dataclass(frozen=True)
class ProductionComparison:
    """The Section V-C before/after deltas."""

    before: PeriodStats
    after: PeriodStats

    @property
    def views_change_percent(self) -> float:
        return (self.after.weekly_views / self.before.weekly_views - 1.0) * 100.0

    @property
    def clicks_change_percent(self) -> float:
        return (self.after.weekly_clicks / self.before.weekly_clicks - 1.0) * 100.0

    @property
    def ctr_change_percent(self) -> float:
        return (self.after.ctr / self.before.ctr - 1.0) * 100.0


def aggregate_period(
    records: Sequence[StoryClickRecord], weeks: int
) -> PeriodStats:
    """Sum entity impressions and clicks over a period's reports."""
    views = sum(record.views * len(record.entities) for record in records)
    clicks = sum(record.total_clicks for record in records)
    return PeriodStats(weeks=weeks, views=views, clicks=clicks)


def run_production_experiment(
    before_tracker: ClickTracker,
    after_tracker: ClickTracker,
    stories_per_week: int,
    before_weeks: int,
    after_weeks: int,
    story_source: Callable[[int, int], List],
) -> ProductionComparison:
    """Simulate the two deployment periods.

    *story_source(week_index, count)* yields the week's news stories;
    the before tracker annotates everything (the old production), the
    after tracker annotates only the learned top-k.
    """
    before_records: List[StoryClickRecord] = []
    for week in range(before_weeks):
        stories = story_source(week, stories_per_week)
        before_records.extend(before_tracker.track(stories))
    after_records: List[StoryClickRecord] = []
    for week in range(after_weeks):
        stories = story_source(before_weeks + week, stories_per_week)
        after_records.extend(after_tracker.track(stories))
    return ProductionComparison(
        before=aggregate_period(before_records, before_weeks),
        after=aggregate_period(after_records, after_weeks),
    )
