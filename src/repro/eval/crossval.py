"""The cross-validation evaluation of Section V-A.

Reproduces the paper's experiment flow: track clicks over sampled news
stories with the baseline production system, apply the noise filters
and 2500/500 windowing, then compare rankers by weighted error rate
(Table III-V) and NDCG@{1,2,3} (Figures 1-3) under five-fold
cross-validation over stories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.clicks.dataset import ClickDataset
from repro.eval.environment import Environment
from repro.features.interestingness import InterestingnessVector
from repro.features.relevance import (
    RESOURCE_SNIPPETS,
    RelevanceScorer,
)
from repro.metrics.error_rate import grouped_errors
from repro.metrics.ndcg import CTRBucketizer, mean_ndcg
from repro.ranking.baselines import jitter_ties, tie_break_by_relevance
from repro.ranking.ranksvm import KERNEL_LINEAR, RankSVM

NDCG_KS = (1, 2, 3)


@dataclass(frozen=True)
class EvalResult:
    """One ranker's scores on the evaluation dataset."""

    name: str
    weighted_error_rate: float
    error_rate: float
    ndcg: Dict[int, float]

    def row(self) -> str:
        """A printable table row."""
        ndcg_part = "  ".join(
            f"ndcg@{k}={self.ndcg[k]:.3f}" for k in sorted(self.ndcg)
        )
        return (
            f"{self.name:<38s} WER={self.weighted_error_rate * 100:6.2f}%  "
            f"ER={self.error_rate * 100:6.2f}%  {ndcg_part}"
        )


def collect_dataset(
    env: Environment,
    story_count: int,
    story_seed: int = 1,
    click_seed: Optional[int] = None,
) -> ClickDataset:
    """Generate stories, track clicks with the baseline, filter + window."""
    stories = env.stories(story_count, seed=story_seed)
    records = env.tracker(seed=click_seed).track(stories)
    return ClickDataset.from_records(records)


class RankingExperiment:
    """Shared evaluation state for all rankers on one dataset."""

    def __init__(
        self,
        env: Environment,
        dataset: ClickDataset,
        folds: int = 5,
        fold_seed: int = 5,
        ndcg_ks: Sequence[int] = NDCG_KS,
    ):
        self.env = env
        self.dataset = dataset
        self.folds = folds
        self.ndcg_ks = tuple(ndcg_ks)

        windows = dataset.windows
        if not windows:
            raise ValueError("dataset has no ranking windows")

        # flat entity arrays
        self._phrases: List[str] = []
        self._labels: List[float] = []
        self._groups: List[int] = []
        self._baseline: List[float] = []
        self._story_ids: List[int] = []
        window_contexts: Dict[int, Set[str]] = {}
        for window in windows:
            window_contexts[window.window_id] = RelevanceScorer.context_stems(
                window.text
            )
            for entity in window.entities:
                self._phrases.append(entity.phrase)
                self._labels.append(entity.ctr)
                self._groups.append(window.window_id)
                self._baseline.append(entity.baseline_score)
                self._story_ids.append(window.story_id)
        self._contexts = window_contexts
        self._labels_arr = np.asarray(self._labels)
        self._groups_arr = np.asarray(self._groups)

        # judgments: global CTR bucketization (the "system" population)
        bucketizer = CTRBucketizer().fit(self._labels_arr)
        self._judgments = np.asarray(
            [bucketizer.judgment(ctr) for ctr in self._labels]
        )

        # five-fold split over *stories*, as the paper partitions documents
        rng = np.random.default_rng(fold_seed)
        stories = sorted(set(self._story_ids))
        story_folds = {
            story: int(fold)
            for story, fold in zip(stories, rng.integers(0, folds, len(stories)))
        }
        self._folds = np.asarray(
            [story_folds[story] for story in self._story_ids]
        )

        # feature caches
        self._vectors: Dict[str, InterestingnessVector] = {}
        self._relevance_cache: Dict[Tuple[str, str, int], float] = {}

    # -- feature assembly --------------------------------------------------

    @property
    def entity_count(self) -> int:
        return len(self._phrases)

    @property
    def phrases(self) -> List[str]:
        """The per-entity phrases (aligned with all per-entity arrays)."""
        return list(self._phrases)

    def _vector(self, phrase: str) -> InterestingnessVector:
        vector = self._vectors.get(phrase)
        if vector is None:
            vector = self.env.extractor.extract(phrase)
            self._vectors[phrase] = vector
        return vector

    def relevance_scores(self, resource: str = RESOURCE_SNIPPETS) -> np.ndarray:
        """Per-entity relevance of the concept in its window context."""
        model = self.env.relevance_model(sorted(set(self._phrases)), resource)
        scorer = RelevanceScorer(model)
        scores = np.zeros(self.entity_count)
        for index, (phrase, group) in enumerate(zip(self._phrases, self._groups)):
            key = (resource, phrase, group)
            cached = self._relevance_cache.get(key)
            if cached is None:
                cached = scorer.score(phrase, self._contexts[group])
                self._relevance_cache[key] = cached
            scores[index] = cached
        return scores

    def feature_matrix(
        self,
        exclude_groups: Tuple[str, ...] = (),
        relevance_resource: Optional[str] = None,
    ) -> np.ndarray:
        """Entity feature matrix: interestingness [+ log1p(relevance)]."""
        rows = [
            self._vector(phrase).numeric(exclude_groups)
            for phrase in self._phrases
        ]
        matrix = np.vstack(rows)
        if relevance_resource is not None:
            relevance = np.log1p(self.relevance_scores(relevance_resource))
            matrix = np.hstack([matrix, relevance[:, None]])
        return matrix

    # -- evaluation -------------------------------------------------------

    def evaluate_scores(self, name: str, scores: np.ndarray) -> EvalResult:
        """Metrics of an arbitrary per-entity score assignment."""
        errors = grouped_errors(self._labels_arr, scores, self._groups_arr)
        ndcg = {
            k: mean_ndcg(self._judgments, scores, self._groups_arr, k)
            for k in self.ndcg_ks
        }
        return EvalResult(
            name=name,
            weighted_error_rate=errors.weighted_error_rate,
            error_rate=errors.error_rate,
            ndcg=ndcg,
        )

    def ndcg_with_buckets(
        self, scores: np.ndarray, buckets: int, k: int
    ) -> float:
        """Mean NDCG@k under an alternative CTR bucket count.

        Supports the design ablation on equation 6's ``bucketNo``
        resolution (the paper fixes 1000 buckets / divide by 100).
        """
        bucketizer = CTRBucketizer(buckets=buckets).fit(self._labels_arr)
        scale = buckets / 100.0 if buckets else 1.0
        judgments = np.asarray(
            [bucketizer.bucket(ctr) / scale / 100.0 * 10.0 for ctr in self._labels]
        )
        return mean_ndcg(judgments, scores, self._groups_arr, k)

    def baseline_scores(self) -> np.ndarray:
        """The production concept-vector scores per entity (no jitter)."""
        return np.asarray(self._baseline)

    def evaluate_per_window_scorer(self, name: str, scorer) -> EvalResult:
        """Evaluate an alternative concept-vector scorer.

        *scorer* is a :class:`ConceptVectorScorer`-like object; each
        window's text is re-scored and entities read their phrase's
        weight from the fresh vector.  Used by the multi-term-bonus
        ablation.
        """
        vectors = {}
        for window in self.dataset.windows:
            vectors[window.window_id] = scorer.concept_vector(window.text)
        scores = np.asarray(
            [
                vectors[group].get(phrase, 0.0)
                for phrase, group in zip(self._phrases, self._groups)
            ]
        )
        rng = np.random.default_rng(0)
        return self.evaluate_scores(name, jitter_ties(scores, rng))

    def run_random(self, seed: int = 0, repeats: int = 5) -> EvalResult:
        """The random baseline, averaged over several orderings."""
        rng = np.random.default_rng(seed)
        results = [
            self.evaluate_scores("random", rng.random(self.entity_count))
            for __ in range(repeats)
        ]
        return EvalResult(
            name="random",
            weighted_error_rate=float(
                np.mean([r.weighted_error_rate for r in results])
            ),
            error_rate=float(np.mean([r.error_rate for r in results])),
            ndcg={
                k: float(np.mean([r.ndcg[k] for r in results]))
                for k in self.ndcg_ks
            },
        )

    def run_concept_vector(self, seed: int = 0) -> EvalResult:
        """The production baseline: concept-vector score, random ties."""
        rng = np.random.default_rng(seed)
        scores = jitter_ties(np.asarray(self._baseline), rng)
        return self.evaluate_scores("concept vector score", scores)

    def run_relevance_only(self, resource: str) -> EvalResult:
        """Table IV: rank purely by the mined relevance score."""
        scores = self.relevance_scores(resource)
        return self.evaluate_scores(f"relevance only ({resource})", scores)

    def run_model(
        self,
        name: str = "interestingness model",
        exclude_groups: Tuple[str, ...] = (),
        relevance_resource: Optional[str] = None,
        tie_break_with_relevance: bool = False,
        kernel: str = KERNEL_LINEAR,
        svm: Optional[RankSVM] = None,
        extra_features: Optional[np.ndarray] = None,
        **svm_kwargs,
    ) -> EvalResult:
        """Five-fold cross-validated RankSVM evaluation.

        Every entity is scored by a model trained on the other folds'
        stories, so all reported metrics are on unseen documents.
        *extra_features* (one row per entity) lets extension experiments
        append columns (e.g. intent fractions) to the Table I space.
        """
        features = self.feature_matrix(exclude_groups, relevance_resource)
        if extra_features is not None:
            extra = np.asarray(extra_features, dtype=float)
            if extra.shape[0] != features.shape[0]:
                raise ValueError("extra_features must align with entities")
            features = np.hstack([features, extra])
        scores = np.zeros(self.entity_count)
        for fold in range(self.folds):
            train = self._folds != fold
            test = ~train
            if not test.any():
                continue
            model = svm if svm is not None else RankSVM(kernel=kernel, **svm_kwargs)
            model.fit(
                features[train],
                self._labels_arr[train],
                self._groups_arr[train],
            )
            scores[test] = model.decision_function(features[test])
        if tie_break_with_relevance:
            relevance = self.relevance_scores(
                relevance_resource or RESOURCE_SNIPPETS
            )
            scores = tie_break_by_relevance(scores, relevance, epsilon=1e-6)
        return self.evaluate_scores(name, scores)
