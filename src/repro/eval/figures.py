"""ASCII rendering of the paper's figures for terminal reports.

Figures 1-3 are NDCG bar charts; the benchmark report renders them as
text bars so the reproduction output is self-contained without a
plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.eval.crossval import EvalResult

_BAR_WIDTH = 40


def render_bar(value: float, width: int = _BAR_WIDTH, peak: float = 1.0) -> str:
    """A single horizontal bar for a value in [0, peak]."""
    if peak <= 0:
        filled = 0
    else:
        filled = int(round(min(max(value / peak, 0.0), 1.0) * width))
    return "#" * filled + "." * (width - filled)


def render_ndcg_figure(
    results: Sequence[EvalResult], ks: Sequence[int] = (1, 2, 3)
) -> List[str]:
    """Grouped bars: one block per cutoff k, one bar per technique."""
    lines: List[str] = []
    name_width = max(len(result.name) for result in results)
    for k in ks:
        lines.append(f"ndcg@{k}")
        for result in results:
            value = result.ndcg[k]
            lines.append(
                f"  {result.name:<{name_width}s} "
                f"{render_bar(value)} {value:.3f}"
            )
    return lines


def render_wer_figure(results: Sequence[EvalResult]) -> List[str]:
    """Bars of weighted error rate (shorter is better), scaled to 50%."""
    lines: List[str] = []
    name_width = max(len(result.name) for result in results)
    for result in results:
        value = result.weighted_error_rate
        lines.append(
            f"  {result.name:<{name_width}s} "
            f"{render_bar(value, peak=0.5)} {value * 100:.2f}%"
        )
    return lines
