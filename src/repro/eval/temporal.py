"""The temporal-features extension experiment (paper Section IV-C).

The paper leaves trend awareness to future work; this experiment
quantifies it.  A multi-week world with breaking-news events is
simulated: event concepts are searched for more, written about more,
and clicked more during their event week.  Two rankers are compared
under cross-validation:

* **static** — the paper's Table I interestingness features, computed
  from a single reference week (so they cannot see the spikes);
* **static + temporal** — the same features plus ``spike_ratio`` and
  ``momentum`` from the weekly query logs.

The temporal features should recover a good part of the event-driven
CTR variance the static model misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.eval.environment import Environment
from repro.metrics.error_rate import grouped_errors
from repro.querylog.temporal import (
    TemporalQueryLog,
    boosted_concepts,
    event_boosts,
    generate_temporal_query_log,
    generate_world_events,
)
from repro.corpus.documents import StoryGenerator
from repro.ranking.ranksvm import RankSVM


@dataclass(frozen=True)
class TemporalExperimentResult:
    """Weighted error rates of the static vs temporal-aware models.

    The ``event_*`` fields restrict the metric to ranking groups that
    contain at least one spiking concept — where trend features can
    actually matter.
    """

    static_wer: float
    temporal_wer: float
    event_static_wer: float
    event_temporal_wer: float
    entity_count: int
    event_entity_count: int

    @property
    def improvement_percent(self) -> float:
        if self.static_wer <= 0:
            return 0.0
        return (1.0 - self.temporal_wer / self.static_wer) * 100.0

    @property
    def event_improvement_percent(self) -> float:
        if self.event_static_wer <= 0:
            return 0.0
        return (1.0 - self.event_temporal_wer / self.event_static_wer) * 100.0


def _collect_event_week_data(
    env: Environment,
    weeks: int,
    stories_per_week: int,
    events_per_week: float,
    seed: int,
):
    """Simulate weekly tracking with world events.

    Returns flat arrays (phrases, weeks, labels, groups) plus the
    temporal query log and event schedule.
    """
    rng = np.random.default_rng((env.world.config.seed, seed))
    events = generate_world_events(
        rng, env.world.concepts, weeks, events_per_week=events_per_week
    )
    temporal_log = generate_temporal_query_log(
        rng,
        env.world.concepts,
        env.world.topics,
        env.world.vocabulary,
        weeks,
        events=events,
    )

    phrases: List[str] = []
    entity_weeks: List[int] = []
    labels: List[float] = []
    groups: List[int] = []
    event_groups: set = set()
    group_id = 0
    event_entities = 0
    for week in range(weeks):
        boosts = event_boosts(events, week)
        story_generator = StoryGenerator(
            np.random.default_rng((env.world.config.seed, seed, week)),
            env.world.topics,
            boosted_concepts(env.world.concepts, boosts),
            env.world.vocabulary,
        )
        tracker = env.tracker(seed=seed * 1000 + week, interest_boosts=boosts)
        for story in story_generator.generate_many(stories_per_week):
            record = tracker.track_story(story)
            if record.views < 30 or len(record.entities) < 2:
                continue
            for entity in record.entities:
                phrases.append(entity.phrase)
                entity_weeks.append(week)
                labels.append(entity.ctr)
                groups.append(group_id)
                if entity.concept_id in boosts:
                    event_entities += 1
                    event_groups.add(group_id)
            group_id += 1
    return (
        phrases,
        entity_weeks,
        labels,
        groups,
        temporal_log,
        event_entities,
        event_groups,
    )


def _feature_rows(
    env: Environment,
    phrases: List[str],
    entity_weeks: List[int],
    temporal_log: TemporalQueryLog,
    include_temporal: bool,
) -> np.ndarray:
    static_cache: Dict[str, np.ndarray] = {}
    rows: List[np.ndarray] = []
    for phrase, week in zip(phrases, entity_weeks):
        static = static_cache.get(phrase)
        if static is None:
            static = env.extractor.extract(phrase).numeric()
            static_cache[phrase] = static
        if not include_temporal:
            rows.append(static)
            continue
        terms = tuple(phrase.split())
        spike = np.log(temporal_log.spike_ratio(terms, week))
        momentum = temporal_log.momentum(terms, week)
        rows.append(np.concatenate([static, [spike, momentum]]))
    return np.vstack(rows)


def temporal_feature_experiment(
    env: Environment,
    weeks: int = 8,
    stories_per_week: int = 40,
    events_per_week: float = 4.0,
    folds: int = 5,
    seed: int = 17,
) -> TemporalExperimentResult:
    """Run the static vs static+temporal comparison."""
    (
        phrases,
        entity_weeks,
        labels,
        groups,
        temporal_log,
        event_entities,
        event_groups,
    ) = _collect_event_week_data(
        env, weeks, stories_per_week, events_per_week, seed
    )
    labels_arr = np.asarray(labels)
    groups_arr = np.asarray(groups)
    fold_rng = np.random.default_rng(seed)
    unique_groups = np.unique(groups_arr)
    fold_of_group = {
        int(g): int(f)
        for g, f in zip(unique_groups, fold_rng.integers(0, folds, unique_groups.size))
    }
    folds_arr = np.asarray([fold_of_group[int(g)] for g in groups_arr])

    event_mask = np.asarray([int(g) in event_groups for g in groups_arr])
    results = {}
    event_results = {}
    for include_temporal in (False, True):
        features = _feature_rows(
            env, phrases, entity_weeks, temporal_log, include_temporal
        )
        scores = np.zeros(len(phrases))
        for fold in range(folds):
            train = folds_arr != fold
            test = ~train
            if not test.any():
                continue
            model = RankSVM()
            model.fit(features[train], labels_arr[train], groups_arr[train])
            scores[test] = model.decision_function(features[test])
        errors = grouped_errors(labels_arr, scores, groups_arr)
        results[include_temporal] = errors.weighted_error_rate
        if event_mask.any():
            event_errors = grouped_errors(
                labels_arr[event_mask], scores[event_mask], groups_arr[event_mask]
            )
            event_results[include_temporal] = event_errors.weighted_error_rate
        else:
            event_results[include_temporal] = 0.0

    return TemporalExperimentResult(
        static_wer=results[False],
        temporal_wer=results[True],
        event_static_wer=event_results[False],
        event_temporal_wer=event_results[True],
        entity_count=len(phrases),
        event_entity_count=event_entities,
    )
