"""Detection accuracy evaluation (the paper's first quality dimension).

The paper's prior work measured user-centric entity detection along
"three core dimensions: the accuracy, the interestingness, and the
relevance of the entities it presents" (Section I-B).  The ranking
experiments cover the latter two; this module measures the first
against the synthetic world's ground truth:

* **span detection**: precision/recall/F1 of detected concept spans vs
  the embedded ground-truth mentions (restricted to mentions whose
  phrase is in the detectable inventory, since undetectable concepts
  are a coverage choice, not a detector error);
* **type accuracy**: how often the named-entity disambiguator assigns
  the correct taxonomy type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set, Tuple

from repro.corpus.documents import GeneratedDocument
from repro.corpus.world import SyntheticWorld
from repro.detection.base import KIND_NAMED
from repro.detection.pipeline import ShortcutsPipeline


@dataclass(frozen=True)
class DetectionQuality:
    """Aggregate detection accuracy over a document batch."""

    true_positives: int
    false_positives: int
    false_negatives: int
    type_correct: int
    type_total: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def type_accuracy(self) -> float:
        return self.type_correct / self.type_total if self.type_total else 1.0


def _ground_truth_spans(
    world: SyntheticWorld,
    document: GeneratedDocument,
    detectable: Set[str],
) -> Set[Tuple[int, int, str]]:
    spans = set()
    for mention in document.mentions:
        phrase = world.concepts[mention.concept_id].phrase.lower()
        if phrase in detectable:
            spans.add((mention.start, mention.end, phrase))
    return spans


def evaluate_detection(
    world: SyntheticWorld,
    pipeline: ShortcutsPipeline,
    documents: Sequence[GeneratedDocument],
) -> DetectionQuality:
    """Score the pipeline's detections against ground-truth mentions.

    Detection is counted per span occurrence; the pipeline deduplicates
    repeated phrases (it annotates each entity once), so later
    ground-truth occurrences of an already-detected phrase are not
    counted as misses.
    """
    detectable = {
        " ".join(phrase): None
        for phrase in pipeline._concepts._phrases  # inventory of the detector
    }
    detectable_set = set(detectable)
    # dictionary entities are detectable too
    detectable_set.update(p.lower() for p in world.dictionary.phrases())

    tp = fp = fn = 0
    type_correct = type_total = 0
    for document in documents:
        truth = _ground_truth_spans(world, document, detectable_set)
        truth_phrases = {phrase for __, __e, phrase in truth}
        annotated = pipeline.process(document.text)
        detected_spans = set()
        for detection in annotated.rankable():
            detected_spans.add((detection.start, detection.end, detection.phrase))
            if detection.kind == KIND_NAMED:
                concept = world._concept_by_phrase.get(detection.phrase)
                if concept is not None and concept.taxonomy_type is not None:
                    type_total += 1
                    type_correct += (
                        detection.entity_type == concept.taxonomy_type
                    )
        for span in detected_spans:
            if span in truth or span[2] in truth_phrases:
                tp += 1
            else:
                fp += 1
        detected_phrases = {phrase for __, __e, phrase in detected_spans}
        missed_phrases = truth_phrases - detected_phrases
        fn += len(missed_phrases)
    return DetectionQuality(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        type_correct=type_correct,
        type_total=type_total,
    )
