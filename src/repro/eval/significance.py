"""Statistical significance of ranker comparisons.

The paper reports its headline gap ("significantly lower than our
baseline result") without a test.  We make the claim checkable: a
paired bootstrap over ranking groups (windows) estimates the
distribution of the weighted-error-rate difference between two score
assignments and reports a confidence interval plus the probability that
the improvement is spurious.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.metrics.error_rate import PairwiseErrors, pairwise_errors


@dataclass(frozen=True)
class BootstrapComparison:
    """Paired bootstrap result: how much better is B than A?"""

    wer_a: float
    wer_b: float
    delta_mean: float  # mean of (A - B) over resamples; positive = B better
    delta_low: float  # lower CI bound
    delta_high: float  # upper CI bound
    p_value: float  # P(delta <= 0): probability B is not better
    resamples: int

    @property
    def significant(self) -> bool:
        """True when the 95% interval excludes zero and p < 0.05."""
        return self.delta_low > 0.0 and self.p_value < 0.05


def _per_group_errors(
    labels: np.ndarray,
    scores: np.ndarray,
    groups: np.ndarray,
) -> Dict[int, PairwiseErrors]:
    result: Dict[int, PairwiseErrors] = {}
    for group in np.unique(groups):
        mask = groups == group
        result[int(group)] = pairwise_errors(labels[mask], scores[mask])
    return result


def _wer_of(errors: Sequence[PairwiseErrors]) -> float:
    mistake_weight = sum(e.mistake_weight for e in errors)
    total_weight = sum(e.total_weight for e in errors)
    return mistake_weight / total_weight if total_weight else 0.0


def paired_bootstrap(
    labels: Sequence[float],
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    groups: Sequence[int],
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapComparison:
    """Paired bootstrap of WER(A) - WER(B) over ranking groups.

    Groups are resampled with replacement; both systems are evaluated on
    the same resample, so shared group difficulty cancels.
    """
    labels = np.asarray(labels, dtype=float)
    scores_a = np.asarray(scores_a, dtype=float)
    scores_b = np.asarray(scores_b, dtype=float)
    groups = np.asarray(groups)
    errors_a = _per_group_errors(labels, scores_a, groups)
    errors_b = _per_group_errors(labels, scores_b, groups)
    group_ids = sorted(errors_a)
    count = len(group_ids)
    if count == 0:
        raise ValueError("no ranking groups to bootstrap over")

    rng = np.random.default_rng(seed)
    deltas = np.zeros(resamples)
    a_list = [errors_a[g] for g in group_ids]
    b_list = [errors_b[g] for g in group_ids]
    for resample in range(resamples):
        chosen = rng.integers(0, count, size=count)
        wer_a = _wer_of([a_list[i] for i in chosen])
        wer_b = _wer_of([b_list[i] for i in chosen])
        deltas[resample] = wer_a - wer_b

    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(deltas, [alpha, 1.0 - alpha])
    return BootstrapComparison(
        wer_a=_wer_of(a_list),
        wer_b=_wer_of(b_list),
        delta_mean=float(deltas.mean()),
        delta_low=float(low),
        delta_high=float(high),
        p_value=float((deltas <= 0.0).mean()),
        resamples=resamples,
    )
