"""Evaluation harness: environment, cross-validation, editorial, production."""

from repro.eval.crossval import (
    EvalResult,
    RankingExperiment,
    collect_dataset,
)
from repro.eval.editorial import (
    CONTENT_ANSWERS,
    CONTENT_NEWS,
    GRADES,
    NOT,
    SOMEWHAT,
    VERY,
    EditorialJudge,
    EditorialStudy,
    JudgeConfig,
    JudgmentTable,
)
from repro.eval.environment import Environment, EnvironmentConfig
from repro.eval.experiments import (
    SummationRow,
    production_ctr_experiment,
    table2_summations,
    table3_interestingness,
    table4_relevance,
    table5_combined,
    table6_editorial,
    train_combined_ranker,
)
from repro.eval.detection_quality import DetectionQuality, evaluate_detection
from repro.eval.figures import render_bar, render_ndcg_figure, render_wer_figure
from repro.eval.position_bias import (
    PositionBin,
    decay_ratio,
    fitted_decay_chars,
    position_ctr_curve,
)
from repro.eval.robustness import (
    EXPECTED_ORDERINGS,
    SweepResult,
    seed_sweep,
)
from repro.eval.significance import BootstrapComparison, paired_bootstrap
from repro.eval.temporal import (
    TemporalExperimentResult,
    temporal_feature_experiment,
)
from repro.eval.production import (
    PeriodStats,
    ProductionComparison,
    aggregate_period,
    run_production_experiment,
)

__all__ = [
    "EvalResult",
    "RankingExperiment",
    "collect_dataset",
    "CONTENT_ANSWERS",
    "CONTENT_NEWS",
    "GRADES",
    "NOT",
    "SOMEWHAT",
    "VERY",
    "EditorialJudge",
    "EditorialStudy",
    "JudgeConfig",
    "JudgmentTable",
    "Environment",
    "EnvironmentConfig",
    "SummationRow",
    "production_ctr_experiment",
    "table2_summations",
    "table3_interestingness",
    "table4_relevance",
    "table5_combined",
    "table6_editorial",
    "train_combined_ranker",
    "DetectionQuality",
    "evaluate_detection",
    "PositionBin",
    "decay_ratio",
    "fitted_decay_chars",
    "position_ctr_curve",
    "render_bar",
    "render_ndcg_figure",
    "render_wer_figure",
    "EXPECTED_ORDERINGS",
    "SweepResult",
    "seed_sweep",
    "BootstrapComparison",
    "paired_bootstrap",
    "TemporalExperimentResult",
    "temporal_feature_experiment",
    "PeriodStats",
    "ProductionComparison",
    "aggregate_period",
    "run_production_experiment",
]
