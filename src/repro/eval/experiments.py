"""High-level experiment drivers: one function per paper table/figure.

Benchmarks and EXPERIMENTS.md generation share these, so the numbers a
benchmark prints are exactly the numbers the documentation records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.corpus.documents import StoryGenerator
from repro.eval.crossval import EvalResult, RankingExperiment
from repro.eval.editorial import (
    CONTENT_ANSWERS,
    CONTENT_NEWS,
    EditorialJudge,
    EditorialStudy,
    JudgmentTable,
)
from repro.eval.environment import Environment
from repro.eval.production import ProductionComparison, run_production_experiment
from repro.features.interestingness import FEATURE_GROUPS
from repro.features.relevance import (
    RESOURCE_PRISMA,
    RESOURCE_SNIPPETS,
    RESOURCE_SUGGESTIONS,
    RelevanceScorer,
)
from repro.ranking.model import ConceptRanker, FeatureAssembler
from repro.ranking.ranksvm import RankSVM


# -- Table II ---------------------------------------------------------------


@dataclass(frozen=True)
class SummationRow:
    phrase: str
    summation: float
    kind: str  # "specific" or "general/junk"


def table2_summations(
    env: Environment, specific_count: int = 3, junk_count: int = 3
) -> List[SummationRow]:
    """Top specific concepts vs junk phrases by keyword-score summation."""
    world = env.world
    specific = sorted(
        (
            c
            for c in world.concepts
            if not c.is_junk and c.specificity > 0.8 and len(c.terms) >= 2
        ),
        key=lambda c: env.query_log.freq_exact(c.terms),
        reverse=True,
    )[:specific_count]
    junk = world.junk_concepts()[:junk_count]
    phrases = [c.phrase for c in specific + junk]
    model = env.relevance_model(phrases, RESOURCE_SNIPPETS)
    rows = [
        SummationRow(c.phrase, model.summation(c.phrase), "specific")
        for c in specific
    ]
    rows += [
        SummationRow(c.phrase, model.summation(c.phrase), "general/junk")
        for c in junk
    ]
    return rows


# -- Tables III-V and Figures 1-3 ---------------------------------------------


def table3_interestingness(exp: RankingExperiment) -> List[EvalResult]:
    """Random / concept-vector / all-features + leave-one-group-out."""
    results = [
        exp.run_random(),
        exp.run_concept_vector(),
        exp.run_model("all features"),
    ]
    for group in FEATURE_GROUPS:
        results.append(exp.run_model(f"- {group}", exclude_groups=(group,)))
    return results


def table4_relevance(exp: RankingExperiment) -> List[EvalResult]:
    """Relevance-score-only ranking per mining resource."""
    return [
        exp.run_random(),
        exp.run_concept_vector(),
        exp.run_relevance_only(RESOURCE_PRISMA),
        exp.run_relevance_only(RESOURCE_SUGGESTIONS),
        exp.run_relevance_only(RESOURCE_SNIPPETS),
    ]


def table5_combined(exp: RankingExperiment) -> List[EvalResult]:
    """The headline comparison: all rankers, combined model last."""
    return [
        exp.run_random(),
        exp.run_concept_vector(),
        exp.run_model("best interestingness model"),
        exp.run_relevance_only(RESOURCE_SNIPPETS),
        exp.run_model(
            "interestingness + relevance",
            relevance_resource=RESOURCE_SNIPPETS,
            tie_break_with_relevance=True,
        ),
    ]


# -- trained production ranker -------------------------------------------------


def train_combined_ranker(
    env: Environment,
    exp: RankingExperiment,
    kernel: str = "linear",
) -> ConceptRanker:
    """Train the full model on the whole dataset for deployment use."""
    features = exp.feature_matrix((), RESOURCE_SNIPPETS)
    model = RankSVM(kernel=kernel)
    model.fit(features, exp._labels_arr, exp._groups_arr)
    inventory = [c.phrase for c in env.world.concepts]
    scorer = RelevanceScorer(env.relevance_model(inventory, RESOURCE_SNIPPETS))
    assembler = FeatureAssembler(
        extractor=env.extractor, relevance_scorer=scorer
    )
    return ConceptRanker(assembler, model)


# -- Table VI -------------------------------------------------------------------


def _answers_generator(env: Environment, seed: int) -> StoryGenerator:
    """Short Q&A-style snippets (the paper's Yahoo! Answers corpus)."""
    import numpy as np

    return StoryGenerator(
        np.random.default_rng((env.world.config.seed, seed)),
        env.world.topics,
        env.world.concepts,
        env.world.vocabulary,
        min_words=50,
        max_words=130,
        relevant_range=(2, 4),
        offtopic_range=(1, 2),
    )


def table6_editorial(
    env: Environment,
    ranker: ConceptRanker,
    news_count: int = 100,
    answers_count: int = 200,
    judge_seed: int = 11,
) -> Dict[str, Dict[str, JudgmentTable]]:
    """Editorial comparison: {ranker_name: {content_type: judgments}}."""
    study = EditorialStudy(env.world, EditorialJudge(seed=judge_seed))
    corpora = {
        CONTENT_NEWS: env.stories(news_count, seed=301),
        CONTENT_ANSWERS: _answers_generator(env, 302).generate_many(answers_count),
    }
    known = {c.phrase.lower() for c in env.world.concepts}

    def baseline_ranking(document) -> List[str]:
        annotated = env.pipeline.process(document.text)
        return [
            d.phrase
            for d in annotated.by_concept_vector_score()
            if d.phrase in known
        ]

    def learned_ranking(document) -> List[str]:
        annotated = env.pipeline.process(document.text)
        pruned = annotated.__class__(
            text=annotated.text,
            detections=[d for d in annotated.detections if d.phrase in known],
        )
        return [d.phrase for d in ranker.rank_document(pruned)]

    results: Dict[str, Dict[str, JudgmentTable]] = {
        "concept vector score": {},
        "ranking algorithm": {},
    }
    for content_type, documents in corpora.items():
        results["concept vector score"][content_type] = study.judge_ranker(
            documents, content_type, [baseline_ranking(d) for d in documents]
        )
        results["ranking algorithm"][content_type] = study.judge_ranker(
            documents, content_type, [learned_ranking(d) for d in documents]
        )
    return results


# -- Section V-C -----------------------------------------------------------------


def production_ctr_experiment(
    env: Environment,
    ranker: ConceptRanker,
    annotate_top: int = 3,
    stories_per_week: int = 30,
    before_weeks: int = 20,
    after_weeks: int = 15,
) -> ProductionComparison:
    """The before/after deployment comparison of Section V-C."""
    before_tracker = env.tracker(seed=601)
    after_tracker = env.tracker(seed=602, annotate_top=annotate_top, ranker=ranker)

    def story_source(week: int, count: int):
        return env.stories(count, seed=700 + week)

    return run_production_experiment(
        before_tracker,
        after_tracker,
        stories_per_week=stories_per_week,
        before_weeks=before_weeks,
        after_weeks=after_weeks,
        story_source=story_source,
    )
