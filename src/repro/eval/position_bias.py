"""Position-bias analysis (the rationale for Section V-A.1 windowing).

"To avoid the positioning bias inherent in working with user click data
(i.e. the first entities in a document may get an unfair share of user
attention), we partitioned large documents into windows."

This module measures that bias from tracked click records: CTR as a
function of the entity's character position, binned.  The measured
decay justifies the windowing step and calibrates the click model's
``position_decay_chars``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.clicks.tracking import StoryClickRecord


@dataclass(frozen=True)
class PositionBin:
    """Aggregated CTR of entities whose position falls in one bin."""

    char_start: int
    char_end: int
    views: int
    clicks: int

    @property
    def ctr(self) -> float:
        return self.clicks / self.views if self.views else 0.0


def position_ctr_curve(
    records: Sequence[StoryClickRecord],
    bin_chars: int = 500,
    max_position: int = 4000,
) -> List[PositionBin]:
    """CTR per position bin over a batch of tracked stories."""
    if bin_chars <= 0:
        raise ValueError("bin_chars must be positive")
    bin_count = max(1, max_position // bin_chars)
    views = np.zeros(bin_count, dtype=np.int64)
    clicks = np.zeros(bin_count, dtype=np.int64)
    for record in records:
        for entity in record.entities:
            index = min(entity.position // bin_chars, bin_count - 1)
            views[index] += entity.views
            clicks[index] += entity.clicks
    return [
        PositionBin(
            char_start=i * bin_chars,
            char_end=(i + 1) * bin_chars,
            views=int(views[i]),
            clicks=int(clicks[i]),
        )
        for i in range(bin_count)
    ]


def decay_ratio(curve: Sequence[PositionBin]) -> float:
    """First-bin CTR over last-populated-bin CTR (>1 means bias)."""
    populated = [bin_ for bin_ in curve if bin_.views > 0]
    if len(populated) < 2 or populated[-1].ctr == 0:
        return 1.0
    return populated[0].ctr / populated[-1].ctr


def fitted_decay_chars(curve: Sequence[PositionBin]) -> float:
    """Least-squares exponential decay constant of the CTR curve.

    Fits log(ctr) ~ -position / tau; returns tau in characters.  This
    is how the click model's ``position_decay_chars`` can be recovered
    from tracking data alone.
    """
    xs: List[float] = []
    ys: List[float] = []
    for bin_ in curve:
        if bin_.views > 0 and bin_.ctr > 0:
            centre = (bin_.char_start + bin_.char_end) / 2.0
            xs.append(centre)
            ys.append(np.log(bin_.ctr))
    if len(xs) < 2:
        return float("inf")
    slope, __ = np.polyfit(np.asarray(xs), np.asarray(ys), 1)
    if slope >= 0:
        return float("inf")
    return float(-1.0 / slope)
