"""The editorial study (paper Section V-B, Table VI).

A team of expert judges rates each highlighted entity for
interestingness (Very / Somewhat / Not) and relevance (Very / Somewhat
/ Not).  Our judges are simulated: each judgment thresholds the
entity's latent quality plus independent per-judge noise — the same
latents the click model reads, but through a separate noisy channel,
exactly the role human judges play relative to click data.

The corpus mirrors the paper's: full-length News stories (top 3
entities annotated) and short Answers snippets (top 2), comparing the
concept-vector ranking against the learned ranking algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.corpus.documents import GeneratedDocument
from repro.corpus.world import SyntheticWorld

VERY = "very"
SOMEWHAT = "somewhat"
NOT = "not"
GRADES = (VERY, SOMEWHAT, NOT)

CONTENT_NEWS = "news"
CONTENT_ANSWERS = "answers"


@dataclass(frozen=True)
class JudgeConfig:
    """Thresholds and noise of the simulated judge pool."""

    noise_sigma: float = 0.12
    interesting_very: float = 0.45
    interesting_somewhat: float = 0.15
    relevant_very: float = 0.60
    relevant_somewhat: float = 0.30


class EditorialJudge:
    """One simulated expert judge."""

    def __init__(self, config: JudgeConfig = JudgeConfig(), seed: int = 11):
        self.config = config
        self._rng = np.random.default_rng(seed)

    def _grade(self, latent: float, very: float, somewhat: float) -> str:
        observed = latent + self._rng.normal(0.0, self.config.noise_sigma)
        if observed >= very:
            return VERY
        if observed >= somewhat:
            return SOMEWHAT
        return NOT

    def judge_interestingness(self, latent_interestingness: float) -> str:
        cfg = self.config
        return self._grade(
            latent_interestingness, cfg.interesting_very, cfg.interesting_somewhat
        )

    def judge_relevance(self, latent_relevance: float) -> str:
        cfg = self.config
        return self._grade(latent_relevance, cfg.relevant_very, cfg.relevant_somewhat)


@dataclass
class JudgmentTable:
    """Grade distributions for one (ranker, content type) cell of Table VI."""

    interestingness: Dict[str, float] = field(default_factory=dict)
    relevance: Dict[str, float] = field(default_factory=dict)
    judged_entities: int = 0

    def not_interesting_or_relevant(self) -> float:
        """Average of the two "Not" percentages (the paper's -45.1% stat)."""
        return (self.interestingness[NOT] + self.relevance[NOT]) / 2.0


# a ranker maps (story, candidate phrases) -> phrases ranked best-first
RankerFn = Callable[[GeneratedDocument, List[str]], List[str]]


class EditorialStudy:
    """Runs the Table VI comparison on a generated corpus."""

    def __init__(
        self,
        world: SyntheticWorld,
        judge: EditorialJudge,
        top_news: int = 3,
        top_answers: int = 2,
    ):
        self._world = world
        self._judge = judge
        self.top_by_content = {
            CONTENT_NEWS: top_news,
            CONTENT_ANSWERS: top_answers,
        }

    def judge_ranker(
        self,
        documents: Sequence[GeneratedDocument],
        content_type: str,
        ranked_phrases_per_doc: Sequence[List[str]],
    ) -> JudgmentTable:
        """Judge the top-k annotations a ranker selected per document."""
        top_k = self.top_by_content[content_type]
        interest_counts = {grade: 0 for grade in GRADES}
        relevance_counts = {grade: 0 for grade in GRADES}
        judged = 0
        for document, ranked in zip(documents, ranked_phrases_per_doc):
            for phrase in ranked[:top_k]:
                concept = self._world.concept_by_phrase(phrase)
                latent_relevance = document.relevance_of(concept.concept_id)
                interest_counts[
                    self._judge.judge_interestingness(concept.interestingness)
                ] += 1
                relevance_counts[
                    self._judge.judge_relevance(latent_relevance)
                ] += 1
                judged += 1
        if judged == 0:
            raise ValueError("no entities were judged")
        return JudgmentTable(
            interestingness={
                grade: interest_counts[grade] / judged for grade in GRADES
            },
            relevance={
                grade: relevance_counts[grade] / judged for grade in GRADES
            },
            judged_entities=judged,
        )
