"""One-stop experiment environment.

``Environment.build(EnvironmentConfig(...))`` assembles the entire
stack — world, query log, unit lexicon, search engine, snippet/Prisma/
suggestion services, detectors, the concept-vector baseline, feature
extractors, and the relevant-keyword miner — from a single seed, so an
experiment (or an example script) needs exactly one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.clicks.model import ClickModelConfig, UserClickModel
from repro.clicks.tracking import ClickTracker
from repro.corpus.world import SyntheticWorld, WorldConfig
from repro.detection.concepts import ConceptDetector, detectable_concept_phrases
from repro.detection.conceptvector import ConceptVectorScorer
from repro.detection.named import NamedEntityDetector
from repro.detection.pipeline import ShortcutsPipeline
from repro.features.interestingness import InterestingnessExtractor
from repro.features.relevance import (
    RESOURCE_SNIPPETS,
    RelevanceModel,
    RelevantKeywordMiner,
    build_stemmed_df,
)
from repro.querylog.generator import query_log_for_world
from repro.querylog.log import QueryLog
from repro.querylog.units import UnitLexicon, UnitMiner
from repro.search.engine import SearchEngine
from repro.search.prisma import PrismaTool
from repro.search.snippets import SnippetService
from repro.search.suggestions import SuggestionService


@dataclass(frozen=True)
class EnvironmentConfig:
    """Everything needed to reproduce an experiment end to end."""

    world: WorldConfig = WorldConfig()
    query_log_seed: int = 101
    click_model: ClickModelConfig = ClickModelConfig()
    click_seed: int = 97


@dataclass
class Environment:
    """The assembled substrate stack."""

    config: EnvironmentConfig
    world: SyntheticWorld
    query_log: QueryLog
    lexicon: UnitLexicon
    engine: SearchEngine
    snippets: SnippetService
    prisma: PrismaTool
    suggestions: SuggestionService
    extractor: InterestingnessExtractor
    miner: RelevantKeywordMiner
    concept_detector: ConceptDetector
    baseline_scorer: ConceptVectorScorer
    pipeline: ShortcutsPipeline
    _relevance_models: Dict[str, RelevanceModel] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def build(cls, config: EnvironmentConfig = EnvironmentConfig()) -> "Environment":
        """Deterministically assemble the full stack."""
        world = SyntheticWorld.build(config.world)
        query_log = query_log_for_world(world, seed=config.query_log_seed)
        lexicon = UnitMiner().mine(query_log)
        engine = SearchEngine.from_corpus(world.web_corpus)
        snippets = SnippetService(engine)
        prisma = PrismaTool(engine)
        suggestions = SuggestionService(query_log)
        stemmed_df = build_stemmed_df(doc.text for doc in world.web_corpus)
        miner = RelevantKeywordMiner(snippets, prisma, suggestions, stemmed_df)
        extractor = InterestingnessExtractor(
            query_log, lexicon, engine, world.dictionary, world.wikipedia
        )
        detectable = detectable_concept_phrases(
            (tuple(c.terms) for c in world.concepts), lexicon, query_log
        )
        concept_detector = ConceptDetector(detectable, lexicon)
        baseline_scorer = ConceptVectorScorer(world.doc_frequency, lexicon)
        pipeline = ShortcutsPipeline(
            concept_detector,
            baseline_scorer,
            named_detector=NamedEntityDetector(world.dictionary),
        )
        return cls(
            config=config,
            world=world,
            query_log=query_log,
            lexicon=lexicon,
            engine=engine,
            snippets=snippets,
            prisma=prisma,
            suggestions=suggestions,
            extractor=extractor,
            miner=miner,
            concept_detector=concept_detector,
            baseline_scorer=baseline_scorer,
            pipeline=pipeline,
        )

    # -- derived helpers ----------------------------------------------------

    def click_model(self, seed: Optional[int] = None) -> UserClickModel:
        """A fresh click model (independent user randomness per call)."""
        return UserClickModel(
            self.config.click_model,
            seed=self.config.click_seed if seed is None else seed,
        )

    def tracker(
        self,
        seed: Optional[int] = None,
        annotate_top: Optional[int] = None,
        ranker=None,
        interest_boosts=None,
    ) -> ClickTracker:
        """A production tracker over this environment's pipeline."""
        return ClickTracker(
            self.world,
            self.pipeline,
            self.click_model(seed),
            annotate_top=annotate_top,
            ranker=ranker,
            interest_boosts=interest_boosts,
        )

    def relevance_model(
        self,
        phrases: Sequence[str],
        resource: str = RESOURCE_SNIPPETS,
    ) -> RelevanceModel:
        """Mine (and cache) relevant keywords for *phrases* per resource.

        The cache is per resource and grows monotonically: phrases mined
        earlier are not re-mined.
        """
        cached = self._relevance_models.get(resource)
        have = set(cached.phrases()) if cached else set()
        missing = [p for p in dict.fromkeys(p.lower() for p in phrases) if p not in have]
        if cached is None or missing:
            entries = (
                {p: cached.relevant_terms(p) for p in cached.phrases()}
                if cached
                else {}
            )
            for phrase in missing:
                entries[phrase] = self.miner.mine(phrase, resource)
            cached = RelevanceModel(entries)
            self._relevance_models[resource] = cached
        return cached

    def stories(self, count: int, seed: int = 1) -> List:
        """Generate *count* fresh news stories."""
        return self.world.story_generator(seed=seed).generate_many(count)
