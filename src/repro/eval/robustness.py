"""Seed-robustness analysis: do the paper's orderings survive resampling?

A reproduction claim is only as good as its stability: the headline
orderings (random > baseline > interestingness/relevance > combined)
must hold across independently generated worlds, not just the one seed
the benchmarks use.  ``seed_sweep`` reruns the core comparison over
several seeds at reduced scale and reports per-ranker mean ± std plus
how often each pairwise ordering held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.corpus.world import WorldConfig
from repro.eval.crossval import RankingExperiment, collect_dataset
from repro.eval.environment import Environment, EnvironmentConfig
from repro.features.relevance import RESOURCE_SNIPPETS

RANKERS = (
    "random",
    "concept vector score",
    "interestingness",
    "relevance (snippets)",
    "combined",
)

# orderings that must hold for the reproduction to count as stable:
# (better, worse) by weighted error rate
EXPECTED_ORDERINGS: Tuple[Tuple[str, str], ...] = (
    ("concept vector score", "random"),
    ("interestingness", "concept vector score"),
    ("relevance (snippets)", "concept vector score"),
    ("combined", "interestingness"),
    ("combined", "relevance (snippets)"),
)


@dataclass
class SweepResult:
    """Per-ranker WERs for every seed, with stability summaries."""

    seeds: List[int] = field(default_factory=list)
    wer: Dict[str, List[float]] = field(
        default_factory=lambda: {name: [] for name in RANKERS}
    )

    def mean(self, ranker: str) -> float:
        return float(np.mean(self.wer[ranker]))

    def std(self, ranker: str) -> float:
        return float(np.std(self.wer[ranker]))

    def ordering_hold_rate(self, better: str, worse: str) -> float:
        """Fraction of seeds where WER(better) < WER(worse)."""
        pairs = zip(self.wer[better], self.wer[worse])
        outcomes = [b < w for b, w in pairs]
        return float(np.mean(outcomes)) if outcomes else 0.0

    def all_orderings_hold_everywhere(self) -> bool:
        return all(
            self.ordering_hold_rate(better, worse) == 1.0
            for better, worse in EXPECTED_ORDERINGS
        )


def _world_for_seed(base: WorldConfig, seed: int) -> WorldConfig:
    return WorldConfig(
        seed=seed,
        vocabulary_size=base.vocabulary_size,
        topic_count=base.topic_count,
        words_per_topic=base.words_per_topic,
        concept_count=base.concept_count,
        named_entity_fraction=base.named_entity_fraction,
        junk_fraction=base.junk_fraction,
        topic_page_count=base.topic_page_count,
        zipf_exponent=base.zipf_exponent,
    )


def seed_sweep(
    seeds: Sequence[int],
    base_world: WorldConfig = WorldConfig(
        vocabulary_size=1600,
        topic_count=20,
        words_per_topic=45,
        concept_count=200,
        topic_page_count=120,
    ),
    stories: int = 150,
) -> SweepResult:
    """Run the Table V comparison over several independent worlds."""
    result = SweepResult()
    for seed in seeds:
        env = Environment.build(
            EnvironmentConfig(world=_world_for_seed(base_world, seed))
        )
        dataset = collect_dataset(env, stories, story_seed=1)
        experiment = RankingExperiment(env, dataset)
        result.seeds.append(seed)
        result.wer["random"].append(
            experiment.run_random().weighted_error_rate
        )
        result.wer["concept vector score"].append(
            experiment.run_concept_vector().weighted_error_rate
        )
        result.wer["interestingness"].append(
            experiment.run_model("i").weighted_error_rate
        )
        result.wer["relevance (snippets)"].append(
            experiment.run_relevance_only(RESOURCE_SNIPPETS).weighted_error_rate
        )
        result.wer["combined"].append(
            experiment.run_model(
                "c",
                relevance_resource=RESOURCE_SNIPPETS,
                tie_break_with_relevance=True,
            ).weighted_error_rate
        )
    return result
