"""Relevance: offline keyword mining and runtime context scoring.

Paper Section IV-B.  For every concept ``c_i`` we pre-mine its top
``m = 100`` relevant context keywords ``relevantTerms_i = {(t, s), ...}``
from three resources:

* **search engine snippets** — snippets of the first hundred phrase-query
  results, treated as a single bag-of-words document, scored by tf*idf;
* **Prisma** — the top-twenty pseudo-relevance-feedback terms, scored the
  same way (the 20-term cap is the paper's explanation for Prisma's
  weaker results in Table IV);
* **related query suggestions** — up to 300 suggestions with query
  frequencies; each term scores sum_k ln(query_freq_k) * idf(term).

All terms are stemmed, lower-cased, punctuation-stripped.  At runtime
the relevance of a concept in a context is the summed score of its
pre-mined keywords that co-occur with it in the context — which also
provides the paper's "safety net": junk concepts mine only low-scoring,
scattered keywords (Table II), so they can never achieve a high
relevance score in any context.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.search.prisma import PrismaTool
from repro.search.snippets import SnippetService
from repro.search.suggestions import SuggestionService
from repro.text.stemmer import stem
from repro.text.stopwords import is_stopword
from repro.text.tokenized import DocumentLike, TokenizedDocument
from repro.text.tokenizer import tokenize_lower
from repro.text.vectorize import DocumentFrequencyTable

import math

RelevantTerms = Tuple[Tuple[str, float], ...]

RESOURCE_SNIPPETS = "snippets"
RESOURCE_PRISMA = "prisma"
RESOURCE_SUGGESTIONS = "suggestions"
RESOURCES = (RESOURCE_SNIPPETS, RESOURCE_PRISMA, RESOURCE_SUGGESTIONS)


def stemmed_terms(text: DocumentLike) -> List[str]:
    """Stemmed, lower-cased, stopword-free content terms of *text*.

    A :class:`TokenizedDocument` returns its cached stemmed view (treat
    the result as read-only); a raw string is analysed from scratch.
    """
    if isinstance(text, TokenizedDocument):
        return text.stemmed_terms
    return [stem(word) for word in tokenize_lower(text) if not is_stopword(word)]


def build_stemmed_df(texts: Iterable[str]) -> DocumentFrequencyTable:
    """A document-frequency table over stemmed corpus text.

    Relevant keywords are stored stemmed, so their idf must be computed
    in stemmed space too.
    """
    table = DocumentFrequencyTable()
    for text in texts:
        table.add_document(stemmed_terms(text))
    return table


# -- process-pool plumbing -------------------------------------------------
#
# Worker processes are forked with the miner already constructed, so the
# engine/index state is inherited copy-on-write and never pickled.  Each
# work item is just (resource, [phrases...]); results are plain tuples.

_POOL_MINER: Optional["RelevantKeywordMiner"] = None


def _pool_initializer(miner: "RelevantKeywordMiner") -> None:
    global _POOL_MINER
    _POOL_MINER = miner


def _pool_mine_chunk(job: Tuple[str, List[str]]) -> List[RelevantTerms]:
    resource, phrases = job
    return [_POOL_MINER.mine(phrase, resource) for phrase in phrases]


def _pool_mine_chunk_with(
    miner: "RelevantKeywordMiner", job: Tuple[str, List[str]]
) -> List[RelevantTerms]:
    """Serial twin of :func:`_pool_mine_chunk` (fallback path)."""
    resource, phrases = job
    return [miner.mine(phrase, resource) for phrase in phrases]


def _chunked(items: Sequence, size: int) -> List[List]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


class RelevantKeywordMiner:
    """Mines relevantTerms_i for concepts from the three resources."""

    def __init__(
        self,
        snippet_service: SnippetService,
        prisma: PrismaTool,
        suggestions: SuggestionService,
        stemmed_df: DocumentFrequencyTable,
        keyword_count: int = 100,
    ):
        self._snippets = snippet_service
        self._prisma = prisma
        self._suggestions = suggestions
        self._df = stemmed_df
        self.keyword_count = keyword_count

    # -- per-resource mining ------------------------------------------------

    def mine_from_snippets(self, phrase: str) -> RelevantTerms:
        """tf*idf over the concatenated top-100 result snippets."""
        snippets = self._snippets.snippets_for_phrase(phrase, limit=100)
        return self._tf_idf_keywords(phrase, " ".join(snippets))

    def mine_from_prisma(self, phrase: str) -> RelevantTerms:
        """tf*idf over the (at most twenty) Prisma feedback terms."""
        feedback = self._prisma.feedback(phrase)
        document = " ".join(term for term, __ in feedback)
        return self._tf_idf_keywords(phrase, document)

    def mine_from_suggestions(self, phrase: str) -> RelevantTerms:
        """sum_k ln(freq_k) * idf scoring over related-query suggestions."""
        concept_stems = set(stemmed_terms(phrase))
        scores: Dict[str, float] = {}
        for suggestion, frequency in self._suggestions.suggest(phrase):
            log_freq = math.log(max(2, frequency))
            for term in set(stemmed_terms(suggestion)):
                if term in concept_stems:
                    continue
                scores[term] = scores.get(term, 0.0) + log_freq
        weighted = {
            term: value * self._df.raw_idf(term) for term, value in scores.items()
        }
        return self._top_terms(weighted)

    def mine(self, phrase: str, resource: str) -> RelevantTerms:
        """Dispatch by resource name (one of :data:`RESOURCES`)."""
        if resource == RESOURCE_SNIPPETS:
            return self.mine_from_snippets(phrase)
        if resource == RESOURCE_PRISMA:
            return self.mine_from_prisma(phrase)
        if resource == RESOURCE_SUGGESTIONS:
            return self.mine_from_suggestions(phrase)
        raise ValueError(f"unknown resource: {resource!r}")

    def mine_many(
        self,
        phrases: Sequence[str],
        resources: Sequence[str] = RESOURCES,
        workers: Optional[int] = None,
        chunk_size: int = 32,
    ) -> Dict[str, Dict[str, RelevantTerms]]:
        """Fan per-(resource, phrase) mining across a process pool.

        Returns ``{resource: {phrase: terms}}`` with the inner dicts in
        input phrase order.  The work list is chunked per resource and
        dispatched through ``ProcessPoolExecutor.map``, whose ordered
        semantics give a deterministic merge: results are identical to
        the serial loop no matter how chunks land on workers.  With one
        worker (or when a pool cannot be spawned) the serial path runs
        in-process.
        """
        phrases = list(phrases)
        jobs = [
            (resource, chunk)
            for resource in resources
            for chunk in _chunked(phrases, max(1, chunk_size))
        ]
        if workers is None:
            workers = os.cpu_count() or 1
        chunk_results: List[List[RelevantTerms]]
        if workers > 1 and len(jobs) > 1:
            chunk_results = self._mine_jobs_parallel(jobs, workers)
        else:
            chunk_results = [_pool_mine_chunk_with(self, job) for job in jobs]
        merged: Dict[str, Dict[str, RelevantTerms]] = {
            resource: {} for resource in resources
        }
        for (resource, chunk), results in zip(jobs, chunk_results):
            merged[resource].update(zip(chunk, results))
        return merged

    def _mine_jobs_parallel(
        self, jobs: List[Tuple[str, List[str]]], workers: int
    ) -> List[List[RelevantTerms]]:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: stay serial
            return [_pool_mine_chunk_with(self, job) for job in jobs]
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs)),
                mp_context=context,
                initializer=_pool_initializer,
                initargs=(self,),
            ) as pool:
                return list(pool.map(_pool_mine_chunk, jobs))
        except OSError:  # fork refused (sandbox / rlimit): stay serial
            return [_pool_mine_chunk_with(self, job) for job in jobs]

    # -- helpers ---------------------------------------------------------

    def _tf_idf_keywords(self, phrase: str, document: str) -> RelevantTerms:
        concept_stems = set(stemmed_terms(phrase))
        counts = Counter(
            term for term in stemmed_terms(document) if term not in concept_stems
        )
        scores = {
            term: count * self._df.raw_idf(term) for term, count in counts.items()
        }
        return self._top_terms(scores)

    def _top_terms(self, scores: Dict[str, float]) -> RelevantTerms:
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return tuple(ranked[: self.keyword_count])


class RelevanceModel:
    """Offline store: concept phrase -> relevant terms with scores."""

    def __init__(self, entries: Dict[str, RelevantTerms]):
        self._entries = {phrase.lower(): terms for phrase, terms in entries.items()}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, phrase: str) -> bool:
        return phrase.lower() in self._entries

    def phrases(self) -> List[str]:
        return list(self._entries)

    def relevant_terms(self, phrase: str) -> RelevantTerms:
        return self._entries.get(phrase.lower(), ())

    def summation(self, phrase: str) -> float:
        """Sum of the concept's top-keyword scores (the Table II statistic)."""
        return sum(score for __, score in self._entries.get(phrase.lower(), ()))

    @classmethod
    def mine_all(
        cls,
        miner: RelevantKeywordMiner,
        phrases: Sequence[str],
        resource: str = RESOURCE_SNIPPETS,
        workers: int = 1,
    ) -> "RelevanceModel":
        """Run the offline mining for every phrase.

        ``workers > 1`` fans the phrase list across a process pool via
        :meth:`RelevantKeywordMiner.mine_many`; the merge preserves
        input order, so the resulting model is identical to the serial
        build.
        """
        if workers > 1:
            mined = miner.mine_many(phrases, (resource,), workers=workers)
            return cls(mined[resource])
        return cls({phrase: miner.mine(phrase, resource) for phrase in phrases})


class RelevanceScorer:
    """Runtime relevance of a concept in a context (Section IV-B)."""

    def __init__(self, model: RelevanceModel):
        self._model = model

    @staticmethod
    def context_stems(text: DocumentLike) -> Set[str]:
        """The stemmed term set of a context, computed once per document."""
        if isinstance(text, TokenizedDocument):
            return text.stem_set
        return set(stemmed_terms(text))

    def score(self, phrase: str, context: Set[str]) -> float:
        """Summed score of the concept's keywords present in *context*.

        The absolute (un-normalized) sum is intentional: junk concepts
        have low-scoring keywords, so their ceiling is low in *any*
        context — the safety-net property.
        """
        return sum(
            score
            for term, score in self._model.relevant_terms(phrase)
            if term in context
        )

    def score_many(self, phrases: Sequence[str], context: Set[str]) -> List[float]:
        """Per-phrase scores for one shared context.

        The reference implementation just loops; store-backed scorers
        override this with a single vectorized arena pass.
        """
        return [self.score(phrase, context) for phrase in phrases]

    def score_text(self, phrase: str, text: str) -> float:
        return self.score(phrase, self.context_stems(text))
