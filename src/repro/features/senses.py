"""Sense clustering for ambiguous concepts (paper Section IV-C).

"If a concept is ambiguous, then the relevant keywords mined might have
low final scores, as they would not cluster well globally.  However,
there would be some good local clusters, depending on the number of
senses, and if such clusters can be identified then the scores can be
boosted.  A number of techniques, including ones that are based on
latent semantic analysis, can potentially be useful for this problem."

This module implements that proposal: snippets are embedded with LSA
(truncated SVD of the tf*idf snippet-term matrix), clustered with
k-means (k chosen by within-cluster dispersion improvement), and
relevant keywords are mined *per sense*.  The sense-aware relevance of
a concept in a context is the best single sense's keyword overlap — so
a "jaguar" page about cars matches the car sense at full strength
instead of a diluted global average.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.features.relevance import RelevantTerms, stemmed_terms
from repro.search.snippets import SnippetService
from repro.text.vectorize import DocumentFrequencyTable


def kmeans(
    points: np.ndarray, k: int, seed: int = 0, iterations: int = 30
) -> Tuple[np.ndarray, float]:
    """Plain k-means on rows of *points*.

    Returns (labels, total within-cluster squared distance).  Centroids
    are initialized k-means++-style from a seeded generator.
    """
    count = points.shape[0]
    if k <= 0 or k > count:
        raise ValueError("k must be in 1..len(points)")
    rng = np.random.default_rng(seed)
    centroids = [points[int(rng.integers(count))]]
    while len(centroids) < k:
        distances = np.min(
            [((points - c) ** 2).sum(axis=1) for c in centroids], axis=0
        )
        total = distances.sum()
        if total <= 0:
            centroids.append(points[int(rng.integers(count))])
            continue
        centroids.append(points[int(rng.choice(count, p=distances / total))])
    centers = np.vstack(centroids)
    labels = np.zeros(count, dtype=int)
    for __ in range(iterations):
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if (new_labels == labels).all() and __ > 0:
            break
        labels = new_labels
        for index in range(k):
            members = points[labels == index]
            if len(members):
                centers[index] = members.mean(axis=0)
    inertia = float(
        ((points - centers[labels]) ** 2).sum()
    )
    return labels, inertia


@dataclass
class SenseModel:
    """Per-sense relevant keywords of one concept."""

    phrase: str
    senses: List[RelevantTerms]

    @property
    def sense_count(self) -> int:
        return len(self.senses)

    def score(self, context: Set[str]) -> float:
        """Sense-aware relevance: the best single sense's overlap."""
        best = 0.0
        for sense in self.senses:
            total = sum(score for term, score in sense if term in context)
            best = max(best, total)
        return best


class LsaSenseMiner:
    """Mines per-sense relevant keywords via LSA + k-means."""

    def __init__(
        self,
        snippet_service: SnippetService,
        stemmed_df: DocumentFrequencyTable,
        lsa_dims: int = 12,
        max_senses: int = 3,
        keyword_count: int = 100,
        min_cluster_size: int = 5,
        improvement_threshold: float = 0.25,
        seed: int = 0,
    ):
        self._snippets = snippet_service
        self._df = stemmed_df
        self.lsa_dims = lsa_dims
        self.max_senses = max_senses
        self.keyword_count = keyword_count
        self.min_cluster_size = min_cluster_size
        self.improvement_threshold = improvement_threshold
        self.seed = seed

    # -- embedding -------------------------------------------------------

    def _snippet_matrix(
        self, snippets: Sequence[str], concept_stems: Set[str]
    ) -> Tuple[np.ndarray, List[str]]:
        """Row-normalized tf*idf matrix over the snippet set's terms."""
        term_index: Dict[str, int] = {}
        rows: List[Counter] = []
        for snippet in snippets:
            counts = Counter(
                term
                for term in stemmed_terms(snippet)
                if term not in concept_stems
            )
            rows.append(counts)
            for term in counts:
                term_index.setdefault(term, len(term_index))
        matrix = np.zeros((len(snippets), len(term_index)))
        for row_id, counts in enumerate(rows):
            for term, count in counts.items():
                matrix[row_id, term_index[term]] = count * self._df.raw_idf(term)
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        terms = [None] * len(term_index)
        for term, index in term_index.items():
            terms[index] = term
        return matrix / norms, terms

    def _lsa(self, matrix: np.ndarray) -> np.ndarray:
        """Truncated-SVD embedding of the snippet rows."""
        if min(matrix.shape) == 0:
            return np.zeros((matrix.shape[0], 1))
        dims = min(self.lsa_dims, min(matrix.shape))
        u, s, __ = np.linalg.svd(matrix, full_matrices=False)
        return u[:, :dims] * s[:dims]

    def _choose_clustering(self, embedded: np.ndarray) -> np.ndarray:
        """Pick the sense count by relative inertia improvement."""
        count = embedded.shape[0]
        best_labels = np.zeros(count, dtype=int)
        if count < 2 * self.min_cluster_size:
            return best_labels
        __, previous_inertia = kmeans(embedded, 1, seed=self.seed)
        for k in range(2, self.max_senses + 1):
            if count < k * self.min_cluster_size:
                break
            labels, inertia = kmeans(embedded, k, seed=self.seed)
            sizes = np.bincount(labels, minlength=k)
            if sizes.min() < self.min_cluster_size:
                break
            if previous_inertia <= 0:
                break
            improvement = 1.0 - inertia / previous_inertia
            if improvement < self.improvement_threshold:
                break
            best_labels = labels
            previous_inertia = inertia
        return best_labels

    # -- mining -------------------------------------------------------------

    def _keywords_for(
        self, snippets: Sequence[str], concept_stems: Set[str]
    ) -> RelevantTerms:
        counts = Counter(
            term
            for snippet in snippets
            for term in stemmed_terms(snippet)
            if term not in concept_stems
        )
        scored = {
            term: count * self._df.raw_idf(term) for term, count in counts.items()
        }
        ranked = sorted(scored.items(), key=lambda kv: (-kv[1], kv[0]))
        return tuple(ranked[: self.keyword_count])

    def mine(self, phrase: str, snippet_limit: int = 100) -> SenseModel:
        """Mine the sense model for *phrase*."""
        snippets = self._snippets.snippets_for_phrase(phrase, limit=snippet_limit)
        concept_stems = set(stemmed_terms(phrase))
        if not snippets:
            return SenseModel(phrase=phrase.lower(), senses=[])
        matrix, __ = self._snippet_matrix(snippets, concept_stems)
        embedded = self._lsa(matrix)
        labels = self._choose_clustering(embedded)
        senses: List[RelevantTerms] = []
        for sense_id in sorted(set(labels.tolist())):
            members = [s for s, label in zip(snippets, labels) if label == sense_id]
            senses.append(self._keywords_for(members, concept_stems))
        return SenseModel(phrase=phrase.lower(), senses=senses)


class SenseAwareRelevanceScorer:
    """Drop-in relevance scorer backed by per-sense keyword models."""

    def __init__(self, models: Dict[str, SenseModel]):
        self._models = {phrase.lower(): model for phrase, model in models.items()}

    @staticmethod
    def context_stems(text: str) -> Set[str]:
        return set(stemmed_terms(text))

    def score(self, phrase: str, context: Set[str]) -> float:
        model = self._models.get(phrase.lower())
        if model is None:
            return 0.0
        return model.score(context)

    def score_text(self, phrase: str, text: str) -> float:
        return self.score(phrase, self.context_stems(text))

    def sense_count(self, phrase: str) -> int:
        model = self._models.get(phrase.lower())
        return model.sense_count if model else 0
