"""Feature space: interestingness (Table I) and contextual relevance."""

from repro.features.interestingness import (
    FEATURE_GROUPS,
    FEATURE_NAMES,
    InterestingnessExtractor,
    InterestingnessVector,
    numeric_feature_names,
)
from repro.features.quantize import (
    dequantize,
    dequantize_array,
    quantize,
    quantize_array,
)
from repro.features.selection import (
    SelectionResult,
    SelectionStep,
    backward_eliminate,
)
from repro.features.senses import (
    LsaSenseMiner,
    SenseAwareRelevanceScorer,
    SenseModel,
    kmeans,
)
from repro.features.relevance import (
    RESOURCE_PRISMA,
    RESOURCE_SNIPPETS,
    RESOURCE_SUGGESTIONS,
    RESOURCES,
    RelevanceModel,
    RelevanceScorer,
    RelevantKeywordMiner,
    build_stemmed_df,
    stemmed_terms,
)

__all__ = [
    "FEATURE_GROUPS",
    "FEATURE_NAMES",
    "InterestingnessExtractor",
    "InterestingnessVector",
    "numeric_feature_names",
    "quantize",
    "dequantize",
    "quantize_array",
    "dequantize_array",
    "RESOURCE_PRISMA",
    "RESOURCE_SNIPPETS",
    "RESOURCE_SUGGESTIONS",
    "RESOURCES",
    "SelectionResult",
    "SelectionStep",
    "backward_eliminate",
    "LsaSenseMiner",
    "SenseAwareRelevanceScorer",
    "SenseModel",
    "kmeans",
    "RelevanceModel",
    "RelevanceScorer",
    "RelevantKeywordMiner",
    "build_stemmed_df",
    "stemmed_terms",
]
