"""The interestingness feature space (paper Table I).

Nine features per concept, grouped exactly as the paper's ablation
rows (Table III):

====  ======================  ==============
 #    feature                 group
====  ======================  ==============
 1    freq_exact              query_logs
 2    freq_phrase_contained   query_logs
 3    unit_score              query_logs
 4    searchengine_phrase     search_results
 5    concept_size            text_based
 6    number_of_chars         text_based
 7    subconcepts             text_based
 8    high_level_type         taxonomy
 9    wiki_word_count         other
====  ======================  ==============

All features are computed offline per concept (Section III); the
runtime framework stores them quantized (Section VI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.dictionaries import EditorialDictionary
from repro.corpus.concepts import TAXONOMY_TYPES
from repro.corpus.wikipedia import WikipediaStore
from repro.querylog.log import QueryLog
from repro.querylog.units import UnitLexicon
from repro.search.engine import SearchEngine

FEATURE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "query_logs": ("freq_exact", "freq_phrase_contained", "unit_score"),
    "search_results": ("searchengine_phrase",),
    "text_based": ("concept_size", "number_of_chars", "subconcepts"),
    "taxonomy": ("high_level_type",),
    "other": ("wiki_word_count",),
}

FEATURE_NAMES: Tuple[str, ...] = tuple(
    name for group in FEATURE_GROUPS.values() for name in group
)

# unit-score floor for counting subconcepts (paper: "larger than 0.25")
_SUBCONCEPT_UNIT_FLOOR = 0.25


@dataclass(frozen=True)
class InterestingnessVector:
    """The raw 9-field feature vector of one concept."""

    phrase: str
    freq_exact: int
    freq_phrase_contained: int
    unit_score: float
    searchengine_phrase: int
    concept_size: int
    number_of_chars: int
    subconcepts: int
    high_level_type: Optional[str]
    wiki_word_count: int

    def value(self, name: str):
        return getattr(self, name)

    def numeric(
        self, exclude_groups: Sequence[str] = ()
    ) -> "np.ndarray":
        """Model-ready numeric encoding.

        Count features are log1p-compressed (their raw scales span
        orders of magnitude); the taxonomy type is one-hot encoded over
        the fixed type inventory (plus a "none" slot).  *exclude_groups*
        zeroes nothing — excluded features are simply omitted, which is
        how the leave-one-group-out ablation works.
        """
        excluded = set()
        for group in exclude_groups:
            excluded.update(FEATURE_GROUPS[group])
        values: List[float] = []
        if "freq_exact" not in excluded:
            values.append(math.log1p(self.freq_exact))
        if "freq_phrase_contained" not in excluded:
            values.append(math.log1p(self.freq_phrase_contained))
        if "unit_score" not in excluded:
            values.append(self.unit_score)
        if "searchengine_phrase" not in excluded:
            values.append(math.log1p(self.searchengine_phrase))
        if "concept_size" not in excluded:
            values.append(float(self.concept_size))
        if "number_of_chars" not in excluded:
            values.append(float(self.number_of_chars))
        if "subconcepts" not in excluded:
            values.append(float(self.subconcepts))
        if "high_level_type" not in excluded:
            one_hot = [0.0] * (len(TAXONOMY_TYPES) + 1)
            if self.high_level_type is None:
                one_hot[0] = 1.0
            else:
                one_hot[1 + TAXONOMY_TYPES.index(self.high_level_type)] = 1.0
            values.extend(one_hot)
        if "wiki_word_count" not in excluded:
            values.append(math.log1p(self.wiki_word_count))
        return np.asarray(values, dtype=float)


def numeric_feature_names(exclude_groups: Sequence[str] = ()) -> List[str]:
    """Column names matching :meth:`InterestingnessVector.numeric`."""
    excluded = set()
    for group in exclude_groups:
        excluded.update(FEATURE_GROUPS[group])
    names: List[str] = []
    for name in FEATURE_NAMES:
        if name in excluded:
            continue
        if name == "high_level_type":
            names.append("type:none")
            names.extend(f"type:{t}" for t in TAXONOMY_TYPES)
        else:
            names.append(name)
    return names


class InterestingnessExtractor:
    """Computes Table I feature vectors from the substrate services."""

    def __init__(
        self,
        query_log: QueryLog,
        lexicon: UnitLexicon,
        engine: SearchEngine,
        dictionary: EditorialDictionary,
        wikipedia: WikipediaStore,
    ):
        self._log = query_log
        self._lexicon = lexicon
        self._engine = engine
        self._dictionary = dictionary
        self._wikipedia = wikipedia

    def extract(self, phrase: str) -> InterestingnessVector:
        """The full feature vector for *phrase*."""
        terms = tuple(phrase.lower().split())
        return InterestingnessVector(
            phrase=phrase.lower(),
            freq_exact=self._log.freq_exact(terms),
            freq_phrase_contained=self._log.freq_phrase_contained(terms),
            unit_score=self._lexicon.score(terms),
            searchengine_phrase=self._engine.phrase_result_count(phrase),
            concept_size=len(terms),
            number_of_chars=len(phrase),
            subconcepts=self._count_subconcepts(terms),
            high_level_type=self._dictionary.high_level_type(phrase),
            wiki_word_count=self._wikipedia.word_count(phrase),
        )

    def extract_many(self, phrases: Sequence[str]) -> List[InterestingnessVector]:
        return [self.extract(phrase) for phrase in phrases]

    def _count_subconcepts(self, terms: Tuple[str, ...]) -> int:
        """Proper contiguous sub-phrases (>= 2 terms) that are strong units."""
        count = 0
        for size in range(2, len(terms)):
            for start in range(len(terms) - size + 1):
                sub = terms[start : start + size]
                if self._lexicon.score(sub) > _SUBCONCEPT_UNIT_FLOOR:
                    count += 1
        return count
