"""Feature selection (the paper's Section IV-A process, made explicit).

The paper repeatedly reports features "eliminated during [the] feature
selection process" (cosine-similarity query variants, the regular-query
result count, idf-derived features).  This module implements that
process: greedy backward elimination of feature *columns* (or groups)
by cross-validated weighted error rate — remove the feature whose
removal helps most, stop when nothing helps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.error_rate import grouped_errors
from repro.ranking.ranksvm import RankSVM


@dataclass
class SelectionStep:
    """One elimination round's outcome."""

    removed: Optional[str]  # None on the initial (full set) step
    kept: Tuple[str, ...]
    weighted_error_rate: float


@dataclass
class SelectionResult:
    """The full elimination trace and the selected feature set."""

    steps: List[SelectionStep] = field(default_factory=list)

    @property
    def selected(self) -> Tuple[str, ...]:
        return self.steps[-1].kept if self.steps else ()

    @property
    def eliminated(self) -> Tuple[str, ...]:
        names: List[str] = []
        for step in self.steps:
            if step.removed is not None:
                names.append(step.removed)
        return tuple(names)

    @property
    def final_error(self) -> float:
        return self.steps[-1].weighted_error_rate if self.steps else 1.0


def _cv_error(
    features: np.ndarray,
    labels: np.ndarray,
    groups: np.ndarray,
    folds: np.ndarray,
    make_model: Callable[[], RankSVM],
) -> float:
    scores = np.zeros(labels.shape[0])
    for fold in np.unique(folds):
        train = folds != fold
        test = ~train
        if not test.any() or not train.any():
            continue
        model = make_model()
        model.fit(features[train], labels[train], groups[train])
        scores[test] = model.decision_function(features[test])
    return grouped_errors(labels, scores, groups).weighted_error_rate


def backward_eliminate(
    features: np.ndarray,
    labels: Sequence[float],
    groups: Sequence[int],
    feature_names: Sequence[str],
    folds: int = 3,
    min_improvement: float = 0.0,
    min_features: int = 1,
    make_model: Optional[Callable[[], RankSVM]] = None,
    fold_seed: int = 5,
) -> SelectionResult:
    """Greedy backward elimination over feature columns.

    At each round, every remaining feature is tentatively dropped and
    the cross-validated WER re-measured; the drop with the best error
    is kept if it improves on the current error by more than
    *min_improvement*.  Deterministic given the seed.
    """
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=float)
    groups = np.asarray(groups)
    names = list(feature_names)
    if features.shape[1] != len(names):
        raise ValueError("feature_names must match feature columns")
    if make_model is None:
        make_model = lambda: RankSVM(epochs=120)  # noqa: E731

    rng = np.random.default_rng(fold_seed)
    unique_groups = np.unique(groups)
    fold_of = {
        int(g): int(f)
        for g, f in zip(unique_groups, rng.integers(0, folds, unique_groups.size))
    }
    fold_array = np.asarray([fold_of[int(g)] for g in groups])

    kept = list(range(len(names)))
    current = _cv_error(
        features[:, kept], labels, groups, fold_array, make_model
    )
    result = SelectionResult(
        steps=[
            SelectionStep(
                removed=None,
                kept=tuple(names[i] for i in kept),
                weighted_error_rate=current,
            )
        ]
    )

    while len(kept) > min_features:
        candidates: List[Tuple[float, int]] = []
        for position, column in enumerate(kept):
            trial = kept[:position] + kept[position + 1 :]
            error = _cv_error(
                features[:, trial], labels, groups, fold_array, make_model
            )
            candidates.append((error, column))
        best_error, best_column = min(candidates)
        if best_error > current - min_improvement:
            break
        kept.remove(best_column)
        current = best_error
        result.steps.append(
            SelectionStep(
                removed=names[best_column],
                kept=tuple(names[i] for i in kept),
                weighted_error_rate=current,
            )
        )
    return result
