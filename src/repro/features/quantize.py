"""Fixed-width quantization for the production stores (Section VI).

The framework fits each interestingness field into **two bytes** ("this
causes a minor decrease in granularity") and each relevant-keyword
score into **ten bits** (0..1023), packed next to a 22-bit term id.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def quantize(value: float, max_value: float, bits: int) -> int:
    """Map *value* in [0, max_value] to an unsigned *bits*-bit integer.

    Values are clamped; max_value <= 0 maps everything to 0.
    """
    if bits <= 0 or bits > 32:
        raise ValueError("bits must be in 1..32")
    levels = (1 << bits) - 1
    if max_value <= 0:
        return 0
    scaled = round(float(value) / float(max_value) * levels)
    return int(min(max(scaled, 0), levels))


def dequantize(code: int, max_value: float, bits: int) -> float:
    """Inverse of :func:`quantize` (up to quantization error)."""
    levels = (1 << bits) - 1
    if levels == 0 or max_value <= 0:
        return 0.0
    return float(code) / levels * float(max_value)


def quantize_array(
    values: Sequence[float], max_values: Sequence[float], bits: int = 16
) -> np.ndarray:
    """Quantize a feature vector field-by-field (2-byte fields by default)."""
    if len(values) != len(max_values):
        raise ValueError("values and max_values must align")
    return np.array(
        [quantize(v, m, bits) for v, m in zip(values, max_values)],
        dtype=np.uint32,
    )


def dequantize_array(
    codes: Sequence[int], max_values: Sequence[float], bits: int = 16
) -> np.ndarray:
    if len(codes) != len(max_values):
        raise ValueError("codes and max_values must align")
    return np.array(
        [dequantize(c, m, bits) for c, m in zip(codes, max_values)], dtype=float
    )
