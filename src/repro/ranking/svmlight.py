"""SVMlight ranking file format (Joachims' ranking SVM input).

The paper trains with "an open source library for ranking SVM ...
available in SVMlight" [9].  This module writes and reads that format
so datasets built here can be trained with external SVM tooling (and
externally-prepared data can be evaluated here):

    <label> qid:<group> <index>:<value> ... # optional comment

Feature indices are 1-based and must be ascending; zero values are
omitted, as SVMlight expects.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, Path]


def dump_ranking_file(
    path: PathLike,
    features: np.ndarray,
    labels: Sequence[float],
    groups: Sequence[int],
    comments: Optional[Sequence[str]] = None,
) -> None:
    """Write instances in SVMlight ranking format, grouped by qid.

    Rows are emitted sorted by group so qid blocks are contiguous, which
    svm_rank requires.
    """
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=float)
    groups = np.asarray(groups)
    if not (len(features) == len(labels) == len(groups)):
        raise ValueError("features, labels, groups must align")
    if comments is not None and len(comments) != len(labels):
        raise ValueError("comments must align with instances")
    order = np.argsort(groups, kind="stable")
    with open(path, "w") as handle:
        for row in order:
            parts = [f"{labels[row]:.6g}", f"qid:{int(groups[row])}"]
            for index, value in enumerate(features[row], start=1):
                if value != 0.0:
                    parts.append(f"{index}:{value:.6g}")
            line = " ".join(parts)
            if comments is not None:
                line += f" # {comments[row]}"
            handle.write(line + "\n")


def load_ranking_file(
    path: PathLike,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Optional[str]]]:
    """Read an SVMlight ranking file.

    Returns (features, labels, groups, comments); the feature matrix is
    dense with width equal to the maximum feature index seen.
    """
    labels: List[float] = []
    groups: List[int] = []
    rows: List[List[Tuple[int, float]]] = []
    comments: List[Optional[str]] = []
    max_index = 0
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            comment: Optional[str] = None
            if "#" in line:
                line, comment = line.split("#", 1)
                comment = comment.strip()
                line = line.strip()
            parts = line.split()
            if len(parts) < 2 or not parts[1].startswith("qid:"):
                raise ValueError(
                    f"{path}:{line_number}: expected '<label> qid:<id> ...'"
                )
            labels.append(float(parts[0]))
            groups.append(int(parts[1][4:]))
            row: List[Tuple[int, float]] = []
            previous_index = 0
            for token in parts[2:]:
                index_text, value_text = token.split(":", 1)
                index = int(index_text)
                if index <= previous_index:
                    raise ValueError(
                        f"{path}:{line_number}: feature indices must ascend"
                    )
                previous_index = index
                row.append((index, float(value_text)))
                max_index = max(max_index, index)
            rows.append(row)
            comments.append(comment)
    features = np.zeros((len(rows), max_index))
    for row_id, row in enumerate(rows):
        for index, value in row:
            features[row_id, index - 1] = value
    return features, np.asarray(labels), np.asarray(groups), comments
