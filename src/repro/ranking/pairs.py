"""Pairwise preference construction for ranking SVMs.

"We use an implementation of ranking SVM to learn a ranking function
between pairs of instances.  In our case, each instance consists of the
entity/concept along with its associated features, and the label of
each instance is its CTR value" (Section III).  Preference pairs are
formed *within* a document window: entity A is preferred over entity B
when CTR(A) > CTR(B) by at least a configurable gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class PairSet:
    """Difference vectors and preference weights for training."""

    differences: np.ndarray  # shape (n_pairs, n_features); preferred - other
    weights: np.ndarray  # per-pair importance (CTR differences)

    @property
    def count(self) -> int:
        return int(self.differences.shape[0])


def build_pairs(
    features: np.ndarray,
    labels: Sequence[float],
    groups: Sequence[int],
    min_label_gap: float = 0.0,
    max_pairs_per_group: int = 200,
    rng: np.random.Generator = None,
) -> PairSet:
    """Build within-group preference pairs.

    For every group, every ordered pair (i, j) with
    ``labels[i] > labels[j] + min_label_gap`` yields the difference
    vector ``features[i] - features[j]`` with weight
    ``labels[i] - labels[j]``.  Groups with excessive pair counts are
    subsampled to *max_pairs_per_group* (deterministically when *rng*
    is None).
    """
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=float)
    groups = np.asarray(groups)
    if features.shape[0] != labels.shape[0] or labels.shape[0] != groups.shape[0]:
        raise ValueError("features, labels, groups must align")

    differences: List[np.ndarray] = []
    weights: List[float] = []
    for group in np.unique(groups):
        indices = np.flatnonzero(groups == group)
        pairs: List[Tuple[int, int]] = []
        for a_pos, a in enumerate(indices):
            for b in indices[a_pos + 1 :]:
                if labels[a] > labels[b] + min_label_gap:
                    pairs.append((a, b))
                elif labels[b] > labels[a] + min_label_gap:
                    pairs.append((b, a))
        if len(pairs) > max_pairs_per_group:
            if rng is None:
                step = len(pairs) / max_pairs_per_group
                pairs = [pairs[int(i * step)] for i in range(max_pairs_per_group)]
            else:
                chosen = rng.choice(len(pairs), size=max_pairs_per_group, replace=False)
                pairs = [pairs[int(i)] for i in chosen]
        for preferred, other in pairs:
            differences.append(features[preferred] - features[other])
            weights.append(labels[preferred] - labels[other])

    if not differences:
        n_features = features.shape[1] if features.ndim == 2 else 0
        return PairSet(
            differences=np.zeros((0, n_features)), weights=np.zeros(0)
        )
    return PairSet(
        differences=np.vstack(differences), weights=np.asarray(weights, dtype=float)
    )
