"""Ranking SVM, implemented from scratch.

The paper uses the ranking SVM of Joachims (SVMlight) / LIBLINEAR with
"both linear and the radial basis function kernels" (Section V-A.3).
Neither library can be vendored here, so we implement the pairwise
hinge-loss SVM directly:

* **linear** — full-batch projected subgradient descent on the L2-
  regularized hinge loss over preference-difference vectors, with
  Polyak-style iterate averaging (deterministic, no data shuffling);
* **rbf** — the same linear machine on top of a random Fourier feature
  map (Rahimi & Recht), which approximates the RBF kernel while keeping
  training linear.

Features are standardized internally (zero mean, unit variance over the
training instances), which the subgradient method needs to behave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.ranking.pairs import PairSet, build_pairs

KERNEL_LINEAR = "linear"
KERNEL_RBF = "rbf"


class StandardScaler:
    """Per-feature standardization fitted on training data."""

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=float)
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        # A float64 ndarray passes through asarray untouched, so the
        # subtraction's fresh output can host the division in place —
        # one temporary instead of two, and the input is never mutated.
        features = np.asarray(features, dtype=float)
        out = features - self.mean_
        np.divide(out, self.scale_, out=out)
        return out


class RandomFourierFeatures:
    """Random Fourier feature map approximating an RBF kernel."""

    def __init__(self, gamma: float = 0.5, n_components: int = 200, seed: int = 13):
        self.gamma = gamma
        self.n_components = n_components
        self.seed = seed
        self._weights: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "RandomFourierFeatures":
        rng = np.random.default_rng(self.seed)
        n_features = np.asarray(features).shape[1]
        self._weights = rng.normal(
            0.0, np.sqrt(2.0 * self.gamma), size=(n_features, self.n_components)
        )
        self._offsets = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("feature map is not fitted")
        projection = np.asarray(features, dtype=float) @ self._weights + self._offsets
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)


@dataclass
class RankSVM:
    """Pairwise ranking SVM with linear or RBF (random-features) kernel.

    Parameters mirror the usual SVM knobs: *c* is the inverse
    regularization strength; *epochs* bounds the subgradient iterations.
    ``weight_pairs_by_label_gap`` weights each pair's loss by its CTR
    difference, matching the weighted-error-rate objective the paper
    evaluates with.
    """

    c: float = 1.0
    epochs: int = 300
    kernel: str = KERNEL_LINEAR
    gamma: float = 0.5
    n_components: int = 200
    min_label_gap: float = 0.0
    max_pairs_per_group: int = 200
    weight_pairs_by_label_gap: bool = False
    seed: int = 13

    weights_: Optional[np.ndarray] = field(default=None, repr=False)
    _scaler: StandardScaler = field(default_factory=StandardScaler, repr=False)
    _feature_map: Optional[RandomFourierFeatures] = field(default=None, repr=False)

    # -- internal ---------------------------------------------------------

    def _embed(self, features: np.ndarray) -> np.ndarray:
        embedded = self._scaler.transform(features)
        if self._feature_map is not None:
            embedded = self._feature_map.transform(embedded)
        return embedded

    def _optimize(self, pairs: PairSet) -> np.ndarray:
        """Full-batch subgradient descent with iterate averaging."""
        n_features = pairs.differences.shape[1]
        if pairs.count == 0:
            return np.zeros(n_features)
        diffs = pairs.differences
        if self.weight_pairs_by_label_gap:
            pair_weights = pairs.weights / max(pairs.weights.max(), 1e-12)
        else:
            pair_weights = np.ones(pairs.count)
        lam = 1.0 / (self.c * pairs.count)

        weights = np.zeros(n_features)
        averaged = np.zeros(n_features)
        for epoch in range(1, self.epochs + 1):
            margins = diffs @ weights
            violating = margins < 1.0
            if violating.any():
                grad = lam * weights - (
                    pair_weights[violating, None] * diffs[violating]
                ).sum(axis=0) / pairs.count
            else:
                grad = lam * weights
            step = 1.0 / (lam * epoch + 10.0)
            weights = weights - step * grad
            averaged += weights
        return averaged / self.epochs

    # -- public API ------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        labels: Sequence[float],
        groups: Sequence[int],
    ) -> "RankSVM":
        """Learn the ranking function from grouped, CTR-labeled instances."""
        features = np.asarray(features, dtype=float)
        self._scaler.fit(features)
        embedded = self._scaler.transform(features)
        if self.kernel == KERNEL_RBF:
            self._feature_map = RandomFourierFeatures(
                gamma=self.gamma, n_components=self.n_components, seed=self.seed
            ).fit(embedded)
            embedded = self._feature_map.transform(embedded)
        elif self.kernel != KERNEL_LINEAR:
            raise ValueError(f"unknown kernel: {self.kernel!r}")
        pairs = build_pairs(
            embedded,
            labels,
            groups,
            min_label_gap=self.min_label_gap,
            max_pairs_per_group=self.max_pairs_per_group,
        )
        self.weights_ = self._optimize(pairs)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Ranking scores; higher means ranked earlier."""
        if self.weights_ is None:
            raise RuntimeError("model is not fitted")
        return self._embed(np.asarray(features, dtype=float)) @ self.weights_

    @property
    def is_linear(self) -> bool:
        """True when scores decompose additively over the input features."""
        return self.kernel == KERNEL_LINEAR and self._feature_map is None

    def standardize(self, features: np.ndarray) -> np.ndarray:
        """The fitted scaler's view of *features* (no kernel map)."""
        return self._scaler.transform(np.asarray(features, dtype=float))

    def feature_contributions(self, features: np.ndarray) -> np.ndarray:
        """Per-feature additive contributions to the decision scores.

        For the linear kernel the decision function is
        ``((x - mean) / scale) @ w``, so each input feature owns the
        exact additive term ``w_j * (x_j - mean_j) / scale_j`` and the
        row sums reproduce :meth:`decision_function`.  The RBF
        random-features map mixes every input into every component, so
        no exact per-feature decomposition exists there.
        """
        if self.weights_ is None:
            raise RuntimeError("model is not fitted")
        if not self.is_linear:
            raise ValueError(
                "feature contributions are only exact for the linear kernel"
            )
        return self.standardize(features) * self.weights_

    def rank(self, features: np.ndarray) -> np.ndarray:
        """Indices of instances from best to worst."""
        scores = self.decision_function(features)
        return np.argsort(-scores, kind="stable")

    def pairwise_accuracy(
        self,
        features: np.ndarray,
        labels: Sequence[float],
        groups: Sequence[int],
    ) -> float:
        """Fraction of within-group preference pairs ordered correctly."""
        scores = self.decision_function(features)
        labels = np.asarray(labels, dtype=float)
        groups = np.asarray(groups)
        correct = total = 0
        for group in np.unique(groups):
            indices = np.flatnonzero(groups == group)
            for a_pos, a in enumerate(indices):
                for b in indices[a_pos + 1 :]:
                    if labels[a] == labels[b]:
                        continue
                    total += 1
                    preferred, other = (a, b) if labels[a] > labels[b] else (b, a)
                    if scores[preferred] > scores[other]:
                        correct += 1
        return correct / total if total else 1.0
