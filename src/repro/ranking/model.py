"""The combined ranking model: features -> RankSVM -> ordered concepts.

This is the object the paper deploys: interestingness features plus the
snippet-based relevance score feed a trained ranking SVM; at runtime a
document's candidate concepts are ranked in decreasing order of
predicted interestingness-and-relevance, with relevance used as the
tie-breaker (Section V-A.6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.detection.pipeline import AnnotatedDocument
from repro.detection.base import Detection
from repro.features.interestingness import (
    InterestingnessExtractor,
    numeric_feature_names,
)
from repro.features.relevance import RelevanceScorer
from repro.ranking.baselines import tie_break_by_relevance
from repro.ranking.ranksvm import RankSVM
from repro.text.tokenized import DocumentLike


@dataclass
class FeatureAssembler:
    """Builds model feature matrices for (phrase, context) instances.

    *extractor* supplies Table I interestingness vectors (typically via
    a precomputed store); *relevance_scorer* supplies the contextual
    relevance feature and may be None for an interestingness-only model.
    *exclude_groups* removes feature groups for the Table III ablations.
    """

    extractor: InterestingnessExtractor
    relevance_scorer: Optional[RelevanceScorer] = None
    exclude_groups: Tuple[str, ...] = ()

    def __post_init__(self):
        # Per-phrase numeric-vector memo, used only when the extractor
        # declares a content version (the quantized store does; a live
        # extractor does not and is never cached).  The tag pins both
        # the extractor instance and its version, so swapping either
        # invalidates exactly.  Cached rows live in one 2-D arena so a
        # document's matrix is a single fancy-index gather; the dict
        # maps phrase -> arena row.
        self._numeric_cache: dict = {}
        self._numeric_cache_tag = None
        self._numeric_arena: Optional[np.ndarray] = None
        self._numeric_used = 0

    def _numeric_indices(self, phrases: Sequence[str]) -> List[int]:
        """Arena row index per phrase, extending the arena on misses.

        Only valid when the extractor is versioned (the caller checked);
        ``self._numeric_arena`` holds the cached vectors row-per-phrase,
        document-independent, so ranking N documents against the same
        store pays one extract+dequantize per distinct phrase, not one
        per detection.
        """
        extractor = self.extractor
        tag = (id(extractor), extractor.feature_version)
        cache = self._numeric_cache
        if tag != self._numeric_cache_tag:
            cache.clear()
            self._numeric_cache_tag = tag
            self._numeric_arena = None
            self._numeric_used = 0
        indices = []
        append = indices.append
        for phrase in phrases:
            index = cache.get(phrase)
            if index is None:
                row = extractor.extract(phrase).numeric(self.exclude_groups)
                arena = self._numeric_arena
                if arena is None:
                    arena = self._numeric_arena = np.empty((64, row.size))
                elif self._numeric_used == len(arena):
                    arena = np.empty((2 * len(arena), row.size))
                    arena[: self._numeric_used] = self._numeric_arena
                    self._numeric_arena = arena
                index = self._numeric_used
                arena[index] = row
                self._numeric_used = index + 1
                cache[phrase] = index
            append(index)
        return indices

    def _numeric_rows(self, phrases: Sequence[str]) -> List[np.ndarray]:
        """One interestingness numeric vector per phrase (memoized)."""
        extractor = self.extractor
        if getattr(extractor, "feature_version", None) is None:
            return [
                extractor.extract(phrase).numeric(self.exclude_groups)
                for phrase in phrases
            ]
        indices = self._numeric_indices(phrases)
        arena = self._numeric_arena
        return [arena[index] for index in indices]

    def vector(self, phrase: str, context: Optional[Set[str]] = None) -> np.ndarray:
        """The feature vector for *phrase* in *context*."""
        base = self.extractor.extract(phrase).numeric(self.exclude_groups)
        if self.relevance_scorer is None:
            return base
        if context is None:
            raise ValueError("relevance-enabled assembler requires a context")
        relevance = self.relevance_scorer.score(phrase, context)
        return np.concatenate([base, [np.log1p(relevance)]])

    def matrix(
        self, phrases: Sequence[str], context: Optional[Set[str]] = None
    ) -> np.ndarray:
        """Feature matrix for many phrases sharing one context."""
        return self.matrix_and_relevance(phrases, context)[0]

    def matrix_and_relevance(
        self, phrases: Sequence[str], context: Optional[Set[str]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(feature matrix, raw relevance scores) with one batched lookup.

        The relevance column is produced by a single ``score_many`` call
        against the store (vectorized over the columnar arena) and is
        returned alongside the matrix so rankers can reuse it for
        tie-breaking without scoring twice.

        With a versioned extractor the matrix is assembled with one
        fancy-index gather from the row arena straight into the output
        (plus the relevance column written in place) — the same values
        the row-by-row ``np.vstack``/``np.concatenate`` construction
        produces, without the per-row Python overhead.
        """
        if getattr(self.extractor, "feature_version", None) is None:
            base = np.vstack(self._numeric_rows(phrases))
            if self.relevance_scorer is None:
                return base, np.zeros(len(phrases))
            if context is None:
                raise ValueError(
                    "relevance-enabled assembler requires a context"
                )
            relevance = self._batched_scores(phrases, context)
            return (
                np.concatenate([base, np.log1p(relevance)[:, None]], axis=1),
                relevance,
            )
        indices = self._numeric_indices(phrases)
        arena = self._numeric_arena
        if self.relevance_scorer is None:
            return arena[indices], np.zeros(len(phrases))
        if context is None:
            raise ValueError("relevance-enabled assembler requires a context")
        relevance = self._batched_scores(phrases, context)
        width = arena.shape[1]
        features = np.empty((len(indices), width + 1))
        features[:, :width] = arena[indices]
        features[:, width] = np.log1p(relevance)
        return features, relevance

    def _batched_scores(
        self, phrases: Sequence[str], context: Set[str]
    ) -> np.ndarray:
        score_many = getattr(self.relevance_scorer, "score_many", None)
        if score_many is not None:
            return np.asarray(score_many(phrases, context), dtype=float)
        return np.asarray(
            [self.relevance_scorer.score(phrase, context) for phrase in phrases]
        )

    def feature_names(self) -> List[str]:
        """Column names of :meth:`matrix` / :meth:`matrix_and_relevance`."""
        names = numeric_feature_names(self.exclude_groups)
        if self.relevance_scorer is not None:
            names.append("relevance")
        return names

    def context_of(self, text: DocumentLike) -> Optional[Set[str]]:
        """Stemmed context (set or sorted TID array), or None when the
        model is interestingness-only.

        Passing a :class:`TokenizedDocument` reuses its cached stemmed
        pass instead of re-tokenizing the context text.
        """
        if self.relevance_scorer is None:
            return None
        return self.relevance_scorer.context_stems(text)

    def relevance_of(
        self, phrases: Sequence[str], context: Optional[Set[str]]
    ) -> np.ndarray:
        """Raw relevance scores (zeros when no relevance scorer)."""
        if self.relevance_scorer is None or context is None:
            return np.zeros(len(phrases))
        return self._batched_scores(phrases, context)


class ConceptRanker:
    """Ranks a document's candidate concepts with a trained RankSVM."""

    def __init__(
        self,
        assembler: FeatureAssembler,
        model: RankSVM,
        tie_break_with_relevance: bool = True,
    ):
        self._assembler = assembler
        self._model = model
        self.tie_break_with_relevance = tie_break_with_relevance
        # Optional callable fed every assembled feature matrix (the
        # drift detector's tap); None keeps the hot path branch-free
        # beyond one identity check.
        self.feature_observer = None

    def score_phrases(self, phrases: Sequence[str], text: DocumentLike) -> np.ndarray:
        """Model scores for candidate *phrases* of document *text*."""
        scores, __ = self.score_phrases_timed(phrases, text)
        return scores

    def score_phrases_timed(
        self, phrases: Sequence[str], text: DocumentLike
    ) -> Tuple[np.ndarray, float]:
        """(scores, seconds spent on feature lookups/assembly).

        The feature time covers the context stems, the store lookups,
        and the relevance summations — the per-stage timing the runtime
        service reports; model inference is excluded.
        """
        if not phrases:
            return np.zeros(0), 0.0
        started = time.perf_counter()
        context = self._assembler.context_of(text)
        features, relevance = self._assembler.matrix_and_relevance(phrases, context)
        if not self.tie_break_with_relevance:
            relevance = None
        feature_seconds = time.perf_counter() - started
        if self.feature_observer is not None:
            self.feature_observer(features)
        scores = self._model.decision_function(features)
        if relevance is not None:
            scores = tie_break_by_relevance(scores, relevance)
        return scores, feature_seconds

    def rank_phrases(
        self, phrases: Sequence[str], text: str
    ) -> List[Tuple[str, float]]:
        """(phrase, score) in decreasing score order."""
        scores = self.score_phrases(phrases, text)
        order = np.argsort(-scores, kind="stable")
        return [(phrases[int(i)], float(scores[int(i)])) for i in order]

    def rank_document(self, annotated: AnnotatedDocument) -> List[Detection]:
        """Rankable detections of *annotated*, best first.

        This is what replaces the concept-vector ordering in production:
        an application keeps the top N of this list.
        """
        ranked, __ = self.rank_document_timed(annotated)
        return ranked

    def rank_document_timed(
        self, annotated: AnnotatedDocument
    ) -> Tuple[List[Detection], float]:
        """`rank_document` plus the feature-lookup seconds it spent.

        When *annotated* carries the pipeline's shared token stream the
        relevance context reuses it; otherwise the text is re-analysed.
        """
        rankable = annotated.rankable()
        if not rankable:
            return [], 0.0
        phrases = [d.phrase for d in rankable]
        # getattr: documents unpickled from pre-single-pass caches lack .tokens
        tokens = getattr(annotated, "tokens", None)
        source: DocumentLike = tokens if tokens is not None else annotated.text
        scores, feature_seconds = self.score_phrases_timed(phrases, source)
        order = np.argsort(-scores, kind="stable")
        return (
            [rankable[int(i)].with_score(float(scores[int(i)])) for i in order],
            feature_seconds,
        )

    def top_detections(
        self, annotated: AnnotatedDocument, count: int
    ) -> List[Detection]:
        """The top *count* detections (the production annotation budget)."""
        return self.rank_document(annotated)[:count]
