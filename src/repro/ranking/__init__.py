"""Learning-to-rank: pairwise RankSVM, baselines, and the combined model."""

from repro.ranking.baselines import (
    concept_vector_scores,
    jitter_ties,
    random_scores,
    tie_break_by_relevance,
)
from repro.ranking.model import ConceptRanker, FeatureAssembler
from repro.ranking.pairs import PairSet, build_pairs
from repro.ranking.svmlight import dump_ranking_file, load_ranking_file
from repro.ranking.ranksvm import (
    KERNEL_LINEAR,
    KERNEL_RBF,
    RandomFourierFeatures,
    RankSVM,
    StandardScaler,
)

__all__ = [
    "concept_vector_scores",
    "jitter_ties",
    "random_scores",
    "tie_break_by_relevance",
    "ConceptRanker",
    "FeatureAssembler",
    "PairSet",
    "build_pairs",
    "dump_ranking_file",
    "load_ranking_file",
    "KERNEL_LINEAR",
    "KERNEL_RBF",
    "RandomFourierFeatures",
    "RankSVM",
    "StandardScaler",
]
