"""Baseline rankers (paper Section V-A.3).

Two baselines frame every evaluation table: a random ordering (error
rate 50% by construction) and the production concept-vector-score
ordering.  Both are expressed as score assignments so they slot into
the same evaluation path as the learned model; ties are broken randomly
as the paper specifies ("in the case of ties, we assume a random
ordering of concepts").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def random_scores(count: int, rng: np.random.Generator) -> np.ndarray:
    """Scores inducing a uniformly random ordering."""
    return rng.random(count)


def jitter_ties(
    scores: Sequence[float], rng: np.random.Generator, scale: float = 1e-9
) -> np.ndarray:
    """Break exact score ties with infinitesimal random jitter."""
    scores = np.asarray(scores, dtype=float)
    return scores + rng.random(scores.shape[0]) * scale


def concept_vector_scores(
    baseline_scores: Sequence[float], rng: np.random.Generator
) -> np.ndarray:
    """The production baseline: concept-vector scores, random tie-break."""
    return jitter_ties(baseline_scores, rng)


def tie_break_by_relevance(
    scores: Sequence[float],
    relevance: Sequence[float],
    epsilon: float = 1e-9,
) -> np.ndarray:
    """Favor higher relevance among (near-)tied primary scores.

    Implements the paper's Section V-A.6 choice: "in case of ties, we
    decided to favor concepts that have higher relevance scores".  The
    relevance contribution is scaled far below one score quantum so it
    only reorders ties.
    """
    scores = np.asarray(scores, dtype=float)
    relevance = np.asarray(relevance, dtype=float)
    peak = np.abs(relevance).max()
    if peak <= 0:
        return scores
    return scores + (relevance / peak) * epsilon
