"""Deterministic pseudo-word generation for the synthetic world.

The proprietary inputs of the paper (web corpus, query logs, editorial
dictionaries) are full of real English.  Our substitute world needs a
vocabulary that is (a) reproducible from a seed, (b) large, (c) free of
collisions with the stopword list, and (d) pronounceable enough that
generated stories and concepts are human-readable when debugging.

Words are built from consonant-vowel syllables drawn from a seeded
:class:`numpy.random.Generator`.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.text.stopwords import STOPWORDS

_ONSETS = [
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r",
    "s", "t", "v", "w", "z", "br", "ch", "cl", "dr", "fl", "gr", "kr",
    "pl", "pr", "sh", "sl", "st", "str", "th", "tr",
]
_VOWELS = ["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"]
_CODAS = ["", "", "", "n", "r", "s", "l", "m", "t", "nd", "rk", "st"]


def _syllable(rng: np.random.Generator) -> str:
    onset = _ONSETS[rng.integers(len(_ONSETS))]
    vowel = _VOWELS[rng.integers(len(_VOWELS))]
    coda = _CODAS[rng.integers(len(_CODAS))]
    return onset + vowel + coda


def make_word(rng: np.random.Generator, min_syllables: int = 2,
              max_syllables: int = 3) -> str:
    """Generate one pronounceable pseudo-word."""
    count = int(rng.integers(min_syllables, max_syllables + 1))
    return "".join(_syllable(rng) for __ in range(count))


def make_unique_words(rng: np.random.Generator, count: int,
                      forbidden: Set[str] = frozenset()) -> List[str]:
    """Generate *count* distinct pseudo-words.

    Words never collide with each other, with *forbidden*, or with the
    stopword list (stopwords are the background filler of generated text
    and must stay disjoint from content words).
    """
    words: List[str] = []
    seen: Set[str] = set(forbidden) | set(STOPWORDS)
    attempts = 0
    while len(words) < count:
        word = make_word(rng)
        attempts += 1
        if attempts > count * 100:
            raise RuntimeError("pseudo-word space exhausted; lower count")
        if word in seen:
            continue
        seen.add(word)
        words.append(word)
    return words
