"""Zipfian content vocabulary for the synthetic world.

Real web text has a heavy-tailed unigram distribution.  The vocabulary
assigns every content word a global Zipf weight; topic models and the
background-noise channel both sample against these weights, so idf
statistics computed over the generated web corpus look like idf
statistics over real text (few very common words, a long tail of rare,
high-idf words).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.corpus.names import make_unique_words


class Vocabulary:
    """An ordered list of content words with Zipfian sampling weights."""

    def __init__(self, words: Sequence[str], zipf_exponent: float = 1.25):
        if not words:
            raise ValueError("vocabulary must be non-empty")
        self.words: List[str] = list(words)
        self.zipf_exponent = float(zipf_exponent)
        ranks = np.arange(1, len(self.words) + 1, dtype=float)
        weights = ranks ** (-self.zipf_exponent)
        self._probabilities = weights / weights.sum()
        self._index = {word: i for i, word in enumerate(self.words)}

    def __len__(self) -> int:
        return len(self.words)

    def __contains__(self, word: str) -> bool:
        return word in self._index

    def rank(self, word: str) -> int:
        """Zero-based Zipf rank of *word* (0 = most frequent)."""
        return self._index[word]

    def probability(self, word: str) -> float:
        """Global sampling probability of *word*."""
        return float(self._probabilities[self._index[word]])

    def sample(self, rng: np.random.Generator, count: int) -> List[str]:
        """Draw *count* words i.i.d. from the Zipf distribution."""
        indices = rng.choice(len(self.words), size=count, p=self._probabilities)
        return [self.words[i] for i in indices]

    def sample_distinct(self, rng: np.random.Generator, count: int) -> List[str]:
        """Draw *count* distinct words, Zipf-weighted."""
        if count > len(self.words):
            raise ValueError("cannot draw more distinct words than exist")
        indices = rng.choice(
            len(self.words), size=count, replace=False, p=self._probabilities
        )
        return [self.words[i] for i in indices]

    @classmethod
    def generate(cls, rng: np.random.Generator, size: int,
                 zipf_exponent: float = 1.25) -> "Vocabulary":
        """Generate a fresh pseudo-word vocabulary of *size* words."""
        return cls(make_unique_words(rng, size), zipf_exponent=zipf_exponent)
