"""The concept universe: entities and concepts with latent properties.

Every concept in the synthetic world carries the latent attributes that
the paper's proprietary world has implicitly:

* ``interestingness`` — how appealing the concept is to the general user
  base.  Drives query-log frequency, Wikipedia presence, and (together
  with relevance) the probability of a click in the click model.
* ``specificity`` — how topically focused the concept is.  Specific
  concepts ("methicillin resistant staphylococcus aureus") appear in a
  narrow band of contexts; junk/general concepts ("my favorite") appear
  everywhere.  Drives the clustering behaviour of Table II.
* ``taxonomy_type`` — editorial type for named entities (person, place,
  organization, ...); ``None`` for abstract query-log concepts.
* ``home_topics`` — topics in which the concept is genuinely relevant.

These latents are ground truth for evaluation only; no ranker ever sees
them directly — rankers see the observable features (query logs,
snippets, Wikipedia, ...) that the latents generate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.names import make_unique_words
from repro.corpus.topics import Topic

TAXONOMY_TYPES = (
    "person",
    "place",
    "organization",
    "product",
    "event",
    "animal",
)

# Clickiness multiplier by entity type: users chase people and products
# far more than places or organizations (this is why the taxonomy
# feature earns its keep in Table III's ablation).
TYPE_APPEAL = {
    "person": 1.35,
    "place": 0.75,
    "organization": 0.80,
    "product": 1.30,
    "event": 1.10,
    "animal": 0.70,
}

# Generic filler phrases mimicking the paper's low-quality concepts
# ("my favorite", "the other", "what is happening").  They are built
# from stopwords so they naturally occur in any text.
_JUNK_TEMPLATES = [
    ("my", "favorite"),
    ("the", "other"),
    ("what", "is", "happening"),
    ("a", "few", "more"),
    ("over", "there"),
    ("all", "about"),
    ("more", "than", "this"),
    ("some", "other"),
    ("out", "there"),
    ("very", "own"),
    ("no", "more"),
    ("once", "again"),
]


@dataclass(frozen=True)
class Concept:
    """A concept or named entity in the synthetic universe."""

    concept_id: int
    phrase: str
    terms: Tuple[str, ...]
    interestingness: float
    specificity: float
    is_junk: bool
    taxonomy_type: Optional[str]
    home_topics: Tuple[int, ...]

    @property
    def is_named_entity(self) -> bool:
        """True when the concept has an editorial taxonomy type."""
        return self.taxonomy_type is not None

    def relevant_in(self, topic_ids: Sequence[int]) -> bool:
        """True if any of the concept's home topics appears in *topic_ids*."""
        return any(topic in self.home_topics for topic in topic_ids)


def generate_concepts(
    rng: np.random.Generator,
    topics: Sequence[Topic],
    count: int,
    named_entity_fraction: float = 0.3,
    junk_fraction: float = 0.08,
    max_phrase_terms: int = 3,
) -> List[Concept]:
    """Generate the concept universe.

    Concepts get dedicated pseudo-words for their phrases (so mentions
    are unambiguous in text); junk concepts reuse stopword templates.
    Interestingness ~ Beta(1.1, 3.0): most concepts are dull, a few are
    very interesting, matching the paper's observation that "few
    concepts on a document actually get most of the clicks".
    """
    junk_count = min(int(count * junk_fraction), len(_JUNK_TEMPLATES))
    regular_count = count - junk_count

    term_budget = sum(
        int(n)
        for n in rng.integers(1, max_phrase_terms + 1, size=regular_count)
    )
    # regenerate sizes deterministically: draw sizes first, then words
    rng_sizes = rng.integers(1, max_phrase_terms + 1, size=regular_count)
    term_budget = int(rng_sizes.sum())
    words = make_unique_words(rng, term_budget)

    concepts: List[Concept] = []
    cursor = 0
    for index in range(regular_count):
        size = int(rng_sizes[index])
        terms = tuple(words[cursor : cursor + size])
        cursor += size
        interestingness = float(rng.beta(1.1, 3.0))
        specificity = float(np.clip(rng.beta(4.0, 1.6), 0.05, 1.0))
        is_named = rng.random() < named_entity_fraction
        taxonomy_type = (
            str(TAXONOMY_TYPES[rng.integers(len(TAXONOMY_TYPES))])
            if is_named
            else None
        )
        if taxonomy_type is not None:
            interestingness = float(
                np.clip(interestingness * TYPE_APPEAL[taxonomy_type], 0.0, 1.0)
            )
        home_count = 1 if rng.random() < 0.75 else 2
        home = rng.choice(len(topics), size=home_count, replace=False)
        concepts.append(
            Concept(
                concept_id=index,
                phrase=" ".join(terms),
                terms=terms,
                interestingness=interestingness,
                specificity=specificity,
                is_junk=False,
                taxonomy_type=taxonomy_type,
                home_topics=tuple(int(t) for t in home),
            )
        )

    junk_templates = list(_JUNK_TEMPLATES)
    rng.shuffle(junk_templates)
    for offset in range(junk_count):
        terms = tuple(junk_templates[offset])
        concepts.append(
            Concept(
                concept_id=regular_count + offset,
                phrase=" ".join(terms),
                terms=terms,
                # junk phrases are common in queries but dull and unfocused
                interestingness=float(rng.uniform(0.02, 0.15)),
                specificity=float(rng.uniform(0.0, 0.08)),
                is_junk=True,
                taxonomy_type=None,
                home_topics=(),
            )
        )
    return concepts


def concepts_for_topic(concepts: Sequence[Concept], topic_id: int) -> List[Concept]:
    """All concepts whose home topics include *topic_id*."""
    return [c for c in concepts if topic_id in c.home_topics]
