"""The synthetic world: one seeded object holding every corpus resource.

``SyntheticWorld.build(WorldConfig(...))`` deterministically generates
the vocabulary, topics, concept universe, web corpus (with its
document-frequency table), Wikipedia store, and editorial dictionary.
Everything downstream — query logs, the search engine, detection,
features, click simulation — is derived from a world instance, so a
single seed reproduces an entire experiment end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.corpus.concepts import Concept, generate_concepts
from repro.corpus.dictionaries import EditorialDictionary
from repro.corpus.documents import (
    GeneratedDocument,
    StoryGenerator,
    WebCorpusGenerator,
)
from repro.corpus.topics import Topic, generate_topics
from repro.corpus.vocabulary import Vocabulary
from repro.corpus.wikipedia import WikipediaStore
from repro.text.vectorize import DocumentFrequencyTable
from repro.text.tokenizer import tokenize_lower


@dataclass(frozen=True)
class WorldConfig:
    """Sizing and seeding for a synthetic world.

    The defaults give a laptop-scale world that preserves the paper's
    statistical structure; benchmarks use larger numbers of stories.
    """

    seed: int = 7
    vocabulary_size: int = 4000
    topic_count: int = 40
    words_per_topic: int = 80
    concept_count: int = 1200
    named_entity_fraction: float = 0.3
    junk_fraction: float = 0.01
    topic_page_count: int = 1500
    zipf_exponent: float = 1.25


@dataclass
class SyntheticWorld:
    """All corpus-side resources of the synthetic world."""

    config: WorldConfig
    vocabulary: Vocabulary
    topics: List[Topic]
    concepts: List[Concept]
    web_corpus: List[GeneratedDocument]
    doc_frequency: DocumentFrequencyTable
    wikipedia: WikipediaStore
    dictionary: EditorialDictionary
    _concept_by_phrase: Dict[str, Concept] = field(default_factory=dict, repr=False)

    @classmethod
    def build(cls, config: WorldConfig = WorldConfig()) -> "SyntheticWorld":
        """Deterministically generate a world from *config*."""
        rng = np.random.default_rng(config.seed)
        vocabulary = Vocabulary.generate(
            rng, config.vocabulary_size, zipf_exponent=config.zipf_exponent
        )
        topics = generate_topics(
            rng, vocabulary, config.topic_count, config.words_per_topic
        )
        concepts = generate_concepts(
            rng,
            topics,
            config.concept_count,
            named_entity_fraction=config.named_entity_fraction,
            junk_fraction=config.junk_fraction,
        )
        corpus_generator = WebCorpusGenerator(rng, topics, concepts, vocabulary)
        web_corpus = corpus_generator.generate(config.topic_page_count)
        doc_frequency = DocumentFrequencyTable.from_documents(
            tokenize_lower(document.text) for document in web_corpus
        )
        wikipedia = WikipediaStore.generate(rng, concepts, topics, vocabulary)
        dictionary = EditorialDictionary.generate(rng, concepts)
        world = cls(
            config=config,
            vocabulary=vocabulary,
            topics=topics,
            concepts=concepts,
            web_corpus=web_corpus,
            doc_frequency=doc_frequency,
            wikipedia=wikipedia,
            dictionary=dictionary,
        )
        world._concept_by_phrase = {c.phrase.lower(): c for c in concepts}
        return world

    # -- convenience -----------------------------------------------------

    def concept_by_phrase(self, phrase: str) -> Concept:
        """Look up a concept by its exact phrase (case-insensitive)."""
        return self._concept_by_phrase[phrase.lower()]

    def story_generator(self, seed: int = 1) -> StoryGenerator:
        """A fresh, independently-seeded news story generator."""
        return StoryGenerator(
            np.random.default_rng((self.config.seed, seed)),
            self.topics,
            self.concepts,
            self.vocabulary,
        )

    def named_entities(self) -> List[Concept]:
        return [c for c in self.concepts if c.is_named_entity]

    def junk_concepts(self) -> List[Concept]:
        return [c for c in self.concepts if c.is_junk]
